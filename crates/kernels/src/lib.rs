//! # em-kernels — the THIIM stencil update kernels
//!
//! Implements the twelve split-field component updates of the paper's
//! Listings 1 and 2, plus reference execution engines: the naive
//! component-by-component sweep the paper's traffic analysis assumes, and
//! the spatially blocked baseline of Sec. III-B.
//!
//! ## Update semantics
//!
//! One full time step advances H then E:
//!
//! ```text
//! Hab(x) <- Hab(x)*tHab(x) [+ SrcHa(x)] - sign * cHab(x) * (Eb(x) - Eb(x - e_d))
//! Eab(x) <- Eab(x)*tEab(x) [+ SrcEa(x)] - sign * cEab(x) * (Eb(x) - Eb(x + e_d))
//! ```
//!
//! where `Eb = Eb1 + Eb2` is the total source component (sum of its two
//! split parts), `d` is the derivative axis and `sign = eps(a, d, b)` the
//! Levi-Civita curl sign. With `D = center - neighbor` the same expression
//! `dst*t + src - sign*c*D` reproduces both listings: Listing 1 (`Hyx`,
//! sign +1, z-shift, with source) and Listing 2 (`Hzx`, sign -1, y-shift,
//! no source). All arithmetic is double-complex on *split re/im planes*
//! (unlike the interleaved C code), which makes every access unit-stride
//! and lets the [`simd`] module run the row body in full vector lanes —
//! scalar, AVX2 and AVX-512 paths are bit-for-bit identical because the
//! per-cell operation order is fixed and FMA contraction is never used.
//!
//! ## Safety architecture
//!
//! The multithreaded engines (spatial baseline here, MWD in `mwd-core`)
//! partition disjoint cell ranges between threads. Kernels therefore work
//! on a [`RawGrid`] of raw pointers; the safety argument (no two threads
//! write the same cells, no thread reads cells concurrently written) lives
//! with the schedules, which are property-tested and cross-checked by the
//! bitwise MWD-vs-naive oracle.

pub mod boundary;
pub mod flops;
pub mod raw;
pub mod simd;
pub mod spatial;
pub mod sweep;
pub mod update;

pub use raw::RawGrid;
pub use simd::{active_isa, detected_isa, Isa, LANE_WIDTH};
pub use spatial::{step_spatial, step_spatial_mt, SpatialConfig};
pub use sweep::{run_naive, step_naive};
pub use update::{
    update_component_row, update_component_row_periodic_x, update_component_rows,
    update_component_rows_periodic_x,
};
