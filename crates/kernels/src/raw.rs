//! Raw-pointer view of a problem [`State`] for the hot kernels.

use em_field::{Component, GridDims, SourceArray, State};

/// Raw-pointer snapshot of all 40 arrays of a [`State`], with shared
/// strides (all arrays have identical padded layout).
///
/// # Safety contract for users
///
/// A `RawGrid` borrows the `State` it was created from; the pointers stay
/// valid for the lifetime `'a`. Any *use* of the pointers must uphold:
///
/// 1. no two threads write to the same (array, cell) concurrently, and
/// 2. no thread reads an (array, cell) while another writes it.
///
/// The THIIM update structure makes this tractable: an update of component
/// `C` writes only array `C` and reads only arrays of the opposite field
/// (plus `C` itself at the written cell). Engines guarantee (1)/(2) by
/// partitioning cells (spatial baseline: disjoint blocks per phase) or by
/// the diamond/wavefront dependency structure (MWD; see `mwd-core`).
#[derive(Clone, Copy)]
pub struct RawGrid<'a> {
    fields: [*mut f64; 12],
    t: [*const f64; 12],
    c: [*const f64; 12],
    src: [*const f64; 4],
    dims: GridDims,
    /// f64 distance between y rows (within one re/im plane).
    pub y_stride: usize,
    /// f64 distance between z planes (within one re/im plane).
    pub z_stride: usize,
    /// f64 distance from a value's real part to its imaginary part
    /// (identical for every array: same dims, same plane padding).
    pub im_off: usize,
    /// Instruction set the row kernels dispatch to, selected once at
    /// construction via [`crate::simd::active_isa`].
    pub isa: crate::simd::Isa,
    _marker: std::marker::PhantomData<&'a State>,
}

// SAFETY: the pointers target heap buffers that outlive 'a; sending the
// view across threads is exactly its purpose. Races are excluded by the
// schedule contracts documented above.
unsafe impl Send for RawGrid<'_> {}
unsafe impl Sync for RawGrid<'_> {}

impl<'a> RawGrid<'a> {
    /// Capture a raw view. Takes `&State` (not `&mut`) so several worker
    /// threads can hold copies; mutation discipline is the caller's
    /// responsibility per the struct-level contract.
    pub fn new(state: &'a State) -> Self {
        let dims = state.dims();
        let probe = state.fields.comp(Component::Exy);
        let mut fields = [std::ptr::null_mut(); 12];
        let mut t = [std::ptr::null(); 12];
        let mut c = [std::ptr::null(); 12];
        for comp in Component::ALL {
            fields[comp.index()] = state.fields.comp(comp).as_ptr_shared();
            t[comp.index()] = state.coeffs.t(comp).as_slice().as_ptr();
            c[comp.index()] = state.coeffs.c(comp).as_slice().as_ptr();
        }
        let mut src = [std::ptr::null(); 4];
        for s in SourceArray::ALL {
            src[s.index()] = state.coeffs.src(s).as_slice().as_ptr();
        }
        RawGrid {
            fields,
            t,
            c,
            src,
            dims,
            y_stride: probe.y_stride(),
            z_stride: probe.z_stride(),
            im_off: probe.im_offset(),
            isa: crate::simd::active_isa(),
            _marker: std::marker::PhantomData,
        }
    }

    /// The same view with a forced instruction set — used by the parity
    /// tests and the scalar-vs-SIMD microbenchmarks.
    pub fn with_isa(mut self, isa: crate::simd::Isa) -> Self {
        self.isa = isa;
        self
    }

    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    #[inline]
    pub fn field_ptr(&self, comp: Component) -> *mut f64 {
        self.fields[comp.index()]
    }

    #[inline]
    pub fn t_ptr(&self, comp: Component) -> *const f64 {
        self.t[comp.index()]
    }

    #[inline]
    pub fn c_ptr(&self, comp: Component) -> *const f64 {
        self.c[comp.index()]
    }

    #[inline]
    pub fn src_ptr(&self, s: SourceArray) -> *const f64 {
        self.src[s.index()]
    }

    /// Flat f64 index of the real part of interior cell `(x, y, z)`
    /// (identical for every array); the imaginary part lives at
    /// `idx + self.im_off`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.dims.nx && y < self.dims.ny && z < self.dims.nz);
        (z + 1) * self.z_stride + (y + 1) * self.y_stride + (x + 1)
    }

    /// Signed f64 offset of a unit step along `axis` (within one plane).
    #[inline]
    pub fn axis_stride(&self, axis: em_field::Axis) -> usize {
        match axis {
            em_field::Axis::X => 1,
            em_field::Axis::Y => self.y_stride,
            em_field::Axis::Z => self.z_stride,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_field::Axis;

    #[test]
    fn idx_matches_array3_layout() {
        let state = State::zeros(GridDims::new(5, 4, 3));
        let g = RawGrid::new(&state);
        let arr = state.fields.comp(Component::Hzy);
        for (x, y, z) in [(0, 0, 0), (4, 3, 2), (2, 1, 1)] {
            assert_eq!(g.idx(x, y, z), arr.idx(x as isize, y as isize, z as isize));
        }
    }

    #[test]
    fn strides_match_axes() {
        let state = State::zeros(GridDims::new(5, 4, 3));
        let g = RawGrid::new(&state);
        assert_eq!(g.axis_stride(Axis::X), 1);
        assert_eq!(g.axis_stride(Axis::Y), g.idx(0, 1, 0) - g.idx(0, 0, 0));
        assert_eq!(g.axis_stride(Axis::Z), g.idx(0, 0, 1) - g.idx(0, 0, 0));
    }

    #[test]
    fn im_offset_is_shared_by_all_arrays() {
        let state = State::zeros(GridDims::new(5, 4, 3));
        let g = RawGrid::new(&state);
        assert_eq!(g.im_off, state.fields.comp(Component::Exy).im_offset());
        assert_eq!(g.im_off, state.coeffs.t(Component::Hzy).im_offset());
    }

    #[test]
    fn pointers_are_distinct_per_array() {
        let state = State::zeros(GridDims::cubic(2));
        let g = RawGrid::new(&state);
        let mut seen = std::collections::HashSet::new();
        for comp in Component::ALL {
            assert!(
                seen.insert(g.field_ptr(comp) as usize),
                "duplicate field ptr"
            );
            assert!(seen.insert(g.t_ptr(comp) as usize), "duplicate t ptr");
            assert!(seen.insert(g.c_ptr(comp) as usize), "duplicate c ptr");
        }
        for s in SourceArray::ALL {
            assert!(seen.insert(g.src_ptr(s) as usize), "duplicate src ptr");
        }
        assert_eq!(seen.len(), 40);
    }
}
