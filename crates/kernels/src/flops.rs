//! Flop and per-loop traffic accounting for the THIIM kernels
//! (paper Sec. III-A). These constants feed the analytic models and pin
//! the paper's in-text numbers in tests.

use em_field::Component;

/// Double-precision flops per lattice-site update (all 12 components of
/// one cell): 4 * 22 + 8 * 20 = 248.
pub const FLOPS_PER_LUP: usize = 248;

/// Doubles moved by one cell of a Listing-1 loop (z-shift, with source)
/// when the shifted reads miss cache: 2 writes + 12 unshifted reads
/// + 4 shifted reads.
pub const L1_TYPE_DOUBLES_NAIVE: usize = 18;

/// Doubles moved by one cell of a Listing-1 loop under the layer
/// condition (shifted reads hit cache): 18 - 4 = 14.
pub const L1_TYPE_DOUBLES_BLOCKED: usize = 14;

/// Doubles moved by one cell of a Listing-2 loop (y/x shift): 2 writes +
/// 10 reads; the small-shift accesses always hit cache.
pub const L2_TYPE_DOUBLES: usize = 12;

/// Number of Listing-1-type component updates (z-derivative, 3 coeff
/// arrays each).
pub const L1_TYPE_COUNT: usize = 4;

/// Number of Listing-2-type component updates (2 coeff arrays each).
pub const L2_TYPE_COUNT: usize = 8;

/// Flops per cell for one component update.
pub fn flops_of(comp: Component) -> usize {
    comp.flops()
}

/// Doubles-to-memory per cell for one component update in the naive
/// regime (no layer condition for z-shifted reads).
pub fn naive_doubles_of(comp: Component) -> usize {
    if comp.source_array().is_some() {
        L1_TYPE_DOUBLES_NAIVE
    } else {
        L2_TYPE_DOUBLES
    }
}

/// Doubles-to-memory per cell with spatial blocking (layer condition
/// holds for the z-shifted arrays).
pub fn blocked_doubles_of(comp: Component) -> usize {
    if comp.source_array().is_some() {
        L1_TYPE_DOUBLES_BLOCKED
    } else {
        L2_TYPE_DOUBLES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_flops_per_lup_is_248() {
        let sum: usize = Component::ALL.iter().map(|&c| flops_of(c)).sum();
        assert_eq!(sum, FLOPS_PER_LUP);
        assert_eq!(FLOPS_PER_LUP, L1_TYPE_COUNT * 22 + L2_TYPE_COUNT * 20);
    }

    #[test]
    fn naive_code_balance_eq8() {
        // Eq. 8: B_C = 4*(18+12+12)*8 = 1344 bytes/LUP.
        let doubles: usize = Component::ALL.iter().map(|&c| naive_doubles_of(c)).sum();
        assert_eq!(doubles * 8, 1344);
    }

    #[test]
    fn spatial_code_balance_eq9() {
        // Eq. 9: B_C = 4*([18-4]+12+12)*8 = 1216 bytes/LUP.
        let doubles: usize = Component::ALL.iter().map(|&c| blocked_doubles_of(c)).sum();
        assert_eq!(doubles * 8, 1216);
    }

    #[test]
    fn type_partition_is_4_plus_8() {
        let l1 = Component::ALL
            .iter()
            .filter(|c| c.source_array().is_some())
            .count();
        assert_eq!(l1, L1_TYPE_COUNT);
        assert_eq!(Component::ALL.len() - l1, L2_TYPE_COUNT);
    }

    #[test]
    fn arithmetic_intensities_match_paper() {
        // Naive: 248/1344 = 0.18 flop/byte; spatial: 248/1216 = 0.20.
        let i_naive = FLOPS_PER_LUP as f64 / 1344.0;
        let i_spatial = FLOPS_PER_LUP as f64 / 1216.0;
        assert!((i_naive - 0.18).abs() < 5e-3);
        assert!((i_spatial - 0.20).abs() < 5e-3);
    }
}
