//! Spatially blocked baseline (paper Sec. III-B).
//!
//! Loop order per phase: for each (z-block, y-block) tile, run all six
//! component nests of the phase over the tile. Choosing the block sizes so
//! that two successive x-y layers of the shifted arrays fit in cache
//! establishes the "layer condition", reducing the Listing-1 traffic from
//! 18 to 14 doubles and the code balance from 1344 to 1216 bytes/LUP.
//!
//! The multithreaded variant distributes blocks across threads with two
//! joins per time step (one per field phase) — the OpenMP structure of the
//! original production code.

use crate::raw::RawGrid;
use crate::update::update_component_rows;
use em_field::{Component, FieldKind, State};

/// Block sizes for spatial blocking. `x` is never blocked (the paper keeps
/// the full contiguous line for prefetching efficiency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpatialConfig {
    pub by: usize,
    pub bz: usize,
}

impl SpatialConfig {
    pub fn new(by: usize, bz: usize) -> Self {
        assert!(by > 0 && bz > 0, "block sizes must be positive");
        SpatialConfig { by, bz }
    }

    /// A reasonable default: y-blocks sized to hold two x-y layer strips
    /// of the 40 arrays within `cache_bytes`.
    pub fn for_cache(dims: em_field::GridDims, cache_bytes: usize) -> Self {
        // Two successive layers of the 4 shifted arrays plus streaming
        // access to the rest; a conservative estimate keeps
        // 40 arrays * by rows * 2 layers * row_bytes within cache.
        let row = dims.row_bytes();
        let by = (cache_bytes / (40 * 2 * row)).clamp(1, dims.ny);
        SpatialConfig {
            by,
            bz: dims.nz.max(1),
        }
    }

    fn blocks(&self, n: usize, b: usize) -> impl Iterator<Item = (usize, usize)> {
        (0..n.div_ceil(b)).map(move |i| (i * b, ((i + 1) * b).min(n)))
    }
}

/// One phase (H or E) of a spatially blocked step over the whole grid.
fn phase(state: &State, kind: FieldKind, cfg: SpatialConfig) {
    let dims = state.dims();
    let g = RawGrid::new(state);
    for (z0, z1) in cfg.blocks(dims.nz, cfg.bz) {
        for (y0, y1) in cfg.blocks(dims.ny, cfg.by) {
            for comp in Component::of(kind) {
                // SAFETY: single-threaded phase; writes disjoint per
                // component, reads only the opposite (frozen) field.
                unsafe { update_component_rows(&g, comp, z0..z1, y0..y1, 0..dims.nx) };
            }
        }
    }
}

/// Advance one time step with spatial blocking (single thread).
pub fn step_spatial(state: &mut State, cfg: SpatialConfig) {
    phase(state, FieldKind::H, cfg);
    phase(state, FieldKind::E, cfg);
}

/// Advance one time step with spatial blocking on `threads` threads.
///
/// Blocks of the (z, y) tile grid are distributed round-robin; threads
/// join between the H and E phases (the two implicit OpenMP barriers of
/// the original code).
pub fn step_spatial_mt(state: &mut State, cfg: SpatialConfig, threads: usize) {
    assert!(threads > 0);
    let dims = state.dims();
    let g = RawGrid::new(state);

    let tiles: Vec<(usize, usize, usize, usize)> = cfg
        .blocks(dims.nz, cfg.bz)
        .flat_map(|(z0, z1)| {
            cfg.blocks(dims.ny, cfg.by)
                .map(move |(y0, y1)| (z0, z1, y0, y1))
        })
        .collect();

    for kind in [FieldKind::H, FieldKind::E] {
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let tiles = &tiles;
                scope.spawn(move || {
                    for (i, &(z0, z1, y0, y1)) in tiles.iter().enumerate() {
                        if i % threads != tid {
                            continue;
                        }
                        for comp in Component::of(kind) {
                            // SAFETY: tiles are disjoint cell regions; each
                            // component nest writes only its own array inside
                            // its tile and reads the opposite field, which no
                            // thread writes during this phase.
                            unsafe { update_component_rows(&g, comp, z0..z1, y0..y1, 0..dims.nx) };
                        }
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::step_naive;
    use em_field::GridDims;

    fn filled(dims: GridDims, seed: u64) -> State {
        let mut s = State::zeros(dims);
        s.fields.fill_deterministic(seed);
        s.coeffs.fill_deterministic(seed ^ 0x51);
        s
    }

    #[test]
    fn spatial_blocking_is_bitwise_identical_to_naive() {
        let dims = GridDims::new(6, 7, 5);
        for cfg in [
            SpatialConfig::new(1, 1),
            SpatialConfig::new(2, 3),
            SpatialConfig::new(7, 5),
        ] {
            let mut a = filled(dims, 5);
            let mut b = a.clone();
            for _ in 0..3 {
                step_naive(&mut a);
                step_spatial(&mut b, cfg);
            }
            assert!(a.fields.bit_eq(&b.fields), "cfg {cfg:?}");
        }
    }

    #[test]
    fn multithreaded_spatial_is_bitwise_identical_to_naive() {
        let dims = GridDims::new(5, 8, 6);
        for threads in [1, 2, 3, 4] {
            let mut a = filled(dims, 6);
            let mut b = a.clone();
            for _ in 0..2 {
                step_naive(&mut a);
                step_spatial_mt(&mut b, SpatialConfig::new(3, 2), threads);
            }
            assert!(a.fields.bit_eq(&b.fields), "threads={threads}");
        }
    }

    #[test]
    fn block_sizes_larger_than_grid_are_fine() {
        let dims = GridDims::cubic(3);
        let mut a = filled(dims, 8);
        let mut b = a.clone();
        step_naive(&mut a);
        step_spatial(&mut b, SpatialConfig::new(64, 64));
        assert!(a.fields.bit_eq(&b.fields));
    }

    #[test]
    fn for_cache_yields_valid_blocks() {
        let dims = GridDims::cubic(64);
        let cfg = SpatialConfig::for_cache(dims, 22 * 1024 * 1024);
        assert!(cfg.by >= 1 && cfg.by <= dims.ny);
        assert!(cfg.bz >= 1);
    }

    #[test]
    #[should_panic(expected = "block sizes must be positive")]
    fn zero_block_rejected() {
        let _ = SpatialConfig::new(0, 1);
    }
}
