//! Naive reference engine: per time step, twelve full-grid loop nests
//! (one per component), H field first, then E. This is the code structure
//! the paper's Sec. III-A traffic analysis assumes, and it is the bitwise
//! oracle every optimized engine must reproduce.

use crate::raw::RawGrid;
use crate::update::update_component_rows;
use em_field::{Component, State};

/// Advance the state by one full time step (H phase then E phase).
pub fn step_naive(state: &mut State) {
    let dims = state.dims();
    let g = RawGrid::new(state);
    // SAFETY: single-threaded; each component nest writes only its own
    // array and reads arrays of the opposite field (frozen during the
    // phase) plus itself at the written cell.
    unsafe {
        for comp in Component::H_ALL {
            update_component_rows(&g, comp, 0..dims.nz, 0..dims.ny, 0..dims.nx);
        }
        for comp in Component::E_ALL {
            update_component_rows(&g, comp, 0..dims.nz, 0..dims.ny, 0..dims.nx);
        }
    }
}

/// Advance the state by `steps` full time steps.
pub fn run_naive(state: &mut State, steps: usize) {
    for _ in 0..steps {
        step_naive(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_field::{Component, Cplx, GridDims};

    fn filled(dims: GridDims, seed: u64) -> State {
        let mut s = State::zeros(dims);
        s.fields.fill_deterministic(seed);
        s.coeffs.fill_deterministic(seed ^ 0xabc);
        s
    }

    #[test]
    fn zero_fields_zero_sources_stay_zero() {
        let mut s = State::zeros(GridDims::cubic(4));
        s.coeffs.fill_deterministic(1); // nonzero coefficients
        for arr in em_field::SourceArray::ALL {
            s.coeffs.src_mut(arr).zero();
        }
        run_naive(&mut s, 3);
        assert_eq!(s.fields.energy(), 0.0);
    }

    #[test]
    fn halo_stays_zero_across_steps() {
        let mut s = filled(GridDims::new(4, 5, 3), 7);
        run_naive(&mut s, 2);
        for comp in Component::ALL {
            assert!(
                s.fields.comp(comp).halo_is_zero(),
                "{comp} halo must stay zero"
            );
        }
    }

    #[test]
    fn update_is_linear_in_fields_with_zero_sources() {
        // With src = 0 the step is a linear map: step(2a) == 2*step(a).
        let dims = GridDims::cubic(4);
        let mut a = filled(dims, 13);
        for arr in em_field::SourceArray::ALL {
            a.coeffs.src_mut(arr).zero();
        }
        let mut b = a.clone();
        for comp in Component::ALL {
            let arr = b.fields.comp_mut(comp);
            let d = arr.dims();
            for z in 0..d.nz as isize {
                for y in 0..d.ny as isize {
                    for x in 0..d.nx as isize {
                        let v = arr.get(x, y, z);
                        arr.set(x, y, z, v * 2.0);
                    }
                }
            }
        }
        step_naive(&mut a);
        step_naive(&mut b);
        for comp in Component::ALL {
            for ((x, y, z), va) in a.fields.comp(comp).iter_interior() {
                let vb = b.fields.comp(comp).get(x as isize, y as isize, z as isize);
                assert!(
                    (vb - va * 2.0).abs() < 1e-12 * (1.0 + va.abs()),
                    "{comp} ({x},{y},{z})"
                );
            }
        }
    }

    #[test]
    fn impulse_propagates_at_one_cell_per_step() {
        // Causality: with uniform coefficients, a single-cell impulse in
        // Exy can influence cells at most `steps` away (Chebyshev distance
        // in the full coupled system).
        let dims = GridDims::cubic(7);
        let mut s = State::zeros(dims);
        s.coeffs.fill_deterministic(2);
        for arr in em_field::SourceArray::ALL {
            s.coeffs.src_mut(arr).zero();
        }
        s.fields.comp_mut(Component::Exy).set(3, 3, 3, Cplx::ONE);
        run_naive(&mut s, 2);
        for comp in Component::ALL {
            for ((x, y, z), v) in s.fields.comp(comp).iter_interior() {
                let dist = (x as isize - 3)
                    .abs()
                    .max((y as isize - 3).abs())
                    .max((z as isize - 3).abs());
                if dist > 2 && v != Cplx::ZERO {
                    panic!("{comp} at ({x},{y},{z}) influenced beyond light cone: {v:?}");
                }
            }
        }
        // And it must influence at least its own cell.
        assert!(s.fields.energy() > 0.0);
    }

    #[test]
    fn steps_compose() {
        let dims = GridDims::new(5, 4, 3);
        let mut a = filled(dims, 21);
        let mut b = a.clone();
        run_naive(&mut a, 3);
        run_naive(&mut b, 1);
        run_naive(&mut b, 2);
        assert!(a.fields.bit_eq(&b.fields), "3 steps == 1 + 2 steps bitwise");
    }

    #[test]
    fn contractive_coefficients_keep_energy_bounded() {
        let mut s = filled(GridDims::cubic(4), 99);
        let e0 = s.fields.energy();
        run_naive(&mut s, 50);
        let e = s.fields.energy();
        assert!(e.is_finite());
        assert!(
            e < e0 * 1e3,
            "contractive |t|<1 coefficients must not blow up"
        );
    }
}
