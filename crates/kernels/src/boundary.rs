//! Boundary conditions.
//!
//! The benchmark configuration of the paper uses homogeneous Dirichlet
//! boundaries in all dimensions, realized here by the permanent zero halo
//! of `Array3C` — nothing to do at runtime.
//!
//! The production solar-cell setup additionally uses *periodic* horizontal
//! boundaries. The paper lists MWD-compatible periodic boundaries as
//! work-in-progress ("Conclusion and Outlook"); matching that scope, this
//! reproduction supports periodic x for the reference engines (naive /
//! spatial) via halo exchange before each field phase, and keeps the
//! temporally blocked engines Dirichlet-only.

use em_field::{Component, FieldKind, State};

/// Boundary treatment selector for the reference engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Boundary {
    /// Homogeneous Dirichlet everywhere (zero halo). Paper benchmark mode.
    #[default]
    Dirichlet,
    /// Periodic along x, Dirichlet along y and z. Production-like mode for
    /// the solar-cell examples.
    PeriodicX,
    /// Periodic along both horizontal dimensions (x and y), Dirichlet/PML
    /// along z — the production configuration for plane-wave illumination.
    /// No stencil reads cross both halos diagonally, so the two exchanges
    /// compose.
    PeriodicXY,
}

/// Copy the wrap-around columns of every component of `kind` into the x
/// halo: `halo(-1) = interior(nx-1)`, `halo(nx) = interior(0)`.
///
/// Must run before the phase that *reads* `kind` (i.e. before the E phase
/// for `kind = H` and vice versa).
pub fn exchange_x_halo(state: &mut State, kind: FieldKind) {
    let dims = state.dims();
    let (nx, ny, nz) = (dims.nx as isize, dims.ny as isize, dims.nz as isize);
    for comp in Component::of(kind) {
        let arr = state.fields.comp_mut(comp);
        for z in 0..nz {
            for y in 0..ny {
                let lo = arr.get(0, y, z);
                let hi = arr.get(nx - 1, y, z);
                arr.set(-1, y, z, hi);
                arr.set(nx, y, z, lo);
            }
        }
    }
}

/// Copy the wrap-around rows of every component of `kind` into the y
/// halo: `halo(-1) = interior(ny-1)`, `halo(ny) = interior(0)`.
pub fn exchange_y_halo(state: &mut State, kind: FieldKind) {
    let dims = state.dims();
    let (nx, ny, nz) = (dims.nx as isize, dims.ny as isize, dims.nz as isize);
    for comp in Component::of(kind) {
        let arr = state.fields.comp_mut(comp);
        for z in 0..nz {
            for x in 0..nx {
                let lo = arr.get(x, 0, z);
                let hi = arr.get(x, ny - 1, z);
                arr.set(x, -1, z, hi);
                arr.set(x, ny, z, lo);
            }
        }
    }
}

/// One naive time step honoring the selected boundary.
pub fn step_naive_with_boundary(state: &mut State, boundary: Boundary) {
    match boundary {
        Boundary::Dirichlet => crate::sweep::step_naive(state),
        Boundary::PeriodicX => {
            // H phase reads E: refresh E halo, then update H.
            exchange_x_halo(state, FieldKind::E);
            phase_only(state, FieldKind::H);
            // E phase reads H.
            exchange_x_halo(state, FieldKind::H);
            phase_only(state, FieldKind::E);
            // The x-halo holds wrap values until the next exchange;
            // engines that assume a zero halo must not be mixed with
            // periodic modes on the same state.
        }
        Boundary::PeriodicXY => {
            exchange_x_halo(state, FieldKind::E);
            exchange_y_halo(state, FieldKind::E);
            phase_only(state, FieldKind::H);
            exchange_x_halo(state, FieldKind::H);
            exchange_y_halo(state, FieldKind::H);
            phase_only(state, FieldKind::E);
        }
    }
}

fn phase_only(state: &mut State, kind: FieldKind) {
    let dims = state.dims();
    let g = crate::raw::RawGrid::new(state);
    for comp in Component::of(kind) {
        // SAFETY: single-threaded; same argument as `step_naive`.
        unsafe {
            crate::update::update_component_rows(&g, comp, 0..dims.nz, 0..dims.ny, 0..dims.nx)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_field::{Cplx, GridDims};

    #[test]
    fn exchange_copies_wrap_columns() {
        let dims = GridDims::new(4, 2, 2);
        let mut s = State::zeros(dims);
        s.fields
            .comp_mut(Component::Hyx)
            .set(0, 1, 1, Cplx::new(1.0, 2.0));
        s.fields
            .comp_mut(Component::Hyx)
            .set(3, 1, 1, Cplx::new(-3.0, 0.5));
        exchange_x_halo(&mut s, FieldKind::H);
        let arr = s.fields.comp(Component::Hyx);
        assert_eq!(arr.get(-1, 1, 1), Cplx::new(-3.0, 0.5));
        assert_eq!(arr.get(4, 1, 1), Cplx::new(1.0, 2.0));
    }

    #[test]
    fn periodic_x_conserves_translation_symmetry() {
        // With x-uniform fields and coefficients, the periodic step must
        // keep fields x-uniform (no artificial boundary effects), whereas
        // Dirichlet breaks uniformity at the x edges.
        let dims = GridDims::new(6, 3, 3);
        let mut su = State::zeros(dims);
        // x-uniform coefficients and fields built from scratch:
        for comp in Component::ALL {
            su.coeffs
                .t_mut(comp)
                .fill_with(|_, y, z| Cplx::new(0.3 + 0.01 * y as f64, 0.02 * z as f64));
            su.coeffs
                .c_mut(comp)
                .fill_with(|_, y, z| Cplx::new(0.1 * z as f64, 0.05 + 0.01 * y as f64));
            su.fields
                .comp_mut(comp)
                .fill_with(|_, y, z| Cplx::new(1.0 + y as f64, z as f64));
        }
        for _ in 0..3 {
            step_naive_with_boundary(&mut su, Boundary::PeriodicX);
        }
        for comp in Component::ALL {
            let arr = su.fields.comp(comp);
            for z in 0..dims.nz as isize {
                for y in 0..dims.ny as isize {
                    let v0 = arr.get(0, y, z);
                    for x in 1..dims.nx as isize {
                        let v = arr.get(x, y, z);
                        assert!(
                            (v - v0).abs() < 1e-12 * (1.0 + v0.abs()),
                            "{comp} not x-uniform at ({x},{y},{z})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dirichlet_matches_plain_naive() {
        let dims = GridDims::cubic(4);
        let mut a = State::zeros(dims);
        a.fields.fill_deterministic(23);
        a.coeffs.fill_deterministic(24);
        let mut b = a.clone();
        step_naive_with_boundary(&mut a, Boundary::Dirichlet);
        crate::sweep::step_naive(&mut b);
        assert!(a.fields.bit_eq(&b.fields));
    }
}
