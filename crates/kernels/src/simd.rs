//! SIMD row kernels with runtime ISA dispatch.
//!
//! The THIIM cell update is an independent, fixed-order mul/add sequence
//! per cell — no reductions, no horizontal operations. On the split
//! re/im layout every operand of a row is unit-stride, so the update
//! maps onto vector lanes as N independent copies of the scalar
//! computation. Because every kernel below performs *exactly* the same
//! IEEE-754 operations in *exactly* the same order per cell (no FMA
//! contraction, no reassociation), the SIMD paths are bit-for-bit
//! identical to the scalar path — which is what lets the existing
//! bitwise naive-vs-engines oracle keep pinning every engine on every
//! instruction set (`tests/simd_parity.rs` proves it property-wise).
//!
//! Dispatch happens once per process via [`active_isa`]
//! (`is_x86_feature_detected!`, overridable with the `MWD_SIMD`
//! environment variable) and is carried on [`crate::RawGrid`], so the
//! per-row cost is a single predictable branch.

use std::sync::OnceLock;

/// Widest vector width in doubles any dispatched path uses (AVX-512,
/// one cache line). Defined as [`em_field::LANE_F64`] — the same unit
/// `Array3C` rounds its plane stride to — so lane-aligned offsets from a
/// plane base stay aligned by construction. Engines that chunk the x
/// dimension align chunk boundaries to this so whole chunks execute
/// without scalar tails.
pub const LANE_WIDTH: usize = em_field::LANE_F64;

/// Chunk width of the portable scalar fallback: grouped lanes that LLVM
/// can auto-vectorize on any target while keeping per-lane bit-parity.
const SCALAR_CHUNK: usize = 4;

/// Instruction set of the row kernels, in increasing capability order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Isa {
    /// Portable chunked-lane scalar code (any target).
    Scalar,
    /// 256-bit AVX2, 4 doubles per lane group.
    Avx2,
    /// 512-bit AVX-512F, 8 doubles per lane group.
    Avx512,
}

impl Isa {
    /// Doubles processed per vector iteration.
    pub fn lanes(self) -> usize {
        match self {
            Isa::Scalar => 1,
            Isa::Avx2 => 4,
            Isa::Avx512 => 8,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }

    fn parse(s: &str) -> Option<Isa> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Isa::Scalar),
            "avx2" => Some(Isa::Avx2),
            "avx512" | "avx512f" => Some(Isa::Avx512),
            _ => None,
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Best instruction set this CPU supports, probed once.
pub fn detected_isa() -> Isa {
    static DETECTED: OnceLock<Isa> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                Isa::Avx512
            } else if std::arch::is_x86_feature_detected!("avx2") {
                Isa::Avx2
            } else {
                Isa::Scalar
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Isa::Scalar
        }
    })
}

/// The instruction set new [`crate::RawGrid`]s dispatch to: the detected
/// one, optionally *lowered* by the `MWD_SIMD` environment variable
/// (`scalar` / `avx2` / `avx512`). A request the CPU cannot satisfy is
/// clamped down to the detected level; unknown values are ignored.
pub fn active_isa() -> Isa {
    static ACTIVE: OnceLock<Isa> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let detected = detected_isa();
        match std::env::var("MWD_SIMD").ok().and_then(|v| Isa::parse(&v)) {
            Some(requested) => requested.min(detected),
            None => detected,
        }
    })
}

/// A rectangular span of one component update: `nz * ny` x-rows of `n`
/// cells each, with every pointer advanced to the span origin
/// `(x0, y0, z0)` in the *re* plane; the im plane of each operand lives
/// at `+ im` doubles, row `(yi, zi)` at `+ yi*y_stride + zi*z_stride`.
/// `s1n`/`s2n` are the stencil-shifted views of the two source-split
/// arrays. Kernels take whole spans (not single rows) so the ISA
/// dispatch, pointer setup and function-call overhead are amortized over
/// the full loop nest — with short rows that overhead otherwise rivals
/// the arithmetic.
pub(crate) struct Span {
    pub dst: *mut f64,
    pub t: *const f64,
    pub c: *const f64,
    /// Null iff the kernel is monomorphized with `HAS_SRC = false`.
    pub src: *const f64,
    pub s1c: *const f64,
    pub s1n: *const f64,
    pub s2c: *const f64,
    pub s2n: *const f64,
    /// f64 distance from re plane to im plane (shared by all arrays).
    pub im: usize,
    /// Cells per x-row.
    pub n: usize,
    /// Rows along y.
    pub ny: usize,
    /// Planes along z.
    pub nz: usize,
    /// f64 distance between consecutive y rows.
    pub y_stride: usize,
    /// f64 distance between consecutive z planes.
    pub z_stride: usize,
}

/// The scalar cell update at f64 offset `j` (row offset + x index): the
/// paper's Listing 1/2 body on split planes. Every other kernel in this
/// module reproduces exactly this operation order per lane.
///
/// # Safety
/// `j` in-span, and the `Span` pointers must satisfy the `RawGrid`
/// contract.
#[inline(always)]
unsafe fn cell<const NEG: bool, const HAS_SRC: bool>(s: &Span, j: usize) -> (f64, f64) {
    let im = s.im;
    // D = center - neighbor, summed over the two split parts
    // (left-to-right: ((s1c - s1n) + s2c) - s2n, as in the C code).
    let d_re = *s.s1c.add(j) - *s.s1n.add(j) + *s.s2c.add(j) - *s.s2n.add(j);
    let d_im = *s.s1c.add(im + j) - *s.s1n.add(im + j) + *s.s2c.add(im + j) - *s.s2n.add(im + j);

    let dr = *s.dst.add(j);
    let di = *s.dst.add(im + j);
    let tr = *s.t.add(j);
    let ti = *s.t.add(im + j);
    let cr = *s.c.add(j);
    let ci = *s.c.add(im + j);

    // dst*t (complex), plus optional source.
    let mut re = dr * tr - di * ti;
    let mut imv = dr * ti + di * tr;
    if HAS_SRC {
        re += *s.src.add(j);
        imv += *s.src.add(im + j);
    }
    // -+ c*D (complex), sign chosen at compile time.
    if NEG {
        // curl sign -1: dst += c*D
        re += cr * d_re - ci * d_im;
        imv += cr * d_im + ci * d_re;
    } else {
        // curl sign +1: dst -= c*D  (Listing 1 form)
        re -= cr * d_re - ci * d_im;
        imv -= cr * d_im + ci * d_re;
    }
    (re, imv)
}

/// Scalar cells `[start, n)` of the row at f64 offset `o`: lanes grouped
/// in chunks of [`SCALAR_CHUNK`] with all loads preceding all stores,
/// which auto-vectorizes on any target. Also the tail handler of the
/// wide paths.
///
/// # Safety
/// `start <= s.n`, `o` a valid row offset; pointers per the `RawGrid`
/// contract.
#[inline(always)]
unsafe fn scalar_row_from<const NEG: bool, const HAS_SRC: bool>(s: &Span, o: usize, start: usize) {
    let mut i = start;
    while i + SCALAR_CHUNK <= s.n {
        let mut re = [0.0f64; SCALAR_CHUNK];
        let mut imv = [0.0f64; SCALAR_CHUNK];
        for l in 0..SCALAR_CHUNK {
            (re[l], imv[l]) = cell::<NEG, HAS_SRC>(s, o + i + l);
        }
        for l in 0..SCALAR_CHUNK {
            *s.dst.add(o + i + l) = re[l];
            *s.dst.add(s.im + o + i + l) = imv[l];
        }
        i += SCALAR_CHUNK;
    }
    while i < s.n {
        let (re, imv) = cell::<NEG, HAS_SRC>(s, o + i);
        *s.dst.add(o + i) = re;
        *s.dst.add(s.im + o + i) = imv;
        i += 1;
    }
}

/// Portable span kernel: the chunked-lane scalar rows over the nest.
///
/// # Safety
/// `Span` pointers per the `RawGrid` contract.
unsafe fn span_scalar<const NEG: bool, const HAS_SRC: bool>(s: &Span) {
    for zi in 0..s.nz {
        for yi in 0..s.ny {
            scalar_row_from::<NEG, HAS_SRC>(s, zi * s.z_stride + yi * s.y_stride, 0);
        }
    }
}

/// Generate a `target_feature`-gated vector span kernel from the
/// intrinsic names of one register width. The row body is a
/// lane-parallel transcription of [`cell`] with identical operation
/// order (loads, two complex multiplies, optional source add, signed
/// curl update) and NO fused multiply-add, so each lane computes the
/// scalar bits; ragged row ends fall back to [`scalar_row_from`].
#[cfg(target_arch = "x86_64")]
macro_rules! vector_span_kernel {
    ($name:ident, $feature:literal, $lanes:expr, $load:ident, $store:ident,
     $add:ident, $sub:ident, $mul:ident) => {
        /// # Safety
        /// Caller must ensure the CPU supports the gated feature and the
        /// `Span` pointers satisfy the `RawGrid` contract.
        #[target_feature(enable = $feature)]
        unsafe fn $name<const NEG: bool, const HAS_SRC: bool>(s: &Span) {
            use std::arch::x86_64::*;
            const L: usize = $lanes;
            let im = s.im;
            for zi in 0..s.nz {
                for yi in 0..s.ny {
                    let o = zi * s.z_stride + yi * s.y_stride;
                    let mut i = 0usize;
                    while i + L <= s.n {
                        let j = o + i;
                        let d_re = $sub(
                            $add(
                                $sub($load(s.s1c.add(j)), $load(s.s1n.add(j))),
                                $load(s.s2c.add(j)),
                            ),
                            $load(s.s2n.add(j)),
                        );
                        let d_im = $sub(
                            $add(
                                $sub($load(s.s1c.add(im + j)), $load(s.s1n.add(im + j))),
                                $load(s.s2c.add(im + j)),
                            ),
                            $load(s.s2n.add(im + j)),
                        );

                        let dr = $load(s.dst.add(j).cast_const());
                        let di = $load(s.dst.add(im + j).cast_const());
                        let tr = $load(s.t.add(j));
                        let ti = $load(s.t.add(im + j));
                        let cr = $load(s.c.add(j));
                        let ci = $load(s.c.add(im + j));

                        let mut re = $sub($mul(dr, tr), $mul(di, ti));
                        let mut imv = $add($mul(dr, ti), $mul(di, tr));
                        if HAS_SRC {
                            re = $add(re, $load(s.src.add(j)));
                            imv = $add(imv, $load(s.src.add(im + j)));
                        }
                        let cd_re = $sub($mul(cr, d_re), $mul(ci, d_im));
                        let cd_im = $add($mul(cr, d_im), $mul(ci, d_re));
                        if NEG {
                            re = $add(re, cd_re);
                            imv = $add(imv, cd_im);
                        } else {
                            re = $sub(re, cd_re);
                            imv = $sub(imv, cd_im);
                        }
                        $store(s.dst.add(j), re);
                        $store(s.dst.add(im + j), imv);
                        i += L;
                    }
                    scalar_row_from::<NEG, HAS_SRC>(s, o, i);
                }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
vector_span_kernel!(
    span_avx2,
    "avx2",
    4,
    _mm256_loadu_pd,
    _mm256_storeu_pd,
    _mm256_add_pd,
    _mm256_sub_pd,
    _mm256_mul_pd
);

#[cfg(target_arch = "x86_64")]
vector_span_kernel!(
    span_avx512,
    "avx512f",
    8,
    _mm512_loadu_pd,
    _mm512_storeu_pd,
    _mm512_add_pd,
    _mm512_sub_pd,
    _mm512_mul_pd
);

/// Update one span through the selected instruction set.
///
/// # Safety
/// `Span` pointers per the `RawGrid` contract; `isa` must not exceed
/// what the CPU supports (guaranteed when it comes from [`active_isa`]
/// or is clamped by it).
#[inline]
pub(crate) unsafe fn span_update<const NEG: bool, const HAS_SRC: bool>(isa: Isa, s: &Span) {
    match isa {
        Isa::Scalar => span_scalar::<NEG, HAS_SRC>(s),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => span_avx2::<NEG, HAS_SRC>(s),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => span_avx512::<NEG, HAS_SRC>(s),
        #[cfg(not(target_arch = "x86_64"))]
        _ => span_scalar::<NEG, HAS_SRC>(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_ordering_and_lanes() {
        assert!(Isa::Scalar < Isa::Avx2 && Isa::Avx2 < Isa::Avx512);
        assert_eq!(Isa::Scalar.lanes(), 1);
        assert_eq!(Isa::Avx2.lanes(), 4);
        assert_eq!(Isa::Avx512.lanes(), 8);
        assert_eq!(Isa::Avx512.lanes(), LANE_WIDTH);
    }

    #[test]
    fn parse_accepts_known_names() {
        assert_eq!(Isa::parse("scalar"), Some(Isa::Scalar));
        assert_eq!(Isa::parse(" AVX2 "), Some(Isa::Avx2));
        assert_eq!(Isa::parse("avx512f"), Some(Isa::Avx512));
        assert_eq!(Isa::parse("neon"), None);
    }

    #[test]
    fn active_isa_never_exceeds_detected() {
        assert!(active_isa() <= detected_isa());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Isa::Avx2.to_string(), "avx2");
    }
}
