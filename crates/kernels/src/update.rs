//! The component-row update kernels (paper Listings 1 and 2).
//!
//! The arithmetic lives in [`crate::simd`]: a portable chunked-lane
//! scalar kernel plus AVX2/AVX-512 vector kernels with identical
//! per-cell operation order, dispatched through the ISA selected on the
//! [`RawGrid`]. This module assembles the per-row pointer set (split
//! re/im planes, stencil-shifted neighbor rows) and monomorphizes over
//! the curl sign and source presence so the generated code performs
//! exactly the paper's flop counts (22 flops/cell for the four Listing-1
//! updates, 20 for the eight Listing-2 updates).

use crate::raw::RawGrid;
use crate::simd::{self, Span};
use em_field::Component;
use std::ops::Range;

/// Build the `Span` pointer set for `nz * ny` rows of `n` cells
/// starting at flat index `base` and run the dispatched kernel. `shift`
/// is the signed f64 offset (within one plane) from a cell to its
/// stencil neighbor.
///
/// # Safety
/// Caller guarantees the [`RawGrid`] aliasing contract for the written
/// cells of `comp` and the cells read (same rows of `t`, `c`, `src`, and
/// the `shift`ed rows of the two source-split arrays, which are
/// in-bounds thanks to the one-cell halo).
#[inline]
unsafe fn dispatch_span(
    g: &RawGrid<'_>,
    comp: Component,
    base: usize,
    shift: isize,
    n: usize,
    ny: usize,
    nz: usize,
) {
    let [sp1, sp2] = comp.source_splits();
    let s1 = g.field_ptr(sp1) as *const f64;
    let s2 = g.field_ptr(sp2) as *const f64;
    let src = comp.source_array();
    let span = Span {
        dst: g.field_ptr(comp).add(base),
        t: g.t_ptr(comp).add(base),
        c: g.c_ptr(comp).add(base),
        src: src
            .map(|s| g.src_ptr(s).add(base))
            .unwrap_or(std::ptr::null()),
        s1c: s1.add(base),
        s1n: s1.offset(base as isize + shift),
        s2c: s2.add(base),
        s2n: s2.offset(base as isize + shift),
        im: g.im_off,
        n,
        ny,
        nz,
        y_stride: g.y_stride,
        z_stride: g.z_stride,
    };
    match (comp.curl_sign() < 0.0, src.is_some()) {
        (false, true) => simd::span_update::<false, true>(g.isa, &span),
        (true, true) => simd::span_update::<true, true>(g.isa, &span),
        (false, false) => simd::span_update::<false, false>(g.isa, &span),
        (true, false) => simd::span_update::<true, false>(g.isa, &span),
    }
}

/// Update component `comp` on the row `(x_range, y, z)`.
///
/// # Safety
/// See [`RawGrid`]: the caller's schedule must make the written cells
/// exclusive and the read cells quiescent for the duration of the call.
#[inline]
pub unsafe fn update_component_row(
    g: &RawGrid<'_>,
    comp: Component,
    y: usize,
    z: usize,
    x_range: Range<usize>,
) {
    if x_range.is_empty() {
        return;
    }
    debug_assert!(x_range.end <= g.dims().nx);
    debug_assert!(y < g.dims().ny && z < g.dims().nz);

    let n = x_range.end - x_range.start;
    let base = g.idx(x_range.start, y, z);
    let shift = comp.offset_dir() * g.axis_stride(comp.deriv_axis()) as isize;
    dispatch_span(g, comp, base, shift, n, 1, 1);
}

/// Update component `comp` over a rectangular region
/// `(x_range, y_range, z_range)` in row-major order. The whole region is
/// handed to the kernel as one `Span` so ISA dispatch and pointer
/// setup cost once per region, not once per row.
///
/// # Safety
/// Same contract as [`update_component_row`].
pub unsafe fn update_component_rows(
    g: &RawGrid<'_>,
    comp: Component,
    z_range: Range<usize>,
    y_range: Range<usize>,
    x_range: Range<usize>,
) {
    if x_range.is_empty() || y_range.is_empty() || z_range.is_empty() {
        return;
    }
    debug_assert!(x_range.end <= g.dims().nx);
    debug_assert!(y_range.end <= g.dims().ny && z_range.end <= g.dims().nz);

    let n = x_range.end - x_range.start;
    let base = g.idx(x_range.start, y_range.start, z_range.start);
    let shift = comp.offset_dir() * g.axis_stride(comp.deriv_axis()) as isize;
    dispatch_span(g, comp, base, shift, n, y_range.len(), z_range.len());
}

/// [`update_component_row`] with *periodic* x boundaries, implemented by
/// peeling the wrap-around iteration off the x loop exactly as the
/// paper's outlook describes ("peeling the first and last iteration off
/// the x loop to explicitly specify the contributing grid points at the
/// other end of the domain"). Only the four x-derivative components
/// (`Hzy`, `Hyz`, `Ezy`, `Eyz`) differ from the Dirichlet kernel: their
/// boundary cell reads the source component from the opposite end of the
/// same row. Because that read targets arrays written by *earlier* rows,
/// the peeled kernel composes with every engine — including MWD — with
/// no halo exchange and no extra synchronization.
///
/// # Safety
/// Same contract as [`update_component_row`].
#[inline]
pub unsafe fn update_component_row_periodic_x(
    g: &RawGrid<'_>,
    comp: Component,
    y: usize,
    z: usize,
    x_range: Range<usize>,
) {
    if comp.deriv_axis() != em_field::Axis::X {
        return update_component_row(g, comp, y, z, x_range);
    }
    if x_range.is_empty() {
        return;
    }
    let nx = g.dims().nx;
    debug_assert!(x_range.end <= nx);

    // The wrapped cell: x = 0 for H (reads x-1 -> nx-1), x = nx-1 for E
    // (reads x+1 -> 0).
    let (wrap_x, wrap_shift) = if comp.offset_dir() < 0 {
        (0usize, (nx - 1) as isize)
    } else {
        (nx - 1, -((nx - 1) as isize))
    };

    let interior = if x_range.contains(&wrap_x) {
        // Peel the wrapped element: same inner-loop body, but the
        // neighbor offset points across the row.
        run_peeled(g, comp, y, z, wrap_x, wrap_shift);
        if wrap_x == x_range.start {
            x_range.start + 1..x_range.end
        } else {
            x_range.start..x_range.end - 1
        }
    } else {
        x_range
    };
    update_component_row(g, comp, y, z, interior);
}

/// One peeled cell with an explicit neighbor shift.
#[inline]
unsafe fn run_peeled(g: &RawGrid<'_>, comp: Component, y: usize, z: usize, x: usize, shift: isize) {
    dispatch_span(g, comp, g.idx(x, y, z), shift, 1, 1, 1);
}

/// Periodic-x variant of [`update_component_rows`].
///
/// # Safety
/// Same contract as [`update_component_row`].
pub unsafe fn update_component_rows_periodic_x(
    g: &RawGrid<'_>,
    comp: Component,
    z_range: Range<usize>,
    y_range: Range<usize>,
    x_range: Range<usize>,
) {
    if comp.deriv_axis() != em_field::Axis::X {
        // No wrap cell to peel: take the one-span fast path.
        return update_component_rows(g, comp, z_range, y_range, x_range);
    }
    for z in z_range {
        for y in y_range.clone() {
            update_component_row_periodic_x(g, comp, y, z, x_range.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{exchange_x_halo, Boundary};
    use em_field::{Axis, Component, Cplx, GridDims, State};

    /// Scalar reference implementation of one component update at one
    /// cell, written with `Cplx` arithmetic straight from the equations.
    fn reference_update(state: &State, comp: Component, x: usize, y: usize, z: usize) -> Cplx {
        let (xi, yi, zi) = (x as isize, y as isize, z as isize);
        let dir = comp.offset_dir();
        let (nx, ny, nz) = match comp.deriv_axis() {
            Axis::X => (xi + dir, yi, zi),
            Axis::Y => (xi, yi + dir, zi),
            Axis::Z => (xi, yi, zi + dir),
        };
        let [sp1, sp2] = comp.source_splits();
        let center =
            state.fields.comp(sp1).get(xi, yi, zi) + state.fields.comp(sp2).get(xi, yi, zi);
        let neigh = state.fields.comp(sp1).get(nx, ny, nz) + state.fields.comp(sp2).get(nx, ny, nz);
        let d = center - neigh;
        let old = state.fields.comp(comp).get(xi, yi, zi);
        let t = state.coeffs.t(comp).get(xi, yi, zi);
        let c = state.coeffs.c(comp).get(xi, yi, zi);
        let src = comp
            .source_array()
            .map(|s| state.coeffs.src(s).get(xi, yi, zi))
            .unwrap_or(Cplx::ZERO);
        old * t + src - (c * d) * comp.curl_sign()
    }

    fn filled_state(dims: GridDims, seed: u64) -> State {
        let mut s = State::zeros(dims);
        s.fields.fill_deterministic(seed);
        s.coeffs.fill_deterministic(seed.wrapping_add(1));
        s
    }

    #[test]
    fn kernel_matches_scalar_reference_for_every_component() {
        let dims = GridDims::new(4, 3, 3);
        for comp in Component::ALL {
            let state = filled_state(dims, 42 + comp.index() as u64);
            // Expected values computed BEFORE the kernel mutates anything.
            let mut expect = vec![];
            let (y, z) = (1, 1);
            for x in 0..dims.nx {
                expect.push(reference_update(&state, comp, x, y, z));
            }
            {
                let g = RawGrid::new(&state);
                unsafe { update_component_row(&g, comp, y, z, 0..dims.nx) };
            }
            for (x, &want) in expect.iter().enumerate() {
                let got = state.fields.comp(comp).get(x as isize, 1, 1);
                assert!(
                    (got - want).abs() < 1e-13,
                    "{comp} at x={x}: got {got:?}, want {want:?}"
                );
            }
        }
    }

    #[test]
    fn kernel_only_writes_requested_cells() {
        let dims = GridDims::new(5, 4, 4);
        let state = filled_state(dims, 3);
        let before = state.fields.clone();
        {
            let g = RawGrid::new(&state);
            unsafe { update_component_row(&g, Component::Hzx, 2, 1, 1..3) };
        }
        for comp in Component::ALL {
            for ((x, y, z), v) in state.fields.comp(comp).iter_interior() {
                let old = before.comp(comp).get(x as isize, y as isize, z as isize);
                let touched = comp == Component::Hzx && y == 2 && z == 1 && (1..3).contains(&x);
                if touched {
                    // value may or may not change numerically, no assertion
                } else {
                    assert_eq!(v, old, "{comp} ({x},{y},{z}) must be untouched");
                }
            }
        }
    }

    #[test]
    fn boundary_reads_hit_zero_halo() {
        // An H component with a z- shift reading at z=0 must see zeros
        // (Dirichlet): result = old*t + src only.
        let dims = GridDims::new(3, 3, 3);
        let mut state = filled_state(dims, 9);
        // Zero the source-split arrays so the whole curl term comes from
        // the halo read direction.
        let [sp1, sp2] = Component::Hyx.source_splits();
        state.fields.comp_mut(sp1).zero();
        state.fields.comp_mut(sp2).zero();
        let old = state.fields.comp(Component::Hyx).get(1, 1, 0);
        let t = state.coeffs.t(Component::Hyx).get(1, 1, 0);
        let src = state.coeffs.src(em_field::SourceArray::SrcHy).get(1, 1, 0);
        {
            let g = RawGrid::new(&state);
            unsafe { update_component_row(&g, Component::Hyx, 1, 0, 0..dims.nx) };
        }
        let got = state.fields.comp(Component::Hyx).get(1, 1, 0);
        assert!((got - (old * t + src)).abs() < 1e-15);
        assert!(state.fields.comp(Component::Hyx).halo_is_zero());
    }

    #[test]
    fn empty_range_is_a_noop() {
        let dims = GridDims::cubic(3);
        let state = filled_state(dims, 4);
        let before = state.fields.clone();
        {
            let g = RawGrid::new(&state);
            unsafe { update_component_row(&g, Component::Exz, 0, 0, 2..2) };
        }
        assert!(state.fields.bit_eq(&before));
    }

    #[test]
    fn peeled_periodic_kernel_matches_halo_exchange() {
        // The loop-peeled wrap must produce exactly the bits of the
        // halo-exchange implementation for every x-derivative component.
        let dims = GridDims::new(6, 4, 4);
        for comp in Component::ALL
            .into_iter()
            .filter(|c| c.deriv_axis() == Axis::X)
        {
            let mut a = filled_state(dims, 31 + comp.index() as u64);
            let b = a.clone();
            // Reference: refresh the halo of the source field, then run
            // the Dirichlet kernel (which now reads wrap values).
            exchange_x_halo(&mut a, comp.field_kind().other());
            {
                let g = RawGrid::new(&a);
                unsafe { update_component_rows(&g, comp, 0..4, 0..4, 0..6) };
            }
            // Peeled: no halo work at all.
            {
                let g = RawGrid::new(&b);
                unsafe { update_component_rows_periodic_x(&g, comp, 0..4, 0..4, 0..6) };
            }
            assert!(
                a.fields.comp(comp).bit_eq(b.fields.comp(comp)),
                "{comp}: peeled kernel deviates from halo exchange"
            );
        }
        let _ = Boundary::Dirichlet;
    }

    #[test]
    fn peeled_kernel_handles_partial_chunks() {
        // TG x-chunks: a chunk containing the wrap cell peels it; chunks
        // without it are plain. Union of chunks == full periodic row.
        let dims = GridDims::new(8, 3, 3);
        let comp = Component::Hzy; // x- shift
        let full = filled_state(dims, 77);
        let chunked = full.clone();
        {
            let g = RawGrid::new(&full);
            unsafe { update_component_row_periodic_x(&g, comp, 1, 1, 0..8) };
        }
        {
            let g = RawGrid::new(&chunked);
            unsafe {
                update_component_row_periodic_x(&g, comp, 1, 1, 0..3);
                update_component_row_periodic_x(&g, comp, 1, 1, 3..8);
            }
        }
        assert!(full.fields.comp(comp).bit_eq(chunked.fields.comp(comp)));
    }

    #[test]
    fn non_x_components_ignore_periodic_flag() {
        let dims = GridDims::new(5, 4, 4);
        let a = filled_state(dims, 13);
        let b = a.clone();
        {
            let g = RawGrid::new(&a);
            unsafe { update_component_rows(&g, Component::Hyx, 0..4, 0..4, 0..5) };
        }
        {
            let g = RawGrid::new(&b);
            unsafe { update_component_rows_periodic_x(&g, Component::Hyx, 0..4, 0..4, 0..5) };
        }
        assert!(a.fields.bit_eq(&b.fields));
    }

    #[test]
    fn rows_region_covers_exactly_the_box() {
        let dims = GridDims::new(4, 5, 6);
        let state = filled_state(dims, 11);
        let before = state.fields.clone();
        {
            let g = RawGrid::new(&state);
            unsafe { update_component_rows(&g, Component::Eyz, 2..5, 1..4, 0..4) };
        }
        let mut changed = 0;
        for ((x, y, z), v) in state.fields.comp(Component::Eyz).iter_interior() {
            let inside = (2..5).contains(&z) && (1..4).contains(&y) && x < 4;
            let old = before
                .comp(Component::Eyz)
                .get(x as isize, y as isize, z as isize);
            if !inside {
                assert_eq!(v, old);
            } else if v != old {
                changed += 1;
            }
        }
        assert!(changed > 0, "updates with random data must change values");
    }
}
