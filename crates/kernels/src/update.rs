//! The component-row update kernels (paper Listings 1 and 2).

use crate::raw::RawGrid;
use em_field::Component;
use std::ops::Range;

/// Inner loop over one x-row for one component.
///
/// Monomorphized over the curl sign and source presence so the generated
/// code performs exactly the paper's flop counts (22 flops/cell for the
/// four Listing-1 updates, 20 for the eight Listing-2 updates).
///
/// # Safety
/// Caller guarantees the [`RawGrid`] aliasing contract for the cells
/// `(x0..x1, y, z)` of `dst` and the cells read (same row of `t`, `c`,
/// `src`, and the `shift`ed row of the two source-split arrays, which is
/// in-bounds thanks to the one-cell halo).
#[inline]
#[allow(clippy::too_many_arguments)]
unsafe fn row_loop<const NEG: bool, const HAS_SRC: bool>(
    dst: *mut f64,
    t: *const f64,
    c: *const f64,
    src: *const f64,
    s1: *const f64,
    s2: *const f64,
    base: usize,
    shift: isize,
    n: usize,
) {
    // All pointers are advanced to the row base; from here the loop is a
    // direct transcription of the paper's listings.
    let dst = dst.add(base);
    let t = t.add(base);
    let c = c.add(base);
    let src = if HAS_SRC {
        src.add(base)
    } else {
        std::ptr::null()
    };
    let s1c = s1.add(base);
    let s2c = s2.add(base);
    let s1n = s1.offset(base as isize + shift);
    let s2n = s2.offset(base as isize + shift);

    for i in 0..n {
        let j = 2 * i;
        // D = center - neighbor, summed over the two split parts.
        let d_re = *s1c.add(j) - *s1n.add(j) + *s2c.add(j) - *s2n.add(j);
        let d_im = *s1c.add(j + 1) - *s1n.add(j + 1) + *s2c.add(j + 1) - *s2n.add(j + 1);

        let dr = *dst.add(j);
        let di = *dst.add(j + 1);
        let tr = *t.add(j);
        let ti = *t.add(j + 1);
        let cr = *c.add(j);
        let ci = *c.add(j + 1);

        // dst*t (complex), plus optional source.
        let mut re = dr * tr - di * ti;
        let mut im = dr * ti + di * tr;
        if HAS_SRC {
            re += *src.add(j);
            im += *src.add(j + 1);
        }
        // -+ c*D (complex), sign chosen at compile time.
        if NEG {
            // curl sign -1: dst += c*D
            re += cr * d_re - ci * d_im;
            im += cr * d_im + ci * d_re;
        } else {
            // curl sign +1: dst -= c*D  (Listing 1 form)
            re -= cr * d_re - ci * d_im;
            im -= cr * d_im + ci * d_re;
        }
        *dst.add(j) = re;
        *dst.add(j + 1) = im;
    }
}

/// Update component `comp` on the row `(x_range, y, z)`.
///
/// # Safety
/// See [`RawGrid`]: the caller's schedule must make the written cells
/// exclusive and the read cells quiescent for the duration of the call.
#[inline]
pub unsafe fn update_component_row(
    g: &RawGrid<'_>,
    comp: Component,
    y: usize,
    z: usize,
    x_range: Range<usize>,
) {
    if x_range.is_empty() {
        return;
    }
    debug_assert!(x_range.end <= g.dims().nx);
    debug_assert!(y < g.dims().ny && z < g.dims().nz);

    let n = x_range.end - x_range.start;
    let base = g.idx(x_range.start, y, z);
    let shift = comp.offset_dir() * g.axis_stride(comp.deriv_axis()) as isize;
    let [sp1, sp2] = comp.source_splits();
    let dst = g.field_ptr(comp);
    let t = g.t_ptr(comp);
    let c = g.c_ptr(comp);
    let s1 = g.field_ptr(sp1) as *const f64;
    let s2 = g.field_ptr(sp2) as *const f64;
    let neg = comp.curl_sign() < 0.0;

    match (neg, comp.source_array()) {
        (false, Some(s)) => {
            row_loop::<false, true>(dst, t, c, g.src_ptr(s), s1, s2, base, shift, n)
        }
        (true, Some(s)) => row_loop::<true, true>(dst, t, c, g.src_ptr(s), s1, s2, base, shift, n),
        (false, None) => {
            row_loop::<false, false>(dst, t, c, std::ptr::null(), s1, s2, base, shift, n)
        }
        (true, None) => {
            row_loop::<true, false>(dst, t, c, std::ptr::null(), s1, s2, base, shift, n)
        }
    }
}

/// Update component `comp` over a rectangular region
/// `(x_range, y_range, z_range)` in row-major order.
///
/// # Safety
/// Same contract as [`update_component_row`].
pub unsafe fn update_component_rows(
    g: &RawGrid<'_>,
    comp: Component,
    z_range: Range<usize>,
    y_range: Range<usize>,
    x_range: Range<usize>,
) {
    for z in z_range {
        for y in y_range.clone() {
            update_component_row(g, comp, y, z, x_range.clone());
        }
    }
}

/// [`update_component_row`] with *periodic* x boundaries, implemented by
/// peeling the wrap-around iteration off the x loop exactly as the
/// paper's outlook describes ("peeling the first and last iteration off
/// the x loop to explicitly specify the contributing grid points at the
/// other end of the domain"). Only the four x-derivative components
/// (`Hzy`, `Hyz`, `Ezy`, `Eyz`) differ from the Dirichlet kernel: their
/// boundary cell reads the source component from the opposite end of the
/// same row. Because that read targets arrays written by *earlier* rows,
/// the peeled kernel composes with every engine — including MWD — with
/// no halo exchange and no extra synchronization.
///
/// # Safety
/// Same contract as [`update_component_row`].
#[inline]
pub unsafe fn update_component_row_periodic_x(
    g: &RawGrid<'_>,
    comp: Component,
    y: usize,
    z: usize,
    x_range: Range<usize>,
) {
    if comp.deriv_axis() != em_field::Axis::X {
        return update_component_row(g, comp, y, z, x_range);
    }
    if x_range.is_empty() {
        return;
    }
    let nx = g.dims().nx;
    debug_assert!(x_range.end <= nx);

    // The wrapped cell: x = 0 for H (reads x-1 -> nx-1), x = nx-1 for E
    // (reads x+1 -> 0).
    let (wrap_x, wrap_shift) = if comp.offset_dir() < 0 {
        (0usize, 2 * (nx - 1) as isize)
    } else {
        (nx - 1, -(2 * (nx - 1) as isize))
    };

    let interior = if x_range.contains(&wrap_x) {
        // Peel the wrapped element: same inner-loop body, but the
        // neighbor offset points across the row.
        run_peeled(g, comp, y, z, wrap_x, wrap_shift);
        if wrap_x == x_range.start {
            x_range.start + 1..x_range.end
        } else {
            x_range.start..x_range.end - 1
        }
    } else {
        x_range
    };
    update_component_row(g, comp, y, z, interior);
}

/// One peeled cell with an explicit neighbor shift.
#[inline]
unsafe fn run_peeled(g: &RawGrid<'_>, comp: Component, y: usize, z: usize, x: usize, shift: isize) {
    let base = g.idx(x, y, z);
    let [sp1, sp2] = comp.source_splits();
    let dst = g.field_ptr(comp);
    let t = g.t_ptr(comp);
    let c = g.c_ptr(comp);
    let s1 = g.field_ptr(sp1) as *const f64;
    let s2 = g.field_ptr(sp2) as *const f64;
    let neg = comp.curl_sign() < 0.0;
    match (neg, comp.source_array()) {
        (false, Some(s)) => {
            row_loop::<false, true>(dst, t, c, g.src_ptr(s), s1, s2, base, shift, 1)
        }
        (true, Some(s)) => row_loop::<true, true>(dst, t, c, g.src_ptr(s), s1, s2, base, shift, 1),
        (false, None) => {
            row_loop::<false, false>(dst, t, c, std::ptr::null(), s1, s2, base, shift, 1)
        }
        (true, None) => {
            row_loop::<true, false>(dst, t, c, std::ptr::null(), s1, s2, base, shift, 1)
        }
    }
}

/// Periodic-x variant of [`update_component_rows`].
///
/// # Safety
/// Same contract as [`update_component_row`].
pub unsafe fn update_component_rows_periodic_x(
    g: &RawGrid<'_>,
    comp: Component,
    z_range: Range<usize>,
    y_range: Range<usize>,
    x_range: Range<usize>,
) {
    for z in z_range {
        for y in y_range.clone() {
            update_component_row_periodic_x(g, comp, y, z, x_range.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{exchange_x_halo, Boundary};
    use em_field::{Axis, Component, Cplx, GridDims, State};

    /// Scalar reference implementation of one component update at one
    /// cell, written with `Cplx` arithmetic straight from the equations.
    fn reference_update(state: &State, comp: Component, x: usize, y: usize, z: usize) -> Cplx {
        let (xi, yi, zi) = (x as isize, y as isize, z as isize);
        let dir = comp.offset_dir();
        let (nx, ny, nz) = match comp.deriv_axis() {
            Axis::X => (xi + dir, yi, zi),
            Axis::Y => (xi, yi + dir, zi),
            Axis::Z => (xi, yi, zi + dir),
        };
        let [sp1, sp2] = comp.source_splits();
        let center =
            state.fields.comp(sp1).get(xi, yi, zi) + state.fields.comp(sp2).get(xi, yi, zi);
        let neigh = state.fields.comp(sp1).get(nx, ny, nz) + state.fields.comp(sp2).get(nx, ny, nz);
        let d = center - neigh;
        let old = state.fields.comp(comp).get(xi, yi, zi);
        let t = state.coeffs.t(comp).get(xi, yi, zi);
        let c = state.coeffs.c(comp).get(xi, yi, zi);
        let src = comp
            .source_array()
            .map(|s| state.coeffs.src(s).get(xi, yi, zi))
            .unwrap_or(Cplx::ZERO);
        old * t + src - (c * d) * comp.curl_sign()
    }

    fn filled_state(dims: GridDims, seed: u64) -> State {
        let mut s = State::zeros(dims);
        s.fields.fill_deterministic(seed);
        s.coeffs.fill_deterministic(seed.wrapping_add(1));
        s
    }

    #[test]
    fn kernel_matches_scalar_reference_for_every_component() {
        let dims = GridDims::new(4, 3, 3);
        for comp in Component::ALL {
            let state = filled_state(dims, 42 + comp.index() as u64);
            // Expected values computed BEFORE the kernel mutates anything.
            let mut expect = vec![];
            let (y, z) = (1, 1);
            for x in 0..dims.nx {
                expect.push(reference_update(&state, comp, x, y, z));
            }
            {
                let g = RawGrid::new(&state);
                unsafe { update_component_row(&g, comp, y, z, 0..dims.nx) };
            }
            for (x, &want) in expect.iter().enumerate() {
                let got = state.fields.comp(comp).get(x as isize, 1, 1);
                assert!(
                    (got - want).abs() < 1e-13,
                    "{comp} at x={x}: got {got:?}, want {want:?}"
                );
            }
        }
    }

    #[test]
    fn kernel_only_writes_requested_cells() {
        let dims = GridDims::new(5, 4, 4);
        let state = filled_state(dims, 3);
        let before = state.fields.clone();
        {
            let g = RawGrid::new(&state);
            unsafe { update_component_row(&g, Component::Hzx, 2, 1, 1..3) };
        }
        for comp in Component::ALL {
            for ((x, y, z), v) in state.fields.comp(comp).iter_interior() {
                let old = before.comp(comp).get(x as isize, y as isize, z as isize);
                let touched = comp == Component::Hzx && y == 2 && z == 1 && (1..3).contains(&x);
                if touched {
                    // value may or may not change numerically, no assertion
                } else {
                    assert_eq!(v, old, "{comp} ({x},{y},{z}) must be untouched");
                }
            }
        }
    }

    #[test]
    fn boundary_reads_hit_zero_halo() {
        // An H component with a z- shift reading at z=0 must see zeros
        // (Dirichlet): result = old*t + src only.
        let dims = GridDims::new(3, 3, 3);
        let mut state = filled_state(dims, 9);
        // Zero the source-split arrays so the whole curl term comes from
        // the halo read direction.
        let [sp1, sp2] = Component::Hyx.source_splits();
        state.fields.comp_mut(sp1).zero();
        state.fields.comp_mut(sp2).zero();
        let old = state.fields.comp(Component::Hyx).get(1, 1, 0);
        let t = state.coeffs.t(Component::Hyx).get(1, 1, 0);
        let src = state.coeffs.src(em_field::SourceArray::SrcHy).get(1, 1, 0);
        {
            let g = RawGrid::new(&state);
            unsafe { update_component_row(&g, Component::Hyx, 1, 0, 0..dims.nx) };
        }
        let got = state.fields.comp(Component::Hyx).get(1, 1, 0);
        assert!((got - (old * t + src)).abs() < 1e-15);
        assert!(state.fields.comp(Component::Hyx).halo_is_zero());
    }

    #[test]
    fn empty_range_is_a_noop() {
        let dims = GridDims::cubic(3);
        let state = filled_state(dims, 4);
        let before = state.fields.clone();
        {
            let g = RawGrid::new(&state);
            unsafe { update_component_row(&g, Component::Exz, 0, 0, 2..2) };
        }
        assert!(state.fields.bit_eq(&before));
    }

    #[test]
    fn peeled_periodic_kernel_matches_halo_exchange() {
        // The loop-peeled wrap must produce exactly the bits of the
        // halo-exchange implementation for every x-derivative component.
        let dims = GridDims::new(6, 4, 4);
        for comp in Component::ALL
            .into_iter()
            .filter(|c| c.deriv_axis() == Axis::X)
        {
            let mut a = filled_state(dims, 31 + comp.index() as u64);
            let b = a.clone();
            // Reference: refresh the halo of the source field, then run
            // the Dirichlet kernel (which now reads wrap values).
            exchange_x_halo(&mut a, comp.field_kind().other());
            {
                let g = RawGrid::new(&a);
                unsafe { update_component_rows(&g, comp, 0..4, 0..4, 0..6) };
            }
            // Peeled: no halo work at all.
            {
                let g = RawGrid::new(&b);
                unsafe { update_component_rows_periodic_x(&g, comp, 0..4, 0..4, 0..6) };
            }
            assert!(
                a.fields.comp(comp).bit_eq(b.fields.comp(comp)),
                "{comp}: peeled kernel deviates from halo exchange"
            );
        }
        let _ = Boundary::Dirichlet;
    }

    #[test]
    fn peeled_kernel_handles_partial_chunks() {
        // TG x-chunks: a chunk containing the wrap cell peels it; chunks
        // without it are plain. Union of chunks == full periodic row.
        let dims = GridDims::new(8, 3, 3);
        let comp = Component::Hzy; // x- shift
        let full = filled_state(dims, 77);
        let chunked = full.clone();
        {
            let g = RawGrid::new(&full);
            unsafe { update_component_row_periodic_x(&g, comp, 1, 1, 0..8) };
        }
        {
            let g = RawGrid::new(&chunked);
            unsafe {
                update_component_row_periodic_x(&g, comp, 1, 1, 0..3);
                update_component_row_periodic_x(&g, comp, 1, 1, 3..8);
            }
        }
        assert!(full.fields.comp(comp).bit_eq(chunked.fields.comp(comp)));
    }

    #[test]
    fn non_x_components_ignore_periodic_flag() {
        let dims = GridDims::new(5, 4, 4);
        let a = filled_state(dims, 13);
        let b = a.clone();
        {
            let g = RawGrid::new(&a);
            unsafe { update_component_rows(&g, Component::Hyx, 0..4, 0..4, 0..5) };
        }
        {
            let g = RawGrid::new(&b);
            unsafe { update_component_rows_periodic_x(&g, Component::Hyx, 0..4, 0..4, 0..5) };
        }
        assert!(a.fields.bit_eq(&b.fields));
    }

    #[test]
    fn rows_region_covers_exactly_the_box() {
        let dims = GridDims::new(4, 5, 6);
        let state = filled_state(dims, 11);
        let before = state.fields.clone();
        {
            let g = RawGrid::new(&state);
            unsafe { update_component_rows(&g, Component::Eyz, 2..5, 1..4, 0..4) };
        }
        let mut changed = 0;
        for ((x, y, z), v) in state.fields.comp(Component::Eyz).iter_interior() {
            let inside = (2..5).contains(&z) && (1..4).contains(&y) && x < 4;
            let old = before
                .comp(Component::Eyz)
                .get(x as isize, y as isize, z as isize);
            if !inside {
                assert_eq!(v, old);
            } else if v != old {
                changed += 1;
            }
        }
        assert!(changed > 0, "updates with random data must change values");
    }
}
