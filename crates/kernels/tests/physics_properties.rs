//! Property-based tests of the update kernels' algebraic structure.

use em_field::{Component, Cplx, GridDims, SourceArray, State};
use em_kernels::run_naive;
use proptest::prelude::*;

fn filled(dims: GridDims, seed: u64) -> State {
    let mut s = State::zeros(dims);
    s.fields.fill_deterministic(seed);
    s.coeffs.fill_deterministic(seed ^ 0xfeed);
    s
}

fn scale_fields(s: &mut State, f: Cplx) {
    for comp in Component::ALL {
        let arr = s.fields.comp_mut(comp);
        let d = arr.dims();
        for z in 0..d.nz as isize {
            for y in 0..d.ny as isize {
                for x in 0..d.nx as isize {
                    let v = arr.get(x, y, z);
                    arr.set(x, y, z, v * f);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// With zero sources, the full step is a complex-linear operator:
    /// step(c * a) == c * step(a) for any complex scalar c.
    #[test]
    fn step_is_complex_linear_without_sources(
        seed in 0u64..u64::MAX,
        re in -2.0f64..2.0,
        im in -2.0f64..2.0,
        steps in 1usize..4,
    ) {
        let dims = GridDims::new(4, 5, 4);
        let c = Cplx::new(re, im);
        let mut a = filled(dims, seed);
        for arr in SourceArray::ALL {
            a.coeffs.src_mut(arr).zero();
        }
        let mut b = a.clone();
        scale_fields(&mut b, c);
        run_naive(&mut a, steps);
        run_naive(&mut b, steps);
        scale_fields(&mut a, c);
        let diff = a.fields.max_abs_diff(&b.fields);
        let scale = a.fields.energy().sqrt().max(1.0);
        prop_assert!(diff <= 1e-10 * scale, "linearity violated: {diff}");
    }

    /// Superposition: step(a + b) == step(a) + step(b) with zero sources.
    #[test]
    fn step_superposes(seed in 0u64..u64::MAX) {
        let dims = GridDims::new(4, 4, 4);
        let mut a = filled(dims, seed);
        let mut b = filled(dims, seed.wrapping_add(1));
        // Same coefficients for both; zero sources.
        b.coeffs = a.coeffs.clone();
        for arr in SourceArray::ALL {
            a.coeffs.src_mut(arr).zero();
            b.coeffs.src_mut(arr).zero();
        }
        let mut sum = a.clone();
        for comp in Component::ALL {
            let arr = sum.fields.comp_mut(comp);
            let d = arr.dims();
            for z in 0..d.nz as isize {
                for y in 0..d.ny as isize {
                    for x in 0..d.nx as isize {
                        let v = arr.get(x, y, z) + b.fields.comp(comp).get(x, y, z);
                        arr.set(x, y, z, v);
                    }
                }
            }
        }
        run_naive(&mut a, 2);
        run_naive(&mut b, 2);
        run_naive(&mut sum, 2);
        for comp in Component::ALL {
            for ((x, y, z), v) in sum.fields.comp(comp).iter_interior() {
                let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                let expect = a.fields.comp(comp).get(xi, yi, zi)
                    + b.fields.comp(comp).get(xi, yi, zi);
                prop_assert!(
                    (v - expect).abs() <= 1e-10 * (1.0 + expect.abs()),
                    "{comp} ({x},{y},{z})"
                );
            }
        }
    }

    /// Zero curl coefficients freeze the coupling: each component evolves
    /// independently as dst = dst*t + src, i.e. a pure per-cell recursion.
    #[test]
    fn zero_curl_decouples_components(seed in 0u64..u64::MAX) {
        let dims = GridDims::new(3, 3, 3);
        let mut s = filled(dims, seed);
        for comp in Component::ALL {
            s.coeffs.c_mut(comp).zero();
        }
        let before = s.clone();
        run_naive(&mut s, 1);
        for comp in Component::ALL {
            for ((x, y, z), v) in s.fields.comp(comp).iter_interior() {
                let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                let old = before.fields.comp(comp).get(xi, yi, zi);
                let t = before.coeffs.t(comp).get(xi, yi, zi);
                let src = comp
                    .source_array()
                    .map(|a| before.coeffs.src(a).get(xi, yi, zi))
                    .unwrap_or(Cplx::ZERO);
                let expect = old * t + src;
                prop_assert!((v - expect).abs() < 1e-12 * (1.0 + expect.abs()));
            }
        }
    }
}
