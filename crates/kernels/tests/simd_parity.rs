//! Property tests pinning the SIMD dispatch: every instruction set the
//! host supports must produce *bit-identical* results to the scalar
//! reference kernel — on random dims (including `nx` not a multiple of
//! the lane width, so the ragged-tail path runs), both curl signs,
//! source and source-free components, halo-adjacent rows, partial
//! x-chunks, and the loop-peeled periodic-x kernel.

use em_field::{Component, GridDims, State};
use em_kernels::simd::{detected_isa, Isa};
use em_kernels::update::{
    update_component_row, update_component_row_periodic_x, update_component_rows,
};
use em_kernels::RawGrid;
use proptest::prelude::*;

fn filled(dims: GridDims, seed: u64) -> State {
    let mut s = State::zeros(dims);
    s.fields.fill_deterministic(seed);
    s.coeffs.fill_deterministic(seed ^ 0x51d);
    s
}

/// The ISAs this host can actually run, scalar first.
fn available_isas() -> Vec<Isa> {
    [Isa::Scalar, Isa::Avx2, Isa::Avx512]
        .into_iter()
        .filter(|&i| i <= detected_isa())
        .collect()
}

/// One full H-then-E sweep (the `step_naive` schedule) with a forced ISA.
fn step_with_isa(state: &State, isa: Isa) {
    let dims = state.dims();
    let g = RawGrid::new(state).with_isa(isa);
    for comp in Component::H_ALL.into_iter().chain(Component::E_ALL) {
        // SAFETY: single-threaded full-grid sweep, same argument as
        // `step_naive`.
        unsafe { update_component_rows(&g, comp, 0..dims.nz, 0..dims.ny, 0..dims.nx) };
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full sweeps over random grids: every supported ISA reproduces the
    /// scalar bits exactly. `nx` ranges over values straddling the AVX2
    /// (4) and AVX-512 (8) lane widths, including non-multiples.
    #[test]
    fn full_step_bitwise_parity_across_isas(
        nx in 1usize..21,
        ny in 1usize..6,
        nz in 1usize..6,
        steps in 1usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let dims = GridDims::new(nx, ny, nz);
        let reference = filled(dims, seed);
        for _ in 0..steps {
            step_with_isa(&reference, Isa::Scalar);
        }
        for isa in available_isas() {
            let state = filled(dims, seed);
            for _ in 0..steps {
                step_with_isa(&state, isa);
            }
            prop_assert!(
                state.fields.bit_eq(&reference.fields),
                "{} deviates from scalar on {dims}",
                isa.name()
            );
            // Halo rows read zeros and must stay zero on every path.
            for comp in Component::ALL {
                prop_assert!(state.fields.comp(comp).halo_is_zero(), "{comp} halo");
            }
        }
    }

    /// Partial x-chunks with arbitrary (unaligned) boundaries: chunked
    /// updates on the dispatched path equal one scalar full-row update.
    #[test]
    fn chunked_rows_bitwise_parity(
        nx in 2usize..19,
        split_num in 1usize..8,
        comp_i in 0usize..12,
        seed in 0u64..u64::MAX,
    ) {
        let dims = GridDims::new(nx, 3, 3);
        let comp = Component::ALL[comp_i];
        let split = 1 + split_num % (nx - 1);
        let reference = filled(dims, seed);
        {
            let g = RawGrid::new(&reference).with_isa(Isa::Scalar);
            unsafe { update_component_row(&g, comp, 1, 1, 0..nx) };
        }
        for isa in available_isas() {
            let state = filled(dims, seed);
            {
                let g = RawGrid::new(&state).with_isa(isa);
                unsafe {
                    update_component_row(&g, comp, 1, 1, 0..split);
                    update_component_row(&g, comp, 1, 1, split..nx);
                }
            }
            prop_assert!(
                state.fields.bit_eq(&reference.fields),
                "{} chunked at {split}/{nx} for {comp}",
                isa.name()
            );
        }
    }

    /// The loop-peeled periodic-x kernel keeps bit-parity across ISAs
    /// for the x-derivative components (wrap cell + interior row).
    #[test]
    fn periodic_peel_bitwise_parity(
        nx in 2usize..18,
        comp_i in 0usize..12,
        seed in 0u64..u64::MAX,
    ) {
        let dims = GridDims::new(nx, 3, 3);
        let comp = Component::ALL[comp_i];
        let reference = filled(dims, seed);
        {
            let g = RawGrid::new(&reference).with_isa(Isa::Scalar);
            unsafe { update_component_row_periodic_x(&g, comp, 1, 1, 0..nx) };
        }
        for isa in available_isas() {
            let state = filled(dims, seed);
            {
                let g = RawGrid::new(&state).with_isa(isa);
                unsafe { update_component_row_periodic_x(&g, comp, 1, 1, 0..nx) };
            }
            prop_assert!(
                state.fields.bit_eq(&reference.fields),
                "{} periodic peel for {comp}",
                isa.name()
            );
        }
    }
}

/// Both curl signs and both source arities actually occur in the
/// component set the proptests sweep (guards against a refactor making
/// the sweep vacuous).
#[test]
fn component_sweep_covers_all_kernel_variants() {
    let mut variants = std::collections::HashSet::new();
    for c in Component::ALL {
        variants.insert((c.curl_sign() < 0.0, c.source_array().is_some()));
    }
    assert_eq!(variants.len(), 4);
}

/// The dispatched default (whatever `active_isa` picked for this host)
/// agrees with scalar on a full multi-step run — the exact configuration
/// every engine uses in production.
#[test]
fn default_dispatch_matches_scalar_reference() {
    let dims = GridDims::new(13, 5, 4);
    let reference = filled(dims, 7);
    let state = filled(dims, 7);
    for _ in 0..3 {
        step_with_isa(&reference, Isa::Scalar);
        // `RawGrid::new` applies the dispatched ISA.
        let g = RawGrid::new(&state);
        let d = state.dims();
        for comp in Component::H_ALL.into_iter().chain(Component::E_ALL) {
            unsafe { update_component_rows(&g, comp, 0..d.nz, 0..d.ny, 0..d.nx) };
        }
    }
    assert!(state.fields.bit_eq(&reference.fields));
}
