//! Machine-readable performance reports (`BENCH_results.json`).
//!
//! Wall-clock MLUP/s per engine on this host, tagged with the engine
//! configuration and the git revision, so the performance trajectory is
//! tracked across PRs by CI (which uploads the JSON as an artifact).
//! Two harness entries exist: a raw-kernel measurement on a
//! deterministic synthetic state, and a scenario-driven measurement
//! that times the engines on a workload from the `em_scenarios`
//! catalog (coefficients, PML, sources and all).

use crate::harness::results_dir;
use autotune::{ResolveOptions, TuneCache, TuneKey};
use em_field::{GridDims, State};
use em_kernels::{run_naive, step_spatial_mt, SpatialConfig};
use em_obs::{PhaseTotal, Recorder};
use em_scenarios::{Json, ScenarioSpec};
use em_solver::Engine;
use mwd_core::{run_mwd, run_mwd_bc_rec, MwdBoundary, MwdConfig};
use std::path::{Path, PathBuf};

/// One engine's measurement.
#[derive(Clone, Debug)]
pub struct EnginePerf {
    pub engine: String,
    pub mlups: f64,
    pub wall_secs: f64,
}

/// How a run's MWD configuration came out of the tuning cache
/// (recorded when the report was produced with `--tune`).
#[derive(Clone, Debug)]
pub struct TunedBench {
    /// `MwdConfig::to_compact` form of the tuned configuration.
    pub config: String,
    pub cache_hit: bool,
    /// Tuning-pipeline stage (`model` / `sim` / `native`).
    pub stage: String,
    pub native_probes: usize,
    /// The tuner's own score for the winner (model/sim/native MLUP/s).
    pub score_mlups: f64,
}

impl TunedBench {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("config", Json::str(&self.config)),
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("stage", Json::str(&self.stage)),
            ("native_probes", Json::Int(self.native_probes as i64)),
            ("score_mlups", Json::Num(self.score_mlups)),
        ])
    }
}

/// One benchmarked workload (kernel-level or scenario-driven).
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// `None` for the raw-kernel measurement.
    pub scenario: Option<String>,
    pub dims: GridDims,
    pub steps: usize,
    pub threads: usize,
    pub engines: Vec<EnginePerf>,
    /// Tuning provenance, when the run's configuration came from the
    /// tuning cache.
    pub tuned: Option<TunedBench>,
    /// Aggregate MWD phase timings (from a span-recorded run); empty
    /// unless the run was measured with tracing enabled.
    pub phases: Vec<PhaseTotal>,
}

/// The full report written to `results/BENCH_results.json`.
#[derive(Clone, Debug)]
pub struct BenchReport {
    pub git_rev: String,
    /// What `std::thread::available_parallelism` reported on this host.
    /// The threads *actually used* are recorded per run (`BenchRun::threads`);
    /// the two differ whenever a cap or an explicit `--threads` was applied.
    pub host_available_parallelism: usize,
    /// Instruction set the row kernels dispatched to (`scalar`/`avx2`/`avx512`).
    pub simd_isa: String,
    pub runs: Vec<BenchRun>,
}

fn mlups(dims: GridDims, steps: usize, secs: f64) -> f64 {
    (dims.cells() * steps) as f64 / secs.max(1e-12) / 1e6
}

/// What the host reports as available parallelism (1 if unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The current git revision, read from `.git` directly (no subprocess);
/// `unknown` outside a work tree. Delegates to the shared telemetry
/// crate so the bench report and `GET /healthz` agree on the revision.
pub fn git_rev() -> String {
    em_obs::git_revision()
}

/// Time the four engines on a deterministic synthetic state (the
/// quickstart configuration: same seed, same grid for every engine).
pub fn measure_kernels(dims: GridDims, steps: usize, threads: usize) -> BenchRun {
    measure_kernels_filtered(dims, steps, threads, None)
}

/// [`measure_kernels`] restricted to engines whose label contains
/// `filter` (case-insensitive substring); `None` measures all.
pub fn measure_kernels_filtered(
    dims: GridDims,
    steps: usize,
    threads: usize,
    filter: Option<&str>,
) -> BenchRun {
    let mut proto = State::zeros(dims);
    proto.fields.fill_deterministic(42);
    proto.coeffs.fill_deterministic(43);

    let mut engines = Vec::new();
    let mut time = |label: String, f: &mut dyn FnMut(&mut State)| {
        if !engine_matches(&label, filter) {
            return;
        }
        let mut s = proto.clone();
        let t0 = std::time::Instant::now();
        f(&mut s);
        let wall = t0.elapsed().as_secs_f64();
        engines.push(EnginePerf {
            engine: label,
            mlups: mlups(dims, steps, wall),
            wall_secs: wall,
        });
    };

    time("naive".to_string(), &mut |s| run_naive(s, steps));
    let spatial = SpatialConfig::new(8, 16);
    time(format!("spatial(threads={threads})"), &mut |s| {
        for _ in 0..steps {
            step_spatial_mt(s, spatial, threads);
        }
    });
    let one_wd = MwdConfig::one_wd(4, 2, threads);
    time(format!("1wd(dw=4, bz=2, groups={threads})"), &mut |s| {
        run_mwd(s, &one_wd, steps).expect("1WD runs");
    });
    // dw=16/bz=4 keeps the wavefront tile L2-resident at bench grid
    // sizes, where the SIMD row kernels run compute-bound.
    let shared = MwdConfig {
        dw: 16,
        bz: 4,
        tg: mwd_core::TgShape {
            x: 1,
            z: 1,
            c: threads.clamp(1, 3),
        },
        groups: 1,
    };
    time(
        format!(
            "mwd(dw={}, bz={}, tg=1x1x{}, groups=1)",
            shared.dw, shared.bz, shared.tg.c
        ),
        &mut |s| {
            run_mwd(s, &shared, steps).expect("MWD runs");
        },
    );

    BenchRun {
        scenario: None,
        dims,
        steps,
        threads,
        engines,
        tuned: None,
        phases: Vec::new(),
    }
}

/// Resolve the tuned MWD configuration for `dims` at `threads` through
/// the tuning cache (persistent when `cache_path` is given), measure it
/// on the synthetic kernel state, and record the provenance. This is
/// what `bench_report --tune` appends to the report: the performance
/// trajectory then tracks *tuned* MWD, not a hardcoded configuration.
pub fn measure_tuned_kernel(
    dims: GridDims,
    steps: usize,
    threads: usize,
    cache_path: Option<&Path>,
) -> Result<BenchRun, String> {
    let mut cache = match cache_path {
        Some(p) => TuneCache::load(p)?,
        None => TuneCache::in_memory(),
    };
    // Fingerprint under the same machine model `resolve` tunes with.
    let ropts = ResolveOptions::default();
    let key = TuneKey::for_host(&ropts.machine, dims, "mwd", threads);
    let r = autotune::resolve(&mut cache, &key, &ropts)?;
    cache.save()?;

    let mut s = State::zeros(dims);
    s.fields.fill_deterministic(42);
    s.coeffs.fill_deterministic(43);
    let t0 = std::time::Instant::now();
    run_mwd(&mut s, &r.config, steps).map_err(|e| format!("tuned config does not run: {e}"))?;
    let wall = t0.elapsed().as_secs_f64();

    Ok(BenchRun {
        scenario: None,
        dims,
        steps,
        threads,
        engines: vec![EnginePerf {
            engine: format!("tuned-mwd({})", r.config.to_compact()),
            mlups: mlups(dims, steps, wall),
            wall_secs: wall,
        }],
        tuned: Some(TunedBench {
            config: r.config.to_compact(),
            cache_hit: r.cache_hit,
            stage: r.stage.as_str().to_string(),
            native_probes: r.native_probes,
            score_mlups: r.score_mlups,
        }),
        phases: Vec::new(),
    })
}

/// Measure the 1WD MWD engine with span recording enabled and fold the
/// aggregate phase timings (`frontier_setup`, `queue_wait`,
/// `diamond_update`) into the run. The traced run *is* the measured
/// run, so the phase breakdown describes exactly the reported MLUP/s —
/// tracing overhead included, which is why this is a separate report
/// entry rather than the default kernel measurement.
pub fn measure_mwd_phases(
    dims: GridDims,
    steps: usize,
    threads: usize,
) -> Result<BenchRun, String> {
    let mut s = State::zeros(dims);
    s.fields.fill_deterministic(42);
    s.coeffs.fill_deterministic(43);
    let cfg = MwdConfig::one_wd(4, 2, threads);
    let rec = Recorder::enabled();
    let t0 = std::time::Instant::now();
    run_mwd_bc_rec(&mut s, &cfg, steps, MwdBoundary::Dirichlet, &rec, 0)?;
    let wall = t0.elapsed().as_secs_f64();
    let trace = rec.drain();
    Ok(BenchRun {
        scenario: None,
        dims,
        steps,
        threads,
        engines: vec![EnginePerf {
            engine: format!("1wd+trace(dw=4, bz=2, groups={threads})"),
            mlups: mlups(dims, steps, wall),
            wall_secs: wall,
        }],
        tuned: None,
        phases: trace.phase_totals(),
    })
}

/// Case-insensitive substring match used by `--engine` filtering.
pub fn engine_matches(label: &str, filter: Option<&str>) -> bool {
    match filter {
        None => true,
        Some(f) => label.to_ascii_lowercase().contains(&f.to_ascii_lowercase()),
    }
}

/// Time engines on a real scenario workload: the solver is rebuilt per
/// engine (fresh fields) and stepped `steps` times.
pub fn measure_scenario(
    spec: &ScenarioSpec,
    steps: usize,
    threads: usize,
) -> Result<BenchRun, String> {
    measure_scenario_filtered(spec, steps, threads, None)
}

/// [`measure_scenario`] restricted to engines whose label contains
/// `filter` (case-insensitive substring); `None` measures all.
pub fn measure_scenario_filtered(
    spec: &ScenarioSpec,
    steps: usize,
    threads: usize,
    filter: Option<&str>,
) -> Result<BenchRun, String> {
    spec.validate()?;
    let dims = spec.dims();
    let job = spec
        .jobs()
        .into_iter()
        .next()
        .ok_or("scenario expands to no jobs")?;

    let mut engines = Vec::new();
    let candidates: Vec<(String, Engine)> = vec![
        ("naive-periodic-xy".to_string(), Engine::NaivePeriodicXY),
        (
            format!("spatial(threads={threads})"),
            Engine::Spatial {
                cfg: SpatialConfig::new(8, 16),
                threads,
            },
        ),
        (
            format!("mwd(dw=4, bz=2, groups={threads})"),
            Engine::Mwd(MwdConfig::one_wd(4, 2, threads)),
        ),
    ];
    for (label, engine) in candidates {
        if !engine_matches(&label, filter) {
            continue;
        }
        let mut solver = spec.build_solver(&job)?;
        let t0 = std::time::Instant::now();
        solver.step_n(&engine, steps)?;
        let wall = t0.elapsed().as_secs_f64();
        engines.push(EnginePerf {
            engine: label,
            mlups: mlups(dims, steps, wall),
            wall_secs: wall,
        });
    }
    Ok(BenchRun {
        scenario: Some(spec.name.clone()),
        dims,
        steps,
        threads,
        engines,
        tuned: None,
        phases: Vec::new(),
    })
}

impl BenchRun {
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            (
                "scenario",
                match &self.scenario {
                    Some(s) => Json::str(s),
                    None => Json::Null,
                },
            ),
            ("dims", Json::str(format!("{}", self.dims))),
            ("steps", Json::Int(self.steps as i64)),
            ("threads", Json::Int(self.threads as i64)),
            (
                "engines",
                Json::Arr(
                    self.engines
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("engine", Json::str(&e.engine)),
                                ("mlups", Json::Num(e.mlups)),
                                ("wall_secs", Json::Num(e.wall_secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(t) = &self.tuned {
            pairs.push(("tuned", t.to_json()));
        }
        if !self.phases.is_empty() {
            pairs.push((
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("phase", Json::str(p.name)),
                                ("spans", Json::Int(p.count as i64)),
                                ("total_ms", Json::Num(p.total_us / 1e3)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::obj(pairs)
    }
}

impl BenchReport {
    pub fn new(runs: Vec<BenchRun>) -> Self {
        BenchReport {
            git_rev: git_rev(),
            host_available_parallelism: available_parallelism(),
            simd_isa: em_kernels::active_isa().name().to_string(),
            runs,
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("git_rev", Json::str(&self.git_rev)),
            (
                "host_available_parallelism",
                Json::Int(self.host_available_parallelism as i64),
            ),
            ("simd_isa", Json::str(&self.simd_isa)),
            (
                "runs",
                Json::Arr(self.runs.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    /// Write `results/BENCH_results.json`; returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = results_dir().join("BENCH_results.json");
        std::fs::write(&path, self.to_json().pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_measurement_covers_four_engines() {
        let run = measure_kernels(GridDims::cubic(12), 2, 2);
        assert_eq!(run.engines.len(), 4);
        for e in &run.engines {
            assert!(e.mlups > 0.0, "{}: {}", e.engine, e.mlups);
            assert!(e.wall_secs > 0.0);
        }
    }

    #[test]
    fn scenario_measurement_uses_the_catalog() {
        let spec = em_scenarios::library::vacuum_slab();
        let run = measure_scenario(&spec, 2, 2).unwrap();
        assert_eq!(run.scenario.as_deref(), Some("vacuum-slab"));
        assert_eq!(run.engines.len(), 3);
        for e in &run.engines {
            assert!(e.mlups > 0.0);
        }
    }

    #[test]
    fn report_json_has_the_tracked_fields() {
        let report = BenchReport::new(vec![measure_kernels(GridDims::cubic(8), 1, 1)]);
        let text = report.to_json().pretty();
        for key in [
            "git_rev",
            "host_available_parallelism",
            "simd_isa",
            "runs",
            "engines",
            "mlups",
        ] {
            assert!(text.contains(key), "missing `{key}`:\n{text}");
        }
        assert!(!report.git_rev.is_empty());
        assert!(["scalar", "avx2", "avx512"].contains(&report.simd_isa.as_str()));
    }

    #[test]
    fn tuned_measurement_records_provenance_and_hits_on_reuse() {
        let dir = std::env::temp_dir().join(format!("bench_tuned_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("tune_cache.json");
        let dims = GridDims::cubic(12);

        let first = measure_tuned_kernel(dims, 2, 2, Some(&path)).unwrap();
        let t = first.tuned.as_ref().expect("provenance recorded");
        assert!(!t.cache_hit, "first resolution is a miss");
        assert_eq!(first.engines.len(), 1);
        assert!(first.engines[0].engine.starts_with("tuned-mwd("));
        assert!(first.engines[0].mlups > 0.0);

        let second = measure_tuned_kernel(dims, 2, 2, Some(&path)).unwrap();
        let t2 = second.tuned.as_ref().unwrap();
        assert!(t2.cache_hit, "second resolution hits the cache");
        assert_eq!(t2.native_probes, 0);
        assert_eq!(t2.config, t.config);

        let text = BenchReport::new(vec![second]).to_json().pretty();
        for key in ["tuned", "cache_hit", "stage", "config"] {
            assert!(text.contains(key), "missing `{key}`:\n{text}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn phase_measurement_folds_span_totals_into_the_report() {
        let run = measure_mwd_phases(GridDims::cubic(12), 2, 2).unwrap();
        assert_eq!(run.engines.len(), 1);
        assert!(run.engines[0].engine.starts_with("1wd+trace("));
        let names: Vec<&str> = run.phases.iter().map(|p| p.name).collect();
        for phase in ["frontier_setup", "queue_wait", "diamond_update"] {
            assert!(names.contains(&phase), "missing `{phase}` in {names:?}");
        }
        for p in &run.phases {
            assert!(p.count > 0);
            assert!(p.total_us >= 0.0);
        }
        let text = BenchReport::new(vec![run]).to_json().pretty();
        for key in ["phases", "diamond_update", "total_ms"] {
            assert!(text.contains(key), "missing `{key}`:\n{text}");
        }
    }

    #[test]
    fn engine_filter_selects_a_subset() {
        let run = measure_kernels_filtered(GridDims::cubic(8), 1, 1, Some("1wd"));
        assert_eq!(run.engines.len(), 1);
        assert!(run.engines[0].engine.contains("1wd"));
        let none = measure_kernels_filtered(GridDims::cubic(8), 1, 1, Some("nope"));
        assert!(none.engines.is_empty());
    }

    #[test]
    fn engine_matches_is_case_insensitive_substring() {
        assert!(engine_matches("mwd(dw=8)", None));
        assert!(engine_matches("MWD(dw=8)", Some("mwd")));
        assert!(!engine_matches("naive", Some("mwd")));
    }

    #[test]
    fn git_rev_resolves_in_this_repo() {
        let rev = git_rev();
        // In the repo this is a 40-hex hash; in exported tarballs it
        // degrades to "unknown" — both are acceptable artifacts.
        assert!(rev == "unknown" || rev.len() >= 7, "{rev}");
    }

    #[test]
    fn engine_decl_is_reachable_for_scenario_benches() {
        // The harness and the CLI agree on engine naming.
        use em_scenarios::spec::EngineDecl;
        assert_eq!(EngineDecl::auto("mwd", 2).unwrap().threads(), 2);
    }
}
