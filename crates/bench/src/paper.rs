//! Reference values digitized from the paper's figures, used to check
//! that regenerated series reproduce the published *shapes* (who wins, by
//! what factor, where the crossovers fall). Absolute numbers on the
//! simulated substrate are not expected to match the authors' testbed
//! exactly.

/// Fig. 6a (thread scaling at 384^3), approximate MLUP/s at selected
/// thread counts: `(threads, spatial, one_wd, mwd)`.
pub const FIG6A_PERF: &[(usize, f64, f64, f64)] = &[
    (1, 10.0, 10.0, 9.5),
    (6, 40.0, 55.0, 52.0),
    (10, 41.0, 78.0, 82.0),
    (12, 41.0, 80.0, 95.0),
    (18, 41.0, 65.0, 130.0),
];

/// Fig. 6b, memory bandwidth GB/s at 18 threads.
pub const FIG6B_BW_18: (f64, f64, f64) = (50.0, 48.0, 25.0); // spatial, 1WD, MWD

/// Fig. 7a (grid scaling, full socket), `(n, spatial, one_wd, mwd)`.
pub const FIG7A_PERF: &[(usize, f64, f64, f64)] = &[
    (64, 75.0, 150.0, 160.0),
    (128, 45.0, 110.0, 135.0),
    (256, 41.0, 80.0, 130.0),
    (384, 41.0, 65.0, 130.0),
    (512, 40.0, 55.0, 125.0),
];

/// Paper's headline claims (Abstract / Sec. IV).
pub struct Claims {
    pub speedup_lo: f64,
    pub speedup_hi: f64,
    pub bandwidth_saving_lo: f64,
    pub bandwidth_saving_hi: f64,
    pub spatial_saturation_mlups: f64,
    pub spatial_saturation_threads: usize,
    pub one_wd_saturation_threads: usize,
    pub mwd_full_chip_efficiency: f64,
}

pub const CLAIMS: Claims = Claims {
    speedup_lo: 3.0,
    speedup_hi: 4.0,
    bandwidth_saving_lo: 0.38,
    bandwidth_saving_hi: 0.80,
    spatial_saturation_mlups: 41.0,
    spatial_saturation_threads: 6,
    one_wd_saturation_threads: 10,
    mwd_full_chip_efficiency: 0.75,
};

/// Fig. 8: the thread-group sizes compared by the paper.
pub const FIG8_TG_SIZES: &[usize] = &[1, 2, 3, 6, 9, 18];

/// Fig. 5 parameters: diamond widths and wavefront widths tested.
pub const FIG5_DW: &[usize] = &[4, 8, 12, 16];
pub const FIG5_BZ: &[usize] = &[1, 6, 9];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_series_are_well_formed() {
        assert!(FIG6A_PERF.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(FIG7A_PERF.windows(2).all(|w| w[0].0 < w[1].0));
        const { assert!(CLAIMS.speedup_lo < CLAIMS.speedup_hi) };
    }

    #[test]
    fn claims_match_models() {
        // Cross-check claims against the analytic models, independent of
        // any simulation.
        let hsw = perf_models::MachineSpec::HASWELL_E5_2699_V3;
        let sp = perf_models::perf_mlups(&hsw, 18, perf_models::code_balance_spatial());
        assert!((sp.mlups - CLAIMS.spatial_saturation_mlups).abs() < 1.0);
    }
}
