//! # em-bench — benchmark and figure-regeneration harness
//!
//! One generator per table/figure of the paper's evaluation (Sec. III-IV),
//! shared between the `figures` binary, the Criterion benches and the
//! integration smoke tests. Results are written to `results/*.csv` and
//! printed with the paper's reference shapes alongside. The [`report`]
//! module adds the machine-readable `BENCH_results.json` perf report
//! (per-engine MLUP/s, config, git rev) that CI tracks across PRs.

pub mod figures;
pub mod harness;
pub mod paper;
pub mod report;

pub use figures::{fig5, fig6, fig7, fig8, sect3, shapes, thin_domain, validate, Scale};
