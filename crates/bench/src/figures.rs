//! Generators for every table and figure of the paper's evaluation.
//!
//! Each generator returns plain data (so tests can assert on shapes) and
//! has a `print_*` companion used by the `figures` binary. All
//! measurements run on the simulated Haswell EP substrate (see `mem-sim`);
//! grid sizes follow the paper, with the lateral extents optionally
//! reduced (`Scale::Quick`) — the x extent, which controls every cache
//! footprint (Eq. 11), is always the paper's.

use autotune::{autotune, CacheWindow, ModelEvaluator, SearchSpace};
use em_field::GridDims;
use mem_sim::{simulate_mwd_engine, simulate_spatial_engine, EngineResult};
use mwd_core::{diamond_rows, DiamondWidth, MwdConfig};
use perf_models::{
    cache_block_bytes, code_balance_diamond, code_balance_naive, code_balance_spatial,
    mem_bound_mlups, MachineSpec,
};

pub const HSW: MachineSpec = MachineSpec::HASWELL_E5_2699_V3;
const MIB: f64 = 1024.0 * 1024.0;

/// Problem-size scaling for the regeneration runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale (integration tests).
    Tiny,
    /// Minutes-scale regeneration (default for the `figures` binary).
    Quick,
    /// Paper-exact grids (hours on this host).
    Full,
}

impl Scale {
    /// Cap applied to the lateral (y, z) extents.
    fn cap(self) -> usize {
        match self {
            Scale::Tiny => 32,
            Scale::Quick => 80,
            Scale::Full => usize::MAX,
        }
    }

    /// Simulation grid for a paper grid of side `n`: true Nx, capped
    /// ny/nz.
    pub fn grid(self, n: usize) -> GridDims {
        GridDims {
            nx: n,
            ny: n.min(self.cap()),
            nz: n.min(self.cap()),
        }
    }

    /// Time steps used for traffic measurement at diamond width `dw`.
    fn steps(self, dw: usize) -> usize {
        match self {
            Scale::Tiny => dw.max(4),
            _ => (2 * dw).max(8),
        }
    }

    /// Thread counts for the scaling figure.
    pub fn thread_counts(self) -> Vec<usize> {
        match self {
            Scale::Full => (1..=18).collect(),
            Scale::Quick => vec![1, 2, 4, 6, 9, 12, 15, 18],
            Scale::Tiny => vec![1, 6, 18],
        }
    }

    /// Grid sides for the grid-scaling figures (paper: 64..512 step 64).
    pub fn grid_sides(self) -> Vec<usize> {
        match self {
            Scale::Full => (1..=8).map(|i| i * 64).collect(),
            Scale::Quick => vec![64, 128, 256, 384, 512],
            Scale::Tiny => vec![64, 256],
        }
    }
}

/// Model-guided tuning of one figure point. `tg_sizes` restricts the
/// thread-group sizes (e.g. `[1]` for 1WD, `[6]` for 6WD).
pub fn tune_point(paper_dims: GridDims, threads: usize, tg_sizes: Option<&[usize]>) -> MwdConfig {
    let mut space = SearchSpace::default_for(threads);
    if let Some(s) = tg_sizes {
        space.tg_sizes = s.to_vec();
    }
    let mut ev = ModelEvaluator {
        machine: HSW,
        dims: paper_dims,
        threads,
    };
    autotune(
        &space,
        paper_dims,
        &HSW,
        threads,
        CacheWindow::default(),
        &mut ev,
    )
    .expect("tuning always yields a candidate")
    .best
}

fn measure_mwd(cfg: &MwdConfig, sim: GridDims, steps: usize, threads: usize) -> EngineResult {
    simulate_mwd_engine(&HSW, sim, steps, cfg.dw, cfg.bz, cfg.groups, threads)
}

// ---------------------------------------------------------------- Sec. III

/// The in-text analytic table of Sec. III.
pub struct Sect3 {
    pub flops_per_lup: f64,
    pub bytes_per_cell: f64,
    pub bc_naive: f64,
    pub bc_spatial: f64,
    pub intensity_naive: f64,
    pub intensity_spatial: f64,
    pub pmem_spatial: f64,
    pub cs_example_per_nx: f64,
    pub bc_diamond: Vec<(usize, f64)>,
}

pub fn sect3() -> Sect3 {
    Sect3 {
        flops_per_lup: perf_models::FLOPS_PER_LUP,
        bytes_per_cell: perf_models::BYTES_PER_CELL,
        bc_naive: code_balance_naive(),
        bc_spatial: code_balance_spatial(),
        intensity_naive: perf_models::arithmetic_intensity(code_balance_naive()),
        intensity_spatial: perf_models::arithmetic_intensity(code_balance_spatial()),
        pmem_spatial: mem_bound_mlups(&HSW, code_balance_spatial()),
        cs_example_per_nx: cache_block_bytes(1, 4, 4),
        bc_diamond: [4, 8, 12, 16]
            .iter()
            .map(|&d| (d, code_balance_diamond(d)))
            .collect(),
    }
}

// ------------------------------------------------------------------ Fig. 5

#[derive(Clone, Copy, Debug)]
pub struct Fig5Point {
    pub bz: usize,
    pub dw: usize,
    /// Eq. 11 block size per thread, MiB (at the paper's Nx = 480).
    pub cs_mib: f64,
    pub bc_model: f64,
    pub bc_measured: f64,
}

/// Fig. 5: code balance vs cache block size, 1WD, single thread, 480^3.
pub fn fig5(scale: Scale) -> Vec<Fig5Point> {
    let mut out = Vec::new();
    let sim = scale.grid(480);
    for &bz in crate::paper::FIG5_BZ {
        for &dw in crate::paper::FIG5_DW {
            let cs = cache_block_bytes(480, dw, bz) / MIB;
            let r = simulate_mwd_engine(&HSW, sim, scale.steps(dw), dw, bz, 1, 1);
            out.push(Fig5Point {
                bz,
                dw,
                cs_mib: cs,
                bc_model: code_balance_diamond(dw),
                bc_measured: r.code_balance,
            });
        }
    }
    out
}

// ------------------------------------------------------------------ Fig. 6

#[derive(Clone, Copy, Debug)]
pub struct Fig6Point {
    pub threads: usize,
    pub spatial: EngineResult,
    pub one_wd: EngineResult,
    pub mwd: EngineResult,
    pub dw_1wd: usize,
    pub dw_mwd: usize,
}

/// Fig. 6: thread scaling at 384^3 — performance, bandwidth, code
/// balance, tuned diamond width, for spatial / 1WD / MWD.
pub fn fig6(scale: Scale) -> Vec<Fig6Point> {
    let paper_dims = GridDims::cubic(384);
    let sim = scale.grid(384);
    scale
        .thread_counts()
        .into_iter()
        .map(|t| {
            let spatial = simulate_spatial_engine(&HSW, sim, 2, t);
            let cfg1 = tune_point(paper_dims, t, Some(&[1]));
            let one_wd = measure_mwd(&cfg1, sim, scale.steps(cfg1.dw), t);
            let cfgm = tune_point(paper_dims, t, None);
            let mwd = measure_mwd(&cfgm, sim, scale.steps(cfgm.dw), t);
            Fig6Point {
                threads: t,
                spatial,
                one_wd,
                mwd,
                dw_1wd: cfg1.dw,
                dw_mwd: cfgm.dw,
            }
        })
        .collect()
}

// ------------------------------------------------------------------ Fig. 7

#[derive(Clone, Copy, Debug)]
pub struct Fig7Point {
    pub n: usize,
    pub spatial: EngineResult,
    pub one_wd: EngineResult,
    pub mwd: EngineResult,
    pub dw_1wd: usize,
    pub dw_mwd: usize,
    /// Tuned intra-tile parallelization (threads along x, z, components).
    pub tg: mwd_core::TgShape,
    pub groups: usize,
}

/// Fig. 7: grid-size scaling on the full socket (18 threads).
pub fn fig7(scale: Scale) -> Vec<Fig7Point> {
    let threads = 18;
    scale
        .grid_sides()
        .into_iter()
        .map(|n| {
            let paper_dims = GridDims::cubic(n);
            let sim = scale.grid(n);
            let spatial = simulate_spatial_engine(&HSW, sim, 2, threads);
            let cfg1 = tune_point(paper_dims, threads, Some(&[1]));
            let one_wd = measure_mwd(&cfg1, sim, scale.steps(cfg1.dw), threads);
            let cfgm = tune_point(paper_dims, threads, None);
            let mwd = measure_mwd(&cfgm, sim, scale.steps(cfgm.dw), threads);
            Fig7Point {
                n,
                spatial,
                one_wd,
                mwd,
                dw_1wd: cfg1.dw,
                dw_mwd: cfgm.dw,
                tg: cfgm.tg,
                groups: cfgm.groups,
            }
        })
        .collect()
}

// ------------------------------------------------------------------ Fig. 8

#[derive(Clone, Copy, Debug)]
pub struct Fig8Point {
    pub n: usize,
    pub tg_size: usize,
    pub dw: usize,
    pub result: EngineResult,
}

/// Fig. 8: thread-group size impact ({1,2,3,6,9,18}WD) over grid sizes.
pub fn fig8(scale: Scale) -> Vec<Fig8Point> {
    let threads = 18;
    let mut out = Vec::new();
    for n in scale.grid_sides() {
        let paper_dims = GridDims::cubic(n);
        let sim = scale.grid(n);
        for &tg_size in crate::paper::FIG8_TG_SIZES {
            let cfg = tune_point(paper_dims, threads, Some(&[tg_size]));
            let result = measure_mwd(&cfg, sim, scale.steps(cfg.dw), threads);
            out.push(Fig8Point {
                n,
                tg_size,
                dw: cfg.dw,
                result,
            });
        }
    }
    out
}

// ------------------------------------------------------- model validation

#[derive(Clone, Copy, Debug)]
pub struct ValidatePoint {
    pub dw: usize,
    pub bc_model: f64,
    pub bc_measured: f64,
    /// measured / model.
    pub ratio: f64,
}

/// Extra experiment: Eq. 12 against the simulator in the fits-in-cache
/// regime (tile comfortably resident, long runs).
pub fn validate(scale: Scale) -> Vec<ValidatePoint> {
    let sim = scale.grid(480);
    [4usize, 8, 16]
        .iter()
        .map(|&dw| {
            // Machine with ample cache for this tile: 3x the Eq. 11 block.
            let cs = cache_block_bytes(sim.nx, dw, 1);
            let machine = MachineSpec {
                l3_bytes: (3.0 * cs) as usize,
                ..HSW
            };
            let steps = 4 * dw;
            let r = simulate_mwd_engine(&machine, sim, steps, dw, 1, 1, 1);
            let bc_model = code_balance_diamond(dw);
            ValidatePoint {
                dw,
                bc_model,
                bc_measured: r.code_balance,
                ratio: r.code_balance / bc_model,
            }
        })
        .collect()
}

// ----------------------------------------------- thin-domain ablation

#[derive(Clone, Copy, Debug)]
pub struct ThinPoint {
    /// Which axis carries the thin extent.
    pub thin_axis: &'static str,
    pub dims: GridDims,
    pub dw: usize,
    pub result: EngineResult,
}

/// Ablation from the paper's conclusion: for "thin" domains (climate /
/// reservoir shaped), mapping the thin extent to the leading dimension
/// shrinks every cache block (Eq. 11 is proportional to Nx), affording
/// larger diamonds and lower code balance than mapping it to z.
pub fn thin_domain(scale: Scale) -> Vec<ThinPoint> {
    let threads = 18;
    let (thin, wide) = (64usize, 768usize);
    let cap = match scale {
        Scale::Tiny => 48,
        _ => 96,
    };
    let orientations: [(&'static str, GridDims, GridDims); 2] = [
        // Thin extent on x (recommended): paper dims for tuning keep the
        // true Nx; lateral extents capped for simulation speed.
        (
            "x (leading)",
            GridDims {
                nx: thin,
                ny: wide,
                nz: wide,
            },
            GridDims {
                nx: thin,
                ny: wide.min(cap),
                nz: wide.min(cap),
            },
        ),
        // Thin extent on z: full-length rows, fewer z planes.
        (
            "z (outer)",
            GridDims {
                nx: wide,
                ny: wide,
                nz: thin,
            },
            GridDims {
                nx: wide,
                ny: wide.min(cap),
                nz: thin,
            },
        ),
    ];
    orientations
        .into_iter()
        .map(|(thin_axis, paper_dims, sim)| {
            let cfg = tune_point(paper_dims, threads, None);
            let result = measure_mwd(&cfg, sim, scale.steps(cfg.dw), threads);
            ThinPoint {
                thin_axis,
                dims: paper_dims,
                dw: cfg.dw,
                result,
            }
        })
        .collect()
}

// ------------------------------------------------------------ Figs. 2 & 4

/// ASCII rendering of the diamond structure (Figs. 2/4): row kinds, time
/// levels, y intervals and wavefront lags.
pub fn shapes(dw: usize) -> String {
    let d = DiamondWidth::new(dw).expect("even dw");
    let rows = diamond_rows(d, dw as i64, 1);
    let mut s = String::new();
    s.push_str(&format!(
        "Diamond tile, Dw = {dw} (base Y = {dw}, n0 = 1); Ww = Dw + BZ - 1\n\n"
    ));
    for row in rows.iter().rev() {
        let width = (row.y_hi - row.y_lo + 1) as usize;
        let indent = (row.y_lo) as usize;
        let kind = match row.kind {
            em_field::FieldKind::E => 'E',
            em_field::FieldKind::H => 'H',
        };
        s.push_str(&format!(
            "t={:>2} lag={:>2} {} {}{}\n",
            row.time,
            row.lag,
            kind,
            " ".repeat(indent),
            (if kind == 'E' { "o" } else { "#" }).repeat(width),
        ));
    }
    s.push_str("\no = E cells (widths 1,3,..,Dw-1), # = H cells (2,4,..,Dw)\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sect3_matches_paper_numbers() {
        let s = sect3();
        assert_eq!(s.flops_per_lup, 248.0);
        assert_eq!(s.bytes_per_cell, 640.0);
        assert_eq!(s.bc_naive, 1344.0);
        assert_eq!(s.bc_spatial, 1216.0);
        assert!((s.pmem_spatial - 41.0).abs() < 0.5);
        assert_eq!(s.cs_example_per_nx, 14912.0);
    }

    #[test]
    fn shapes_renders_all_rows() {
        let s = shapes(8);
        assert_eq!(s.lines().filter(|l| l.starts_with("t=")).count(), 15);
        assert!(s.contains("ooooooo"), "widest E row of 7 cells:\n{s}");
        assert!(s.contains("########"), "widest H row of 8 cells:\n{s}");
    }

    #[test]
    fn fig5_tiny_shows_model_agreement_within_cache() {
        let pts = fig5(Scale::Tiny);
        assert_eq!(pts.len(), 12);
        // Points whose block fits well inside the usable cache must track
        // the Eq. 12 model; deeply oversized blocks must exceed it.
        let usable = HSW.usable_l3() / MIB;
        for p in &pts {
            if p.cs_mib < 0.5 * usable {
                assert!(
                    p.bc_measured < 2.2 * p.bc_model + 60.0,
                    "in-cache point strays from model: {p:?}"
                );
            }
        }
        let worst = pts
            .iter()
            .find(|p| p.cs_mib > 2.0 * usable)
            .expect("an oversized point");
        assert!(
            worst.bc_measured > 1.5 * worst.bc_model,
            "oversized block must diverge from the model: {worst:?}"
        );
    }

    #[test]
    fn validate_tracks_eq12() {
        for p in validate(Scale::Tiny) {
            assert!(
                p.ratio > 0.6 && p.ratio < 1.8,
                "Eq. 12 validation out of band: {p:?}"
            );
        }
    }

    #[test]
    fn thin_domain_prefers_thin_x() {
        let pts = thin_domain(Scale::Tiny);
        assert_eq!(pts.len(), 2);
        let x = &pts[0];
        let z = &pts[1];
        assert!(x.dw >= z.dw, "thin-x affords larger diamonds: {pts:?}");
        assert!(
            x.result.code_balance <= z.result.code_balance * 1.05,
            "thin-x must not lose on traffic: {pts:?}"
        );
    }

    #[test]
    fn tune_point_respects_tg_restriction() {
        let dims = GridDims::cubic(384);
        let cfg = tune_point(dims, 18, Some(&[6]));
        assert_eq!(cfg.tg.size(), 6);
        assert_eq!(cfg.groups, 3);
        let cfg1 = tune_point(dims, 18, Some(&[1]));
        assert_eq!(cfg1.tg.size(), 1);
        assert_eq!(cfg1.groups, 18);
    }
}
