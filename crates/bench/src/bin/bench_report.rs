//! `bench_report` — emit `results/BENCH_results.json`.
//!
//! ```text
//! cargo run --release -p em_bench --bin bench_report -- \
//!     [--dims N] [--steps N] [--threads N] [--with-scenarios]
//! ```
//!
//! Measures wall-clock MLUP/s per engine (naive / spatial / 1WD / MWD)
//! on a synthetic state, optionally times every built-in scenario, and
//! writes the machine-readable report CI uploads as an artifact.

use em_bench::report::{measure_kernels, measure_scenario, BenchReport};
use em_field::GridDims;

fn main() {
    let mut dims_n = 48usize;
    let mut steps = 4usize;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(4);
    let mut with_scenarios = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{flag} needs a positive integer")))
        };
        match a.as_str() {
            "--dims" => dims_n = num("--dims"),
            "--steps" => steps = num("--steps"),
            "--threads" => threads = num("--threads"),
            "--with-scenarios" => with_scenarios = true,
            other => die(&format!(
                "unknown option `{other}` \
                 (usage: bench_report [--dims N] [--steps N] [--threads N] [--with-scenarios])"
            )),
        }
    }

    let dims = GridDims::cubic(dims_n);
    println!("kernel benchmark: {dims} grid, {steps} steps, {threads} threads");
    let mut runs = vec![measure_kernels(dims, steps, threads)];

    if with_scenarios {
        for spec in em_scenarios::builtins() {
            println!("scenario benchmark: {} ({})", spec.name, spec.dims());
            match measure_scenario(&spec, steps.min(2), threads) {
                Ok(run) => runs.push(run),
                Err(e) => die(&format!("scenario {}: {e}", spec.name)),
            }
        }
    }

    let report = BenchReport::new(runs);
    for run in &report.runs {
        let tag = run.scenario.as_deref().unwrap_or("kernels");
        for e in &run.engines {
            println!("{tag:<18} {:<36} {:>9.1} MLUP/s", e.engine, e.mlups);
        }
    }
    match report.write() {
        Ok(path) => println!("\nwrote {} (rev {})", path.display(), report.git_rev),
        Err(e) => die(&format!("cannot write BENCH_results.json: {e}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}
