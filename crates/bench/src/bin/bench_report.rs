//! `bench_report` — emit `results/BENCH_results.json`.
//!
//! ```text
//! cargo run --release -p em_bench --bin bench_report -- \
//!     [--dims N] [--steps N] [--threads N] [--max-threads N] \
//!     [--engine FILTER] [--with-scenarios]
//! ```
//!
//! Measures wall-clock MLUP/s per engine (naive / spatial / 1WD / MWD)
//! on a synthetic state, optionally times every built-in scenario, and
//! writes the machine-readable report CI uploads as an artifact.
//!
//! Threading: by default every core `available_parallelism` reports is
//! used. `--max-threads N` caps that default (an explicit cap — there is
//! no silent one), and `--threads N` pins the count exactly, ignoring
//! the cap. Both the host's available parallelism and the threads
//! actually used are recorded in the report.
//!
//! `--engine FILTER` times only engines whose label contains FILTER
//! (case-insensitive), so CI and local runs can measure a single engine
//! without paying for the full matrix.
//!
//! `--tune` appends a measurement of the *tuned* MWD configuration for
//! the benchmark grid, resolved through the persistent tuning cache
//! (`--cache FILE`, default `results/tune_cache.json`); the report then
//! records the tuned config and whether it was a cache hit.
//!
//! `--phases` appends a span-recorded MWD run whose per-phase wall time
//! (frontier setup, queue wait, diamond update) is folded into the
//! report under `phases`.

use em_bench::report::{
    available_parallelism, measure_kernels_filtered, measure_mwd_phases, measure_scenario_filtered,
    measure_tuned_kernel, BenchReport,
};
use em_field::GridDims;
use std::path::PathBuf;

fn main() {
    let mut dims_n = 48usize;
    let mut steps = 4usize;
    let mut threads: Option<usize> = None;
    let mut max_threads: Option<usize> = None;
    let mut engine_filter: Option<String> = None;
    let mut with_scenarios = false;
    let mut tune = false;
    let mut phases = false;
    let mut cache: Option<PathBuf> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{flag} needs a positive integer")))
        };
        match a.as_str() {
            "--dims" => dims_n = num("--dims"),
            "--steps" => steps = num("--steps"),
            "--threads" => threads = Some(num("--threads")),
            "--max-threads" => max_threads = Some(num("--max-threads")),
            "--engine" => {
                engine_filter = Some(
                    it.next()
                        .unwrap_or_else(|| die("--engine needs a filter string"))
                        .clone(),
                )
            }
            "--with-scenarios" => with_scenarios = true,
            "--tune" => tune = true,
            "--phases" => phases = true,
            "--cache" => {
                cache = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--cache needs a path")),
                ));
                tune = true;
            }
            other => die(&format!(
                "unknown option `{other}` \
                 (usage: bench_report [--dims N] [--steps N] [--threads N] \
                 [--max-threads N] [--engine FILTER] [--with-scenarios] \
                 [--tune] [--cache FILE] [--phases])"
            )),
        }
    }

    let host = available_parallelism();
    let threads = match (threads, max_threads) {
        (Some(t), _) => t,
        (None, Some(cap)) => host.min(cap.max(1)),
        (None, None) => host,
    };
    if threads == 0 {
        die("--threads must be at least 1");
    }
    let filter = engine_filter.as_deref();

    let dims = GridDims::cubic(dims_n);
    println!(
        "kernel benchmark: {dims} grid, {steps} steps, {threads} threads \
         (host reports {host}), isa {}",
        em_kernels::active_isa()
    );
    let kernels = measure_kernels_filtered(dims, steps, threads, filter);
    if kernels.engines.is_empty() {
        die(&format!(
            "--engine `{}` matches no kernel engine (try: naive, spatial, 1wd, mwd)",
            filter.unwrap_or_default()
        ));
    }
    let mut runs = vec![kernels];

    if tune {
        let path = cache.unwrap_or_else(autotune::default_cache_path);
        match measure_tuned_kernel(dims, steps, threads, Some(&path)) {
            Ok(run) => {
                let t = run.tuned.as_ref().expect("tuned run records provenance");
                println!(
                    "tuned mwd: {} ({}, cache {})",
                    t.config,
                    t.stage,
                    if t.cache_hit { "hit" } else { "miss" }
                );
                runs.push(run);
            }
            Err(e) => die(&format!("--tune: {e}")),
        }
    }

    if phases {
        match measure_mwd_phases(dims, steps, threads) {
            Ok(run) => {
                for p in &run.phases {
                    println!(
                        "phase {:<16} {:>8} span(s) {:>10.3} ms total",
                        p.name,
                        p.count,
                        p.total_us / 1e3
                    );
                }
                runs.push(run);
            }
            Err(e) => die(&format!("--phases: {e}")),
        }
    }

    if with_scenarios {
        for spec in em_scenarios::builtins() {
            println!("scenario benchmark: {} ({})", spec.name, spec.dims());
            match measure_scenario_filtered(&spec, steps.min(2), threads, filter) {
                // A filter can match kernel engines but no scenario
                // engine (e.g. `--engine 1wd`): skip instead of writing
                // an empty measurement into the artifact.
                Ok(run) if run.engines.is_empty() => println!(
                    "scenario {}: no engine matches `{}`, skipped",
                    spec.name,
                    filter.unwrap_or_default()
                ),
                Ok(run) => runs.push(run),
                Err(e) => die(&format!("scenario {}: {e}", spec.name)),
            }
        }
    }

    let report = BenchReport::new(runs);
    for run in &report.runs {
        let tag = run.scenario.as_deref().unwrap_or("kernels");
        for e in &run.engines {
            println!("{tag:<18} {:<36} {:>9.1} MLUP/s", e.engine, e.mlups);
        }
    }
    match report.write() {
        Ok(path) => println!("\nwrote {} (rev {})", path.display(), report.git_rev),
        Err(e) => die(&format!("cannot write BENCH_results.json: {e}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}
