//! Regenerate the paper's tables and figures on the simulated Haswell.
//!
//! Usage:
//!   figures <sect3|fig5|fig6|fig7|fig8|validate|shapes|all> [--full|--tiny]
//!
//! Results are printed as aligned tables (with the paper's reference
//! shapes where applicable) and written to `results/*.csv`.

use em_bench::harness::{f1, f2, sparkline, table, write_csv};
use em_bench::{fig5, fig6, fig7, fig8, paper, sect3, shapes, thin_domain, validate, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else if args.iter().any(|a| a == "--tiny") {
        Scale::Tiny
    } else {
        Scale::Quick
    };

    match what {
        "sect3" => run_sect3(),
        "fig5" => run_fig5(scale),
        "fig6" => run_fig6(scale),
        "fig7" => run_fig7(scale),
        "fig8" => run_fig8(scale),
        "validate" => run_validate(scale),
        "shapes" => run_shapes(),
        "thin" => run_thin(scale),
        "all" => {
            run_sect3();
            run_shapes();
            run_validate(scale);
            run_fig5(scale);
            run_fig6(scale);
            run_fig7(scale);
            run_fig8(scale);
            run_thin(scale);
        }
        other => {
            eprintln!("unknown figure '{other}'");
            eprintln!(
                "usage: figures <sect3|fig5|fig6|fig7|fig8|validate|shapes|thin|all> [--full|--tiny]"
            );
            std::process::exit(2);
        }
    }
}

fn banner(title: &str) {
    println!(
        "\n=== {title} {}",
        "=".repeat(66usize.saturating_sub(title.len()))
    );
}

fn run_sect3() {
    banner("Sec. III — analytic models (paper numbers in parentheses)");
    let s = sect3();
    let rows = vec![
        vec!["flops/LUP".into(), f1(s.flops_per_lup), "(248)".into()],
        vec!["bytes/cell".into(), f1(s.bytes_per_cell), "(640)".into()],
        vec!["B_C naive [B/LUP]".into(), f1(s.bc_naive), "(1344)".into()],
        vec![
            "B_C spatial [B/LUP]".into(),
            f1(s.bc_spatial),
            "(1216)".into(),
        ],
        vec![
            "I naive [F/B]".into(),
            f2(s.intensity_naive),
            "(0.18)".into(),
        ],
        vec![
            "I spatial [F/B]".into(),
            f2(s.intensity_spatial),
            "(0.20)".into(),
        ],
        vec![
            "P_mem spatial [MLUP/s]".into(),
            f1(s.pmem_spatial),
            "(41)".into(),
        ],
        vec![
            "Cs(Dw=4,BZ=4)/Nx [B]".into(),
            f1(s.cs_example_per_nx),
            "(14912)".into(),
        ],
    ];
    print!("{}", table(&["quantity", "value", "paper"], &rows));
    println!("\nEq. 12 diamond code balance:");
    let rows: Vec<Vec<String>> = s
        .bc_diamond
        .iter()
        .map(|(d, b)| vec![d.to_string(), f1(*b)])
        .collect();
    print!("{}", table(&["Dw", "B_C [B/LUP]"], &rows));
    let _ = write_csv(
        "sect3.csv",
        &["quantity", "value"],
        &[
            vec!["flops_per_lup".into(), f1(s.flops_per_lup)],
            vec!["bc_naive".into(), f1(s.bc_naive)],
            vec!["bc_spatial".into(), f1(s.bc_spatial)],
            vec!["pmem_spatial_mlups".into(), f1(s.pmem_spatial)],
        ],
    );
}

fn run_fig5(scale: Scale) {
    banner("Fig. 5 — code balance vs cache block size (1WD, 1 thread, Nx=480)");
    let pts = fig5(scale);
    let usable = 22.5;
    let mut rows = Vec::new();
    for p in &pts {
        rows.push(vec![
            p.bz.to_string(),
            p.dw.to_string(),
            f1(p.cs_mib),
            f1(p.bc_model),
            f1(p.bc_measured),
            if p.cs_mib > usable {
                "over usable L3".into()
            } else {
                "fits".into()
            },
        ]);
    }
    print!(
        "{}",
        table(
            &[
                "BZ",
                "Dw",
                "Cs [MiB]",
                "B_C model",
                "B_C measured",
                "vs 22.5 MiB"
            ],
            &rows
        )
    );
    println!("\nShape check (paper: measured tracks the model left of the red line,");
    println!("diverges upward once the block exceeds the usable cache).");
    let _ = write_csv(
        "fig5.csv",
        &["bz", "dw", "cs_mib", "bc_model", "bc_measured"],
        &pts.iter()
            .map(|p| {
                vec![
                    p.bz.to_string(),
                    p.dw.to_string(),
                    f2(p.cs_mib),
                    f2(p.bc_model),
                    f2(p.bc_measured),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn run_fig6(scale: Scale) {
    banner("Fig. 6 — thread scaling at 384^3 (spatial vs 1WD vs MWD)");
    let pts = fig6(scale);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                f1(p.spatial.mlups),
                f1(p.one_wd.mlups),
                f1(p.mwd.mlups),
                f1(p.spatial.mem_gbs),
                f1(p.one_wd.mem_gbs),
                f1(p.mwd.mem_gbs),
                f1(p.one_wd.code_balance),
                f1(p.mwd.code_balance),
                p.dw_1wd.to_string(),
                p.dw_mwd.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "thr",
                "sp MLUP/s",
                "1WD MLUP/s",
                "MWD MLUP/s",
                "sp GB/s",
                "1WD GB/s",
                "MWD GB/s",
                "1WD B/LUP",
                "MWD B/LUP",
                "Dw1WD",
                "DwMWD",
            ],
            &rows
        )
    );
    println!();
    println!(
        "{}",
        sparkline(
            "spatial MLUP/s",
            &pts.iter().map(|p| p.spatial.mlups).collect::<Vec<_>>()
        )
    );
    println!(
        "{}",
        sparkline(
            "1WD MLUP/s",
            &pts.iter().map(|p| p.one_wd.mlups).collect::<Vec<_>>()
        )
    );
    println!(
        "{}",
        sparkline(
            "MWD MLUP/s",
            &pts.iter().map(|p| p.mwd.mlups).collect::<Vec<_>>()
        )
    );
    println!("\nPaper reference (threads: spatial, 1WD, MWD):");
    for (t, s, o, m) in paper::FIG6A_PERF {
        println!("  {t:>2}: {s:>6.1} {o:>6.1} {m:>6.1}");
    }
    let _ = write_csv(
        "fig6.csv",
        &[
            "threads",
            "spatial_mlups",
            "onewd_mlups",
            "mwd_mlups",
            "spatial_gbs",
            "onewd_gbs",
            "mwd_gbs",
            "onewd_blup",
            "mwd_blup",
            "dw_1wd",
            "dw_mwd",
        ],
        &rows,
    );
}

fn run_fig7(scale: Scale) {
    banner("Fig. 7 — grid scaling on the full socket (18 threads)");
    let pts = fig7(scale);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                f1(p.spatial.mlups),
                f1(p.one_wd.mlups),
                f1(p.mwd.mlups),
                f1(p.mwd.mem_gbs),
                f1(p.mwd.code_balance),
                p.dw_mwd.to_string(),
                format!("{}x{}x{}", p.tg.x, p.tg.z, p.tg.c),
                p.groups.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "N",
                "sp MLUP/s",
                "1WD MLUP/s",
                "MWD MLUP/s",
                "MWD GB/s",
                "MWD B/LUP",
                "Dw",
                "TG(x*z*c)",
                "groups",
            ],
            &rows
        )
    );
    println!("\nPaper reference (N: spatial, 1WD, MWD):");
    for (n, s, o, m) in paper::FIG7A_PERF {
        println!("  {n:>3}: {s:>6.1} {o:>6.1} {m:>6.1}");
    }
    let speedup: Vec<f64> = pts.iter().map(|p| p.mwd.mlups / p.spatial.mlups).collect();
    println!(
        "\nMWD/spatial speedups: {:?}  (paper: 3x-4x at large grids)",
        speedup
            .iter()
            .map(|s| (s * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    let _ = write_csv(
        "fig7.csv",
        &[
            "n",
            "spatial_mlups",
            "onewd_mlups",
            "mwd_mlups",
            "mwd_gbs",
            "mwd_blup",
            "dw",
            "tg",
            "groups",
        ],
        &rows,
    );
}

fn run_fig8(scale: Scale) {
    banner("Fig. 8 — thread-group size impact ({1,2,3,6,9,18}WD, 18 threads)");
    let pts = fig8(scale);
    let mut rows = Vec::new();
    for p in &pts {
        rows.push(vec![
            p.n.to_string(),
            format!("{}WD", p.tg_size),
            f1(p.result.mlups),
            f1(p.result.mem_gbs),
            f1(p.result.code_balance),
            p.dw.to_string(),
        ]);
    }
    print!(
        "{}",
        table(&["N", "variant", "MLUP/s", "GB/s", "B/LUP", "Dw"], &rows)
    );
    if let Some(nmax) = pts.iter().map(|p| p.n).max() {
        let at_max: Vec<_> = pts.iter().filter(|p| p.n == nmax).collect();
        if let (Some(p18), Some(p1)) = (
            at_max.iter().find(|p| p.tg_size == 18),
            at_max.iter().find(|p| p.tg_size == 1),
        ) {
            println!(
                "\nAt N={nmax}: 18WD draws {:.1} GB/s vs 1WD {:.1} GB/s; 18WD saving vs 50 GB/s: {:.0}% (paper: >= 38%)",
                p18.result.mem_gbs,
                p1.result.mem_gbs,
                (1.0 - p18.result.mem_gbs / 50.0) * 100.0
            );
        }
    }
    let _ = write_csv(
        "fig8.csv",
        &["n", "tg_size", "mlups", "gbs", "blup", "dw"],
        &pts.iter()
            .map(|p| {
                vec![
                    p.n.to_string(),
                    p.tg_size.to_string(),
                    f2(p.result.mlups),
                    f2(p.result.mem_gbs),
                    f2(p.result.code_balance),
                    p.dw.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn run_validate(scale: Scale) {
    banner("Model validation — Eq. 12 vs simulator (tile resident)");
    let pts = validate(scale);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.dw.to_string(),
                f1(p.bc_model),
                f1(p.bc_measured),
                f2(p.ratio),
            ]
        })
        .collect();
    print!(
        "{}",
        table(&["Dw", "B_C model", "B_C measured", "ratio"], &rows)
    );
    let _ = write_csv(
        "validate.csv",
        &["dw", "bc_model", "bc_measured", "ratio"],
        &rows,
    );
}

fn run_shapes() {
    banner("Figs. 2/4 — diamond structure");
    print!("{}", shapes(8));
}

fn run_thin(scale: Scale) {
    banner("Thin-domain ablation (paper Sec. VI outlook)");
    let pts = thin_domain(scale);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.thin_axis.to_string(),
                p.dims.to_string(),
                p.dw.to_string(),
                f1(p.result.mlups),
                f1(p.result.mem_gbs),
                f1(p.result.code_balance),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &["thin axis", "domain", "Dw", "MLUP/s", "GB/s", "B/LUP"],
            &rows
        )
    );
    println!("\nPaper: \"Mapping the thin dimension to the leading array dimension");
    println!("helps tiling in shared memory ... the cache block size is proportional");
    println!("to the leading dimension size, so we can use larger blocks in time.\"");
    let _ = write_csv(
        "thin_domain.csv",
        &["thin_axis", "dims", "dw", "mlups", "gbs", "blup"],
        &rows,
    );
}
