//! Output plumbing: CSV files under `results/`, simple aligned tables and
//! ASCII sparkline charts for the terminal.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Directory for CSV outputs; created on demand.
pub fn results_dir() -> PathBuf {
    let candidates = ["results", "../results", "../../results"];
    for c in candidates {
        let p = Path::new(c);
        if p.is_dir() {
            return p.to_path_buf();
        }
    }
    let p = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Write a CSV file with a header row.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let path = results_dir().join(name);
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for r in rows {
        out.push_str(&r.join(","));
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Render an aligned text table.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut s = String::new();
    let line = |s: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(s, "{:>w$}  ", c, w = widths.get(i).copied().unwrap_or(8));
        }
        s.push('\n');
    };
    line(
        &mut s,
        &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().map(|w| w + 2).sum();
    s.push_str(&"-".repeat(total));
    s.push('\n');
    for r in rows {
        line(&mut s, r);
    }
    s
}

/// A one-line ASCII profile of a series (for quick shape checks).
pub fn sparkline(label: &str, values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    let body: String = values
        .iter()
        .map(|&v| GLYPHS[(((v - min) / span) * 7.0).round() as usize])
        .collect();
    format!("{label:<22} {body}  [{min:.1} .. {max:.1}]")
}

pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "longer"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("longer"));
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline("test", &[0.0, 1.0, 2.0, 3.0]);
        assert!(s.contains('▁') && s.contains('█'));
        assert!(s.contains("[0.0 .. 3.0]"));
    }

    #[test]
    fn csv_roundtrip() {
        let p = write_csv(
            "test_harness.csv",
            &["x", "y"],
            &[vec!["1".into(), "2".into()]],
        )
        .unwrap();
        let body = std::fs::read_to_string(&p).unwrap();
        assert_eq!(body, "x,y\n1,2\n");
        let _ = std::fs::remove_file(p);
    }
}
