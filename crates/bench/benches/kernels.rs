//! Microbenchmarks of the THIIM component kernels (the loop bodies of
//! paper Listings 1 and 2) and of full reference sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use em_field::{Component, GridDims, State};
use em_kernels::simd::{detected_isa, Isa};
use em_kernels::{
    step_naive, step_spatial, update_component_row, update_component_rows, RawGrid, SpatialConfig,
};

fn filled(dims: GridDims) -> State {
    let mut s = State::zeros(dims);
    s.fields.fill_deterministic(1);
    s.coeffs.fill_deterministic(2);
    s
}

fn bench_row_kernels(c: &mut Criterion) {
    let dims = GridDims::new(256, 8, 8);
    let state = filled(dims);
    let g = RawGrid::new(&state);
    let mut group = c.benchmark_group("row_kernel");
    group.throughput(Throughput::Elements(dims.nx as u64));
    // Listing 1 type (z shift + source) vs Listing 2 type (x shift).
    for comp in [Component::Hyx, Component::Hzy, Component::Hzx] {
        group.bench_with_input(
            BenchmarkId::from_parameter(comp.name()),
            &comp,
            |b, &comp| {
                b.iter(|| unsafe {
                    update_component_row(&g, comp, 4, 4, 0..dims.nx);
                })
            },
        );
    }
    group.finish();
}

/// Scalar vs dispatched SIMD on the same rows: element throughput is
/// cells/s, so criterion's `Melem/s` reads directly as MLUP/s per
/// variant. Every ISA at or below the detected one is measured.
fn bench_row_kernel_isas(c: &mut Criterion) {
    let dims = GridDims::new(256, 8, 8);
    let state = filled(dims);
    let comp = Component::Hyx; // Listing-1 type: source + z shift
    let cells = (dims.nx * dims.ny) as u64;
    let mut group = c.benchmark_group("row_kernel_isa");
    group.throughput(Throughput::Elements(cells));
    for isa in [Isa::Scalar, Isa::Avx2, Isa::Avx512] {
        if isa > detected_isa() {
            continue;
        }
        let g = RawGrid::new(&state).with_isa(isa);
        let label = if isa == detected_isa() {
            format!("{}(dispatched)", isa.name())
        } else {
            isa.name().to_string()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &comp, |b, &comp| {
            b.iter(|| unsafe {
                update_component_rows(&g, comp, 4..5, 0..dims.ny, 0..dims.nx);
            })
        });
    }
    group.finish();
}

fn bench_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_step");
    for n in [16usize, 32, 48] {
        let dims = GridDims::cubic(n);
        group.throughput(Throughput::Elements(dims.cells() as u64));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            let mut s = filled(dims);
            b.iter(|| step_naive(&mut s));
        });
        group.bench_with_input(BenchmarkId::new("spatial", n), &n, |b, _| {
            let mut s = filled(dims);
            let cfg = SpatialConfig::new((n / 4).max(1), n);
            b.iter(|| step_spatial(&mut s, cfg));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_row_kernels,
    bench_row_kernel_isas,
    bench_sweeps
);
criterion_main!(benches);
