//! Infrastructure microbenchmarks: the spin barrier, the FIFO tile
//! queue, plan construction, and the cache-simulator throughput that
//! bounds figure-regeneration time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mem_sim::{ArrayId, LruCache, RowCacheSim};
use mwd_core::{DiamondWidth, ReadyQueue, SpinBarrier, TilePlan};

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier");
    group.bench_function("wait_2_threads", |b| {
        let bar = SpinBarrier::new(2);
        b.iter_custom(|iters| {
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        for _ in 0..iters {
                            bar.wait();
                        }
                    });
                }
            });
            start.elapsed()
        });
    });
    group.finish();
}

fn bench_queue_and_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    for (ny, nt) in [(64usize, 32usize), (256, 64)] {
        group.bench_with_input(
            BenchmarkId::new("plan_build", format!("{ny}x{nt}")),
            &(ny, nt),
            |b, &(ny, nt)| {
                let dw = DiamondWidth::new(8).unwrap();
                b.iter(|| TilePlan::build(dw, ny, nt));
            },
        );
    }
    let plan = TilePlan::build(DiamondWidth::new(8).unwrap(), 256, 64);
    group.throughput(Throughput::Elements(plan.tiles.len() as u64));
    group.bench_function("queue_drain", |b| {
        b.iter(|| {
            let q = ReadyQueue::new(&plan);
            let mut n = 0;
            while let Some(t) = q.try_pop() {
                q.complete(t);
                n += 1;
            }
            assert_eq!(n, plan.tiles.len());
        });
    });
    group.finish();
}

fn bench_cache_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_sim");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("lru_access_100k", |b| {
        b.iter(|| {
            let mut lru = LruCache::new(4096);
            let mut k = 1u64;
            for _ in 0..100_000 {
                k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
                lru.access(k >> 50, k & 1 == 0);
            }
            lru.misses
        });
    });
    group.bench_function("rowsim_access_100k", |b| {
        b.iter(|| {
            let mut sim = RowCacheSim::new(1 << 22, 4096);
            for i in 0..100_000usize {
                sim.access(ArrayId((i % 40) as u8), i % 97, i % 53, i % 7 == 0);
            }
            sim.mem.total()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_barrier,
    bench_queue_and_plan,
    bench_cache_sim
);
criterion_main!(benches);
