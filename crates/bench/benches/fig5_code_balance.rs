//! Bench target for Fig. 5: times the code-balance measurement pipeline
//! (tile plan + wavefront trace through the simulated Haswell L3) per
//! diamond width. Run `cargo run -p em-bench --bin figures --release fig5`
//! for the actual figure regeneration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_bench::figures::HSW;
use em_bench::Scale;
use mem_sim::simulate_mwd_engine;

fn bench_fig5_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_point");
    group.sample_size(10);
    let sim = Scale::Tiny.grid(480);
    for &dw in em_bench::paper::FIG5_DW {
        group.bench_with_input(BenchmarkId::new("bz1", dw), &dw, |b, &dw| {
            b.iter(|| simulate_mwd_engine(&HSW, sim, dw.max(4), dw, 1, 1, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5_points);
criterion_main!(benches);
