//! Native engine comparison: naive sweep vs spatially blocked vs MWD
//! (1WD and shared thread groups) on this host. The absolute numbers
//! reflect the 2-core reproduction machine; the paper-scale comparison
//! lives in the `figures` binary on the simulated Haswell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use em_field::{GridDims, State};
use em_kernels::{run_naive, step_spatial_mt, SpatialConfig};
use mwd_core::{run_mwd, MwdConfig, TgShape};

const STEPS: usize = 4;

fn filled(dims: GridDims) -> State {
    let mut s = State::zeros(dims);
    s.fields.fill_deterministic(3);
    s.coeffs.fill_deterministic(4);
    s
}

fn bench_engines(c: &mut Criterion) {
    let dims = GridDims::cubic(32);
    let mut group = c.benchmark_group("engine_4steps");
    group.sample_size(10);
    group.throughput(Throughput::Elements((dims.cells() * STEPS) as u64));

    group.bench_function("naive", |b| {
        let proto = filled(dims);
        b.iter_batched(
            || proto.clone(),
            |mut s| run_naive(&mut s, STEPS),
            criterion::BatchSize::LargeInput,
        );
    });

    for threads in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("spatial", threads), &threads, |b, &t| {
            let proto = filled(dims);
            let cfg = SpatialConfig::new(8, 32);
            b.iter_batched(
                || proto.clone(),
                |mut s| {
                    for _ in 0..STEPS {
                        step_spatial_mt(&mut s, cfg, t);
                    }
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }

    for (label, cfg) in [
        ("1wd_t1", MwdConfig::one_wd(4, 2, 1)),
        ("1wd_t2", MwdConfig::one_wd(4, 2, 2)),
        (
            "mwd_tg2",
            MwdConfig {
                dw: 4,
                bz: 2,
                tg: TgShape { x: 1, z: 1, c: 2 },
                groups: 1,
            },
        ),
        (
            "mwd_tg2x2",
            MwdConfig {
                dw: 4,
                bz: 2,
                tg: TgShape { x: 2, z: 1, c: 1 },
                groups: 1,
            },
        ),
    ] {
        group.bench_function(label, |b| {
            let proto = filled(dims);
            b.iter_batched(
                || proto.clone(),
                |mut s| run_mwd(&mut s, &cfg, STEPS).expect("valid config"),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
