//! Bench target for Fig. 6: times one thread-scaling point per engine
//! (spatial / 1WD / MWD) at smoke scale. The figure itself is produced by
//! `cargo run -p em-bench --bin figures --release fig6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_bench::figures::{tune_point, HSW};
use em_bench::Scale;
use em_field::GridDims;
use mem_sim::{simulate_mwd_engine, simulate_spatial_engine};

fn bench_fig6_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_point");
    group.sample_size(10);
    let paper_dims = GridDims::cubic(384);
    let sim = Scale::Tiny.grid(384);
    for threads in [1usize, 6, 18] {
        group.bench_with_input(BenchmarkId::new("spatial", threads), &threads, |b, &t| {
            b.iter(|| simulate_spatial_engine(&HSW, sim, 1, t));
        });
        group.bench_with_input(BenchmarkId::new("one_wd", threads), &threads, |b, &t| {
            let cfg = tune_point(paper_dims, t, Some(&[1]));
            b.iter(|| simulate_mwd_engine(&HSW, sim, cfg.dw.max(4), cfg.dw, cfg.bz, cfg.groups, t));
        });
        group.bench_with_input(BenchmarkId::new("mwd", threads), &threads, |b, &t| {
            let cfg = tune_point(paper_dims, t, None);
            b.iter(|| simulate_mwd_engine(&HSW, sim, cfg.dw.max(4), cfg.dw, cfg.bz, cfg.groups, t));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6_points);
criterion_main!(benches);
