//! Bench target for Fig. 8: times one thread-group-size point
//! ({1,6,18}WD) at smoke scale. The figure is produced by
//! `cargo run -p em-bench --bin figures --release fig8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_bench::figures::{tune_point, HSW};
use em_bench::Scale;
use em_field::GridDims;
use mem_sim::simulate_mwd_engine;

fn bench_fig8_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_point");
    group.sample_size(10);
    let paper_dims = GridDims::cubic(256);
    let sim = Scale::Tiny.grid(256);
    for tg in [1usize, 6, 18] {
        group.bench_with_input(BenchmarkId::new("tgsize", tg), &tg, |b, &tg| {
            let cfg = tune_point(paper_dims, 18, Some(&[tg]));
            b.iter(|| {
                simulate_mwd_engine(&HSW, sim, cfg.dw.max(4), cfg.dw, cfg.bz, cfg.groups, 18)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8_points);
criterion_main!(benches);
