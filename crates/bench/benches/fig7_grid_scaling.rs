//! Bench target for Fig. 7: times one full-socket grid-scaling point
//! (tuning + traffic measurement) per grid side at smoke scale. The
//! figure is produced by `cargo run -p em-bench --bin figures --release fig7`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_bench::figures::{tune_point, HSW};
use em_bench::Scale;
use em_field::GridDims;
use mem_sim::simulate_mwd_engine;

fn bench_fig7_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_point");
    group.sample_size(10);
    for n in [64usize, 256, 512] {
        group.bench_with_input(BenchmarkId::new("tune", n), &n, |b, &n| {
            b.iter(|| tune_point(GridDims::cubic(n), 18, None));
        });
        group.bench_with_input(BenchmarkId::new("tune_and_measure", n), &n, |b, &n| {
            let sim = Scale::Tiny.grid(n);
            b.iter(|| {
                let cfg = tune_point(GridDims::cubic(n), 18, None);
                simulate_mwd_engine(&HSW, sim, cfg.dw.max(4), cfg.dw, cfg.bz, cfg.groups, 18)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7_points);
criterion_main!(benches);
