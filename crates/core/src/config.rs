//! MWD run configuration: diamond width, wavefront width, and the
//! multi-dimensional thread-group shape.

use crate::diamond::DiamondWidth;
use crate::wavefront::WavefrontSpec;
use em_field::GridDims;

/// Intra-tile parallelization shape of one thread group (TG).
///
/// The paper's multi-dimensional intra-tile parallelization splits a
/// tile's work three ways (Sec. II-B):
/// - `x`: threads take contiguous chunks of the contiguous dimension,
/// - `z`: threads take sub-slabs of each row's wavefront window,
/// - `c`: threads take subsets of the six field components (1/2/3/6-way).
///
/// The y (diamond) dimension is deliberately *not* split: the odd E-row
/// widths make it impossible to load-balance (Sec. II-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TgShape {
    pub x: usize,
    pub z: usize,
    pub c: usize,
}

impl TgShape {
    /// A single-thread group (the 1WD configuration).
    pub const SINGLE: TgShape = TgShape { x: 1, z: 1, c: 1 };

    pub fn new(x: usize, z: usize, c: usize) -> Result<Self, String> {
        let s = TgShape { x, z, c };
        s.validate()?;
        Ok(s)
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.x == 0 || self.z == 0 {
            return Err(format!("TG shape must be positive, got {self:?}"));
        }
        if ![1, 2, 3, 6].contains(&self.c) {
            return Err(format!(
                "component parallelism must be 1, 2, 3 or 6 (six components), got {}",
                self.c
            ));
        }
        Ok(())
    }

    /// Threads per group.
    pub fn size(&self) -> usize {
        self.x * self.z * self.c
    }

    /// Decompose a member id `0..size()` into `(ix, iz, ic)` coordinates.
    pub fn coords(&self, member: usize) -> (usize, usize, usize) {
        debug_assert!(member < self.size());
        let ic = member % self.c;
        let iz = (member / self.c) % self.z;
        let ix = member / (self.c * self.z);
        (ix, iz, ic)
    }

    /// Parse the `XxZxC` form produced by [`Display`](std::fmt::Display).
    pub fn from_compact(s: &str) -> Result<TgShape, String> {
        let parts: Vec<&str> = s.split('x').collect();
        let [x, z, c] = parts.as_slice() else {
            return Err(format!("TG shape must be `XxZxC`, got `{s}`"));
        };
        let dim = |what: &str, v: &str| -> Result<usize, String> {
            v.parse()
                .map_err(|_| format!("TG {what} must be a positive integer, got `{v}`"))
        };
        let tg = TgShape {
            x: dim("x", x)?,
            z: dim("z", z)?,
            c: dim("c", c)?,
        };
        tg.validate()?;
        Ok(tg)
    }

    /// All factorizations `x*z*c = size` with valid `c`, used by the
    /// auto-tuner's search space.
    pub fn enumerate(size: usize) -> Vec<TgShape> {
        let mut out = Vec::new();
        for c in [1usize, 2, 3, 6] {
            if !size.is_multiple_of(c) {
                continue;
            }
            let xz = size / c;
            for x in 1..=xz {
                if xz.is_multiple_of(x) {
                    out.push(TgShape { x, z: xz / x, c });
                }
            }
        }
        out
    }
}

impl std::fmt::Display for TgShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.x, self.z, self.c)
    }
}

/// Full MWD configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MwdConfig {
    pub dw: usize,
    pub bz: usize,
    pub tg: TgShape,
    /// Number of concurrently running thread groups.
    pub groups: usize,
}

impl MwdConfig {
    /// The 1WD configuration: `threads` groups of one thread each.
    pub fn one_wd(dw: usize, bz: usize, threads: usize) -> Self {
        MwdConfig {
            dw,
            bz,
            tg: TgShape::SINGLE,
            groups: threads,
        }
    }

    pub fn threads(&self) -> usize {
        self.groups * self.tg.size()
    }

    pub fn diamond(&self) -> Result<DiamondWidth, String> {
        DiamondWidth::new(self.dw)
    }

    pub fn wavefront(&self) -> Result<WavefrontSpec, String> {
        WavefrontSpec::new(self.bz)
    }

    /// The canonical single-line form, e.g. `dw=8,bz=2,tg=1x1x2,groups=1`.
    /// Round-trips through [`from_compact`](Self::from_compact); used as
    /// the on-disk representation in tuning caches and reports.
    pub fn to_compact(&self) -> String {
        format!(
            "dw={},bz={},tg={},groups={}",
            self.dw, self.bz, self.tg, self.groups
        )
    }

    /// Parse the [`to_compact`](Self::to_compact) form. Fields may appear
    /// in any order but must all be present exactly once.
    pub fn from_compact(s: &str) -> Result<MwdConfig, String> {
        let mut dw = None;
        let mut bz = None;
        let mut tg = None;
        let mut groups = None;
        for part in s.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("MWD config field `{part}` is not `key=value`"))?;
            let (key, value) = (key.trim(), value.trim());
            let int = || -> Result<usize, String> {
                value
                    .parse()
                    .map_err(|_| format!("MWD config `{key}` must be an integer, got `{value}`"))
            };
            let slot = match key {
                "dw" => &mut dw,
                "bz" => &mut bz,
                "groups" => &mut groups,
                "tg" => {
                    if tg.replace(TgShape::from_compact(value)?).is_some() {
                        return Err("MWD config field `tg` appears twice".to_string());
                    }
                    continue;
                }
                other => return Err(format!("unknown MWD config field `{other}` in `{s}`")),
            };
            if slot.replace(int()?).is_some() {
                return Err(format!("MWD config field `{key}` appears twice"));
            }
        }
        let need = |what: &str, v: Option<usize>| {
            v.ok_or_else(|| format!("MWD config `{s}` is missing `{what}`"))
        };
        Ok(MwdConfig {
            dw: need("dw", dw)?,
            bz: need("bz", bz)?,
            tg: tg.ok_or_else(|| format!("MWD config `{s}` is missing `tg`"))?,
            groups: need("groups", groups)?,
        })
    }

    pub fn validate(&self, dims: GridDims) -> Result<(), String> {
        dims.validate()?;
        self.diamond()?;
        self.wavefront()?;
        self.tg.validate()?;
        if self.groups == 0 {
            return Err("need at least one thread group".into());
        }
        if self.tg.z > self.bz {
            return Err(format!(
                "z-parallelism {} exceeds wavefront window BZ={}: threads would idle",
                self.tg.z, self.bz
            ));
        }
        if self.tg.x > dims.nx {
            return Err(format!(
                "x-parallelism {} exceeds Nx={}",
                self.tg.x, dims.nx
            ));
        }
        Ok(())
    }
}

/// Balanced split of `range` into `parts`, returning part `i`.
/// First `len % parts` chunks get one extra element.
pub fn split_range(
    range: std::ops::Range<usize>,
    parts: usize,
    i: usize,
) -> std::ops::Range<usize> {
    debug_assert!(i < parts);
    let len = range.end.saturating_sub(range.start);
    let base = len / parts;
    let extra = len % parts;
    let start = range.start + i * base + i.min(extra);
    let end = start + base + usize::from(i < extra);
    start..end.min(range.end)
}

/// [`split_range`] with chunk boundaries rounded to multiples of `lane`
/// (relative to `range.start`): whole lanes are distributed balanced
/// across the parts, so every chunk but the last is a whole number of
/// lanes. Used for the TG x-chunk split so the SIMD row kernels process
/// each chunk without scalar tails. Still a partition of `range`; when
/// `parts` exceeds the lane count some trailing parts are empty.
pub fn split_range_aligned(
    range: std::ops::Range<usize>,
    parts: usize,
    i: usize,
    lane: usize,
) -> std::ops::Range<usize> {
    debug_assert!(lane > 0);
    let len = range.end.saturating_sub(range.start);
    let lanes = len.div_ceil(lane);
    let lr = split_range(0..lanes, parts, i);
    let start = (range.start + lr.start * lane).min(range.end);
    let end = (range.start + lr.end * lane).min(range.end);
    start..end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_size_and_coords_roundtrip() {
        let tg = TgShape::new(2, 3, 3).unwrap();
        assert_eq!(tg.size(), 18);
        let mut seen = std::collections::HashSet::new();
        for m in 0..tg.size() {
            let (ix, iz, ic) = tg.coords(m);
            assert!(ix < 2 && iz < 3 && ic < 3);
            assert!(seen.insert((ix, iz, ic)), "coords must be unique");
        }
        assert_eq!(seen.len(), 18);
    }

    #[test]
    fn invalid_component_parallelism_rejected() {
        assert!(TgShape::new(1, 1, 4).is_err());
        assert!(TgShape::new(1, 1, 5).is_err());
        for c in [1, 2, 3, 6] {
            assert!(TgShape::new(1, 1, c).is_ok());
        }
    }

    #[test]
    fn enumerate_covers_paper_tg_sizes() {
        // 18 threads on the Haswell: shapes like (1,3,6), (3,1,6), (1,6,3)...
        let shapes = TgShape::enumerate(18);
        assert!(shapes.contains(&TgShape { x: 1, z: 3, c: 6 }));
        assert!(shapes.contains(&TgShape { x: 3, z: 2, c: 3 }));
        assert!(shapes.contains(&TgShape { x: 18, z: 1, c: 1 }));
        for s in &shapes {
            assert_eq!(s.size(), 18);
            assert!(s.validate().is_ok());
        }
        // 6 threads: 1x1x6, 1x2x3, 2x1x3, 1x3x2, ..., 6x1x1
        let six = TgShape::enumerate(6);
        assert!(six.contains(&TgShape { x: 1, z: 1, c: 6 }));
        assert!(six.contains(&TgShape { x: 6, z: 1, c: 1 }));
    }

    #[test]
    fn config_validation_catches_mismatches() {
        let dims = GridDims::cubic(16);
        let ok = MwdConfig {
            dw: 4,
            bz: 4,
            tg: TgShape::new(2, 2, 3).unwrap(),
            groups: 1,
        };
        assert!(ok.validate(dims).is_ok());
        let bad_dw = MwdConfig { dw: 5, ..ok };
        assert!(bad_dw.validate(dims).is_err());
        let bad_z = MwdConfig {
            tg: TgShape { x: 1, z: 8, c: 1 },
            bz: 4,
            ..ok
        };
        assert!(bad_z.validate(dims).is_err());
        let bad_groups = MwdConfig { groups: 0, ..ok };
        assert!(bad_groups.validate(dims).is_err());
        let bad_x = MwdConfig {
            tg: TgShape { x: 32, z: 1, c: 1 },
            ..ok
        };
        assert!(bad_x.validate(dims).is_err());
    }

    #[test]
    fn one_wd_is_single_thread_groups() {
        let cfg = MwdConfig::one_wd(8, 2, 6);
        assert_eq!(cfg.threads(), 6);
        assert_eq!(cfg.tg.size(), 1);
        assert_eq!(cfg.groups, 6);
    }

    #[test]
    fn compact_form_roundtrips() {
        for cfg in [
            MwdConfig::one_wd(4, 2, 6),
            MwdConfig {
                dw: 16,
                bz: 3,
                tg: TgShape { x: 2, z: 3, c: 6 },
                groups: 2,
            },
        ] {
            let s = cfg.to_compact();
            assert_eq!(MwdConfig::from_compact(&s).unwrap(), cfg, "{s}");
        }
        assert_eq!(
            MwdConfig::one_wd(8, 2, 3).to_compact(),
            "dw=8,bz=2,tg=1x1x1,groups=3"
        );
        // Field order does not matter.
        assert_eq!(
            MwdConfig::from_compact("groups=3,tg=1x1x1,bz=2,dw=8").unwrap(),
            MwdConfig::one_wd(8, 2, 3)
        );
    }

    #[test]
    fn compact_form_rejects_malformed_input() {
        for bad in [
            "",
            "dw=8",
            "dw=8,bz=2,tg=1x1,groups=1",
            "dw=8,bz=2,tg=1x1x4,groups=1",
            "dw=8,bz=2,tg=1x1x1,groups=1,extra=7",
            "dw=8,dw=8,bz=2,tg=1x1x1,groups=1",
            "dw=eight,bz=2,tg=1x1x1,groups=1",
        ] {
            assert!(MwdConfig::from_compact(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn split_range_is_a_partition() {
        for (len, parts) in [(10usize, 3usize), (7, 7), (5, 2), (12, 4), (3, 6), (0, 2)] {
            let mut covered = vec![0; len];
            for i in 0..parts {
                for j in split_range(0..len, parts, i) {
                    covered[j] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "len={len} parts={parts}");
            // Balance: sizes differ by at most 1.
            let sizes: Vec<usize> = (0..parts)
                .map(|i| split_range(0..len, parts, i).len())
                .collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "unbalanced split {sizes:?}");
        }
    }

    #[test]
    fn split_range_with_offset() {
        let r = split_range(5..15, 3, 1);
        assert_eq!(r, 9..12);
    }

    #[test]
    fn split_range_aligned_is_a_lane_partition() {
        for (len, parts, lane) in [
            (48usize, 3usize, 8usize),
            (50, 3, 8),
            (7, 2, 8),
            (17, 4, 4),
            (0, 2, 8),
            (64, 16, 8),
        ] {
            let mut covered = vec![0usize; len];
            for i in 0..parts {
                let r = split_range_aligned(0..len, parts, i, lane);
                if !r.is_empty() {
                    // Every chunk starts on a lane boundary.
                    assert_eq!(r.start % lane, 0, "len={len} parts={parts} i={i}");
                    // Every chunk except the one holding the ragged end
                    // is a whole number of lanes.
                    if r.end != len || len % lane == 0 {
                        assert_eq!(r.len() % lane, 0, "len={len} parts={parts} i={i}");
                    }
                }
                for j in r {
                    covered[j] += 1;
                }
            }
            assert!(
                covered.iter().all(|&c| c == 1),
                "len={len} parts={parts} lane={lane}: {covered:?}"
            );
        }
    }

    #[test]
    fn split_range_aligned_respects_offset() {
        let r = split_range_aligned(4..20, 2, 0, 8);
        assert_eq!(r, 4..12);
        let r = split_range_aligned(4..20, 2, 1, 8);
        assert_eq!(r, 12..20);
    }
}
