//! Thread-budget sharing between concurrent solver jobs and the threads
//! each job uses internally.
//!
//! A batch of scenario runs has two levels of parallelism: the worker
//! pool executing independent jobs, and the engine threads (spatial
//! blocks or MWD thread groups) inside every job. Both draw from the
//! same physical cores, so a batch that naively gives every job the
//! full machine oversubscribes it `jobs`-fold. [`ThreadBudget`] owns the
//! total and [`ThreadBudget::split`] divides it: as many workers as
//! there are jobs (capped by the budget), and the left-over factor as
//! per-job engine threads.

/// A fixed number of hardware threads to share between batch workers
/// and intra-solve thread groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadBudget {
    total: usize,
}

/// The outcome of dividing a [`ThreadBudget`] over a number of jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetSplit {
    /// Concurrent batch workers (each runs one job at a time).
    pub workers: usize,
    /// Engine threads available to every running job.
    pub threads_per_job: usize,
}

impl BudgetSplit {
    /// Worst-case simultaneous thread demand of this split.
    pub fn concurrency(&self) -> usize {
        self.workers * self.threads_per_job
    }
}

impl ThreadBudget {
    /// A budget of `total` threads (clamped to at least one).
    pub fn new(total: usize) -> Self {
        ThreadBudget {
            total: total.max(1),
        }
    }

    /// The host's available parallelism.
    pub fn host() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadBudget::new(n)
    }

    pub fn total(&self) -> usize {
        self.total
    }

    /// Split the budget over `jobs` independent jobs.
    ///
    /// Workers never exceed the job count (idle workers are pointless)
    /// nor the budget (no oversubscription); the remaining factor goes
    /// to each job's engine. The product `workers * threads_per_job`
    /// never exceeds the total.
    pub fn split(&self, jobs: usize) -> BudgetSplit {
        let workers = self.total.min(jobs).max(1);
        let threads_per_job = (self.total / workers).max(1);
        BudgetSplit {
            workers,
            threads_per_job,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_never_oversubscribes() {
        for total in 1..=32 {
            let budget = ThreadBudget::new(total);
            for jobs in 0..=40 {
                let s = budget.split(jobs);
                assert!(s.workers >= 1 && s.threads_per_job >= 1);
                assert!(
                    s.concurrency() <= total,
                    "budget {total} over {jobs} jobs demands {} threads",
                    s.concurrency()
                );
                assert!(s.workers <= jobs.max(1));
            }
        }
    }

    #[test]
    fn few_jobs_get_deep_engines_many_jobs_get_wide_pool() {
        let budget = ThreadBudget::new(8);
        let deep = budget.split(2);
        assert_eq!(deep.workers, 2);
        assert_eq!(deep.threads_per_job, 4);
        let wide = budget.split(16);
        assert_eq!(wide.workers, 8);
        assert_eq!(wide.threads_per_job, 1);
    }

    #[test]
    fn zero_is_clamped() {
        assert_eq!(ThreadBudget::new(0).total(), 1);
        let s = ThreadBudget::new(1).split(0);
        assert_eq!(s.workers, 1);
        assert_eq!(s.threads_per_job, 1);
    }

    #[test]
    fn host_budget_is_positive() {
        assert!(ThreadBudget::host().total() >= 1);
    }
}
