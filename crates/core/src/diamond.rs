//! Diamond tile geometry in (y, time) space with the E/H field split.
//!
//! Because the H field depends on E over the negative y direction and E on
//! H over the positive direction (paper Fig. 3), the two fields are split
//! into separate rows (paper Fig. 2): a full diamond starts and ends with
//! an E update. For diamond width `Dw` (even) and `R = Dw/2`, the canonical
//! diamond with base `Y` and time base `n0` consists of, per level offset
//! `m`:
//!
//! ```text
//! E rows, m = 0..Dw-1:  widths 1, 3, .., Dw-1, Dw-1, .., 3, 1
//!   expanding  (m <  R): [Y - m,            Y + m]
//!   contracting(m >= R): [Y - (Dw-1-m),     Y + (Dw-1-m)]
//! H rows, m = 1..Dw-1:  widths 2, 4, .., Dw, .., 4, 2
//!   expanding  (m <= R): [Y - m + 1,        Y + m]
//!   contracting(m >  R): [Y - (Dw-m) + 1,   Y + (Dw-m)]
//! ```
//!
//! This yields exactly the paper's accounting: `Dw^2/2` lattice-site
//! updates per diamond, H writes spanning `Dw` distinct y lines and E
//! writes spanning `Dw-1` (the `6*(2*Dw-1)` writes of Eq. 12), and odd
//! E-row widths (the "odd number of grid points at every other time step"
//! that rules out load-balanced intra-tile parallelization along y,
//! Sec. II-B).
//!
//! Tiles at row `k` use bases `Y ≡ (k mod 2) * R (mod Dw)` and time base
//! `n0 = k * R`; the two parents of `D_k(Y)` are `D_{k-1}(Y - R)` and
//! `D_{k-1}(Y + R)`. These facts are exercised by the tests here and the
//! tessellation property tests in `tiling`.

use em_field::FieldKind;

/// One row of a diamond tile: all six components of one field at one time
/// level over a contiguous y interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiamondRow {
    pub kind: FieldKind,
    /// Full time step computed by this row (1-based in a simulation).
    pub time: i64,
    /// Inclusive canonical y interval.
    pub y_lo: i64,
    pub y_hi: i64,
    /// Wavefront lag of this row in z (level offset for E, offset-1 for H).
    pub lag: usize,
}

impl DiamondRow {
    pub fn width(&self) -> i64 {
        self.y_hi - self.y_lo + 1
    }
}

/// Diamond width parameter. Invariant: even and >= 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiamondWidth(usize);

impl DiamondWidth {
    pub fn new(dw: usize) -> Result<Self, String> {
        if dw < 2 || !dw.is_multiple_of(2) {
            return Err(format!("diamond width must be even and >= 2, got {dw}"));
        }
        Ok(DiamondWidth(dw))
    }

    #[inline]
    pub fn get(self) -> usize {
        self.0
    }

    /// Half width `R = Dw / 2`.
    #[inline]
    pub fn half(self) -> usize {
        self.0 / 2
    }

    /// Lattice-site updates per full diamond: `Dw^2 / 2`.
    pub fn area_lups(self) -> usize {
        self.0 * self.0 / 2
    }
}

/// Generate the canonical (unclipped) rows of the diamond with base `base`
/// and time base `n0`, bottom-up: `E(n0), H(n0+1), E(n0+1), ...,
/// H(n0+Dw-1), E(n0+Dw-1)` — `2*Dw - 1` rows.
pub fn diamond_rows(dw: DiamondWidth, base: i64, n0: i64) -> Vec<DiamondRow> {
    let w = dw.get() as i64;
    let r = dw.half() as i64;
    let mut rows = Vec::with_capacity(2 * dw.get() - 1);

    let e_interval = |m: i64| -> (i64, i64) {
        if m < r {
            (base - m, base + m)
        } else {
            let s = w - 1 - m;
            (base - s, base + s)
        }
    };
    let h_interval = |m: i64| -> (i64, i64) {
        if m <= r {
            (base - m + 1, base + m)
        } else {
            let s = w - m;
            (base - s + 1, base + s)
        }
    };

    // Bottom E row.
    let (lo, hi) = e_interval(0);
    rows.push(DiamondRow {
        kind: FieldKind::E,
        time: n0,
        y_lo: lo,
        y_hi: hi,
        lag: 0,
    });
    for m in 1..w {
        let (lo, hi) = h_interval(m);
        rows.push(DiamondRow {
            kind: FieldKind::H,
            time: n0 + m,
            y_lo: lo,
            y_hi: hi,
            lag: (m - 1) as usize,
        });
        let (lo, hi) = e_interval(m);
        rows.push(DiamondRow {
            kind: FieldKind::E,
            time: n0 + m,
            y_lo: lo,
            y_hi: hi,
            lag: m as usize,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_odd_and_small_widths() {
        assert!(DiamondWidth::new(0).is_err());
        assert!(DiamondWidth::new(1).is_err());
        assert!(DiamondWidth::new(3).is_err());
        assert!(DiamondWidth::new(2).is_ok());
        assert!(DiamondWidth::new(16).is_ok());
    }

    #[test]
    fn dw4_matches_hand_construction() {
        // The worked example from DESIGN.md Sec. 3.2 (Dw = 4, base Y, n0=0):
        // E^0=[Y,Y], H^1=[Y,Y+1], E^1=[Y-1,Y+1], H^2=[Y-1,Y+2],
        // E^2=[Y-1,Y+1], H^3=[Y,Y+1], E^3=[Y,Y].
        let rows = diamond_rows(DiamondWidth::new(4).unwrap(), 10, 0);
        let expect = [
            (FieldKind::E, 0, 10, 10, 0),
            (FieldKind::H, 1, 10, 11, 0),
            (FieldKind::E, 1, 9, 11, 1),
            (FieldKind::H, 2, 9, 12, 1),
            (FieldKind::E, 2, 9, 11, 2),
            (FieldKind::H, 3, 10, 11, 2),
            (FieldKind::E, 3, 10, 10, 3),
        ];
        assert_eq!(rows.len(), expect.len());
        for (row, (k, t, lo, hi, lag)) in rows.iter().zip(expect) {
            assert_eq!(
                (row.kind, row.time, row.y_lo, row.y_hi, row.lag),
                (k, t, lo, hi, lag)
            );
        }
    }

    #[test]
    fn widths_follow_the_odd_even_pattern() {
        for dw in [2usize, 4, 6, 8, 12, 16] {
            let d = DiamondWidth::new(dw).unwrap();
            let rows = diamond_rows(d, 0, 0);
            assert_eq!(rows.len(), 2 * dw - 1);
            for row in &rows {
                match row.kind {
                    FieldKind::E => assert!(row.width() % 2 == 1, "E widths odd (dw={dw})"),
                    FieldKind::H => assert!(row.width() % 2 == 0, "H widths even (dw={dw})"),
                }
            }
            let hmax = rows
                .iter()
                .filter(|r| r.kind == FieldKind::H)
                .map(|r| r.width())
                .max();
            let emax = rows
                .iter()
                .filter(|r| r.kind == FieldKind::E)
                .map(|r| r.width())
                .max();
            assert_eq!(hmax, Some(dw as i64), "widest H row = Dw");
            assert_eq!(emax, Some(dw as i64 - 1), "widest E row = Dw-1");
        }
    }

    #[test]
    fn half_cell_counts_match_eq12_accounting() {
        for dw in [2usize, 4, 6, 8, 10, 16] {
            let d = DiamondWidth::new(dw).unwrap();
            let rows = diamond_rows(d, 0, 0);
            let e_cells: i64 = rows
                .iter()
                .filter(|r| r.kind == FieldKind::E)
                .map(|r| r.width())
                .sum();
            let h_cells: i64 = rows
                .iter()
                .filter(|r| r.kind == FieldKind::H)
                .map(|r| r.width())
                .sum();
            // Both field phases cover Dw^2/2 cell-updates => Dw^2/2 LUPs.
            assert_eq!(e_cells as usize, d.area_lups(), "E cells (dw={dw})");
            assert_eq!(h_cells as usize, d.area_lups(), "H cells (dw={dw})");

            // Distinct y lines written: Dw for H, Dw-1 for E (Eq. 12's
            // 6*(2Dw-1) writes per x-column).
            let h_lines: std::collections::BTreeSet<i64> = rows
                .iter()
                .filter(|r| r.kind == FieldKind::H)
                .flat_map(|r| r.y_lo..=r.y_hi)
                .collect();
            let e_lines: std::collections::BTreeSet<i64> = rows
                .iter()
                .filter(|r| r.kind == FieldKind::E)
                .flat_map(|r| r.y_lo..=r.y_hi)
                .collect();
            assert_eq!(h_lines.len(), dw);
            assert_eq!(e_lines.len(), dw - 1);
        }
    }

    #[test]
    fn rows_are_bottom_up_with_h_before_e_per_level() {
        let rows = diamond_rows(DiamondWidth::new(8).unwrap(), 0, 5);
        for pair in rows.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let key = |r: &DiamondRow| (r.time, matches!(r.kind, FieldKind::E) as i64);
            assert!(key(a) < key(b), "rows must be strictly ordered");
        }
        assert_eq!(rows.first().map(|r| r.kind), Some(FieldKind::E));
        assert_eq!(rows.last().map(|r| r.kind), Some(FieldKind::E));
    }

    #[test]
    fn lags_increase_by_one_per_level() {
        let rows = diamond_rows(DiamondWidth::new(6).unwrap(), 0, 0);
        for r in &rows {
            let level = r.time; // n0 = 0
            match r.kind {
                FieldKind::E => assert_eq!(r.lag as i64, level),
                FieldKind::H => assert_eq!(r.lag as i64, level - 1),
            }
        }
    }

    #[test]
    fn in_tile_dependencies_are_satisfied_row_by_row() {
        // Within a tile, every read that the canonical diamond expects to
        // find *in-tile* must come from an earlier row. We verify the
        // containment rules: an H row's in-tile-satisfiable interval given
        // the E row below, and vice versa, always cover at least the
        // contracting rows entirely.
        for dw in [2usize, 4, 6, 8, 12] {
            let d = DiamondWidth::new(dw).unwrap();
            let rows = diamond_rows(d, 0, 0);
            let r = d.half() as i64;
            for w in rows.windows(2) {
                let (below, above) = (&w[0], &w[1]);
                // Contracting-phase rows (time >= R) must be fully
                // satisfiable from the row below: H row [c,d] needs E below
                // over [c-1, d]; E row [a,b] needs H below over [a, b+1].
                match above.kind {
                    // H contracts for levels m > R.
                    FieldKind::H if above.time > r => {
                        assert!(
                            above.y_lo > below.y_lo && above.y_hi <= below.y_hi,
                            "dw={dw}: contracting H row {above:?} not satisfied by {below:?}"
                        );
                    }
                    // E contracts for levels m >= R.
                    FieldKind::E if above.time >= r => {
                        assert!(
                            above.y_lo >= below.y_lo && above.y_hi < below.y_hi,
                            "dw={dw}: contracting E row {above:?} not satisfied by {below:?}"
                        );
                    }
                    _ => {}
                }
            }
        }
    }
}
