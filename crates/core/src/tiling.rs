//! Tile plan: enumeration of all clipped diamond tiles for a given
//! (Ny, Nt, Dw), plus the inter-tile dependency graph.
//!
//! Tiles tessellate the (y, time) plane: row `k` holds diamonds with time
//! base `n0 = k*R` and bases `Y ≡ (k mod 2)*R (mod Dw)`. Each tile is
//! clipped to the domain strip `y ∈ [0, Ny)`, `time ∈ [1, Nt]`; empty tiles
//! are dropped. The only dependencies are the two parents
//! `D_{k-1}(Y ± R)` — same-row diamonds are independent, and
//! write-after-read hazards coincide with the parent edges (see DESIGN.md
//! Sec. 3.2). Both facts are enforced by `validate` below and by the
//! bitwise executor oracle.

use crate::diamond::{diamond_rows, DiamondRow, DiamondWidth};
use em_field::FieldKind;
use std::collections::HashMap;

/// A diamond row clipped to the domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClippedRow {
    pub kind: FieldKind,
    /// Time step computed, `1..=nt`.
    pub time: usize,
    /// Inclusive clipped y interval within `[0, ny)`.
    pub y0: usize,
    pub y1: usize,
    /// Canonical wavefront lag (kept from the unclipped diamond so z
    /// windows stay mutually consistent under clipping).
    pub lag: usize,
}

impl ClippedRow {
    pub fn y_range(&self) -> std::ops::Range<usize> {
        self.y0..self.y1 + 1
    }
}

/// One scheduled diamond tile.
#[derive(Clone, Debug)]
pub struct Tile {
    /// Diamond row (time-block) index.
    pub k: i64,
    /// Canonical base Y (may be negative for edge tiles).
    pub base: i64,
    /// Clipped rows, bottom-up.
    pub rows: Vec<ClippedRow>,
}

impl Tile {
    /// Lattice-site updates in this (clipped) tile, counted as E-phase
    /// cell updates (each full LUP = one H + one E cell update; a clipped
    /// tile may hold unequal numbers, so we report half-updates too).
    pub fn half_updates(&self) -> usize {
        self.rows.iter().map(|r| r.y1 - r.y0 + 1).sum()
    }

    pub fn max_lag(&self) -> usize {
        self.rows.iter().map(|r| r.lag).max().unwrap_or(0)
    }
}

/// The complete tile schedule for a grid's y/time extent.
#[derive(Clone, Debug)]
pub struct TilePlan {
    pub dw: DiamondWidth,
    pub ny: usize,
    pub nt: usize,
    pub tiles: Vec<Tile>,
    /// `dependents[i]` = tiles unlocked by completing tile `i`.
    pub dependents: Vec<Vec<usize>>,
    /// `parents[i]` = number of tiles that must complete before tile `i`.
    pub parents: Vec<usize>,
}

impl TilePlan {
    /// Build the plan for `ny` grid lines and `nt` time steps.
    pub fn build(dw: DiamondWidth, ny: usize, nt: usize) -> TilePlan {
        assert!(ny > 0 && nt > 0, "plan needs a non-empty domain");
        let w = dw.get() as i64;
        let r = dw.half() as i64;

        let mut tiles = Vec::new();
        let mut index: HashMap<(i64, i64), usize> = HashMap::new();

        // k range: rows overlapping time in [1, nt].
        // Row k spans times [k*R, k*R + Dw - 1].
        let k_min = {
            // k*R + Dw - 1 >= 1  =>  k >= (2 - Dw)/R
            let num = 2 - w;
            num.div_euclid(r) + i64::from(num.rem_euclid(r) != 0)
        };
        let k_max = nt as i64 / r; // k*R <= nt

        for k in k_min..=k_max {
            let n0 = k * r;
            let parity = k.rem_euclid(2);
            // Bases Y = parity*R + j*Dw with canonical extent
            // [Y - R + 1, Y + R] intersecting [0, ny).
            let y_first = -r; // smallest base with Y + R >= 0
            let y_last = ny as i64 + r - 2; // largest with Y - R + 1 <= ny-1
            let start = {
                // smallest Y >= y_first with Y ≡ parity*R (mod Dw)
                let rem = (y_first - parity * r).rem_euclid(w);
                if rem == 0 {
                    y_first
                } else {
                    y_first + (w - rem)
                }
            };
            let mut base = start;
            while base <= y_last {
                let rows: Vec<ClippedRow> = diamond_rows(dw, base, n0)
                    .into_iter()
                    .filter_map(|row| clip_row(&row, ny, nt))
                    .collect();
                if !rows.is_empty() {
                    index.insert((k, base), tiles.len());
                    tiles.push(Tile { k, base, rows });
                }
                base += w;
            }
        }

        // Dependency edges: child D_k(Y) <- parents D_{k-1}(Y - R), D_{k-1}(Y + R).
        let mut dependents = vec![Vec::new(); tiles.len()];
        let mut parents = vec![0usize; tiles.len()];
        for (child_idx, tile) in tiles.iter().enumerate() {
            for pb in [tile.base - r, tile.base + r] {
                if let Some(&p) = index.get(&(tile.k - 1, pb)) {
                    dependents[p].push(child_idx);
                    parents[child_idx] += 1;
                }
            }
        }

        TilePlan {
            dw,
            ny,
            nt,
            tiles,
            dependents,
            parents,
        }
    }

    /// Tiles with no parents (the initial ready set), in enumeration order.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.tiles.len())
            .filter(|&i| self.parents[i] == 0)
            .collect()
    }

    /// Total half-cell updates across all tiles. For a full plan this is
    /// `2 * ny * nt` minus nothing — every (y, t) appears once per field.
    pub fn total_half_updates(&self) -> usize {
        self.tiles.iter().map(|t| t.half_updates()).sum()
    }

    /// Validate tessellation and schedulability (used by tests and the
    /// auto-tuner's debug mode):
    ///
    /// - processing tiles in dependency order with *exact-level* read
    ///   checks must succeed for the y-projection of the stencil, and
    /// - every (y, t) cell of both fields must be updated exactly once.
    ///
    /// Returns the number of tiles processed.
    pub fn validate(&self) -> Result<usize, String> {
        self.validate_with_order(|ready| ready.first().copied())
    }

    /// Validation with a custom scheduling policy choosing among ready
    /// tiles, to probe order-sensitivity (property tests drive this with
    /// random picks).
    pub fn validate_with_order(
        &self,
        mut pick: impl FnMut(&[usize]) -> Option<usize>,
    ) -> Result<usize, String> {
        let ny = self.ny;
        // Completed time level per y line, per field. Level 0 = initial.
        let mut e_level = vec![0usize; ny];
        let mut h_level = vec![0usize; ny];
        let mut remaining_parents = self.parents.clone();
        let mut ready: Vec<usize> = self.roots();
        let mut done = vec![false; self.tiles.len()];
        let mut processed = 0;

        while let Some(t) = pick(&ready) {
            let pos = ready
                .iter()
                .position(|&x| x == t)
                .ok_or("pick outside ready set")?;
            ready.remove(pos);
            let tile = &self.tiles[t];
            for row in &tile.rows {
                for y in row.y_range() {
                    match row.kind {
                        FieldKind::H => {
                            // H^t(y) reads E^{t-1}(y), E^{t-1}(y-1), H^{t-1}(y).
                            if h_level[y] != row.time - 1 {
                                return Err(format!(
                                    "tile k={} Y={}: H row t={} y={} but h_level={}",
                                    tile.k, tile.base, row.time, y, h_level[y]
                                ));
                            }
                            for ry in [y as i64, y as i64 - 1] {
                                if ry >= 0
                                    && (ry as usize) < ny
                                    && e_level[ry as usize] != row.time - 1
                                {
                                    return Err(format!(
                                        "tile k={} Y={}: H row t={} reads E at y={} level {} (want {})",
                                        tile.k, tile.base, row.time, ry,
                                        e_level[ry as usize], row.time - 1
                                    ));
                                }
                            }
                            h_level[y] = row.time;
                        }
                        FieldKind::E => {
                            // E^t(y) reads H^t(y), H^t(y+1), E^{t-1}(y).
                            if e_level[y] != row.time - 1 {
                                return Err(format!(
                                    "tile k={} Y={}: E row t={} y={} but e_level={}",
                                    tile.k, tile.base, row.time, y, e_level[y]
                                ));
                            }
                            for ry in [y as i64, y as i64 + 1] {
                                if ry >= 0 && (ry as usize) < ny && h_level[ry as usize] != row.time
                                {
                                    return Err(format!(
                                        "tile k={} Y={}: E row t={} reads H at y={} level {} (want {})",
                                        tile.k, tile.base, row.time, ry,
                                        h_level[ry as usize], row.time
                                    ));
                                }
                            }
                            e_level[y] = row.time;
                        }
                    }
                }
            }
            done[t] = true;
            processed += 1;
            for &d in &self.dependents[t] {
                remaining_parents[d] -= 1;
                if remaining_parents[d] == 0 {
                    ready.push(d);
                }
            }
        }

        if processed != self.tiles.len() {
            return Err(format!(
                "only {processed}/{} tiles schedulable",
                self.tiles.len()
            ));
        }
        for y in 0..ny {
            if e_level[y] != self.nt || h_level[y] != self.nt {
                return Err(format!(
                    "incomplete coverage at y={y}: e_level={} h_level={} (want {})",
                    e_level[y], h_level[y], self.nt
                ));
            }
        }
        Ok(processed)
    }
}

fn clip_row(row: &DiamondRow, ny: usize, nt: usize) -> Option<ClippedRow> {
    if row.time < 1 || row.time > nt as i64 {
        return None;
    }
    let y0 = row.y_lo.max(0);
    let y1 = row.y_hi.min(ny as i64 - 1);
    if y0 > y1 {
        return None;
    }
    Some(ClippedRow {
        kind: row.kind,
        time: row.time as usize,
        y0: y0 as usize,
        y1: y1 as usize,
        lag: row.lag,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dw(n: usize) -> DiamondWidth {
        DiamondWidth::new(n).unwrap()
    }

    #[test]
    fn coverage_is_exact_for_divisible_domain() {
        let plan = TilePlan::build(dw(4), 8, 8);
        // Every (y, t) of each field exactly once: 2 * ny * nt half-updates.
        assert_eq!(plan.total_half_updates(), 2 * 8 * 8);
        plan.validate().expect("plan must validate");
    }

    #[test]
    fn coverage_for_awkward_domains() {
        for (ny, nt, d) in [
            (5, 3, 2),
            (7, 9, 4),
            (9, 2, 8),
            (3, 11, 6),
            (1, 1, 2),
            (2, 5, 16),
        ] {
            let plan = TilePlan::build(dw(d), ny, nt);
            assert_eq!(
                plan.total_half_updates(),
                2 * ny * nt,
                "ny={ny} nt={nt} dw={d}"
            );
            plan.validate()
                .unwrap_or_else(|e| panic!("ny={ny} nt={nt} dw={d}: {e}"));
        }
    }

    #[test]
    fn roots_have_no_parents_and_exist() {
        let plan = TilePlan::build(dw(4), 16, 8);
        let roots = plan.roots();
        assert!(!roots.is_empty());
        for r in roots {
            assert_eq!(plan.parents[r], 0);
        }
    }

    #[test]
    fn dependency_graph_is_acyclic_and_k_monotone() {
        let plan = TilePlan::build(dw(8), 24, 16);
        for (i, deps) in plan.dependents.iter().enumerate() {
            for &d in deps {
                assert_eq!(
                    plan.tiles[d].k,
                    plan.tiles[i].k + 1,
                    "edges go to the next row"
                );
            }
        }
    }

    #[test]
    fn interior_tiles_have_two_parents() {
        let plan = TilePlan::build(dw(4), 32, 16);
        let interior = plan
            .tiles
            .iter()
            .enumerate()
            .filter(|(_, t)| t.base - 2 >= 0 && t.base + 2 < 32 && t.k > 1 && (t.k * 2 + 4) < 16)
            .map(|(i, _)| i);
        let mut checked = 0;
        for i in interior {
            assert_eq!(plan.parents[i], 2, "tile {:?}", plan.tiles[i]);
            checked += 1;
        }
        assert!(checked > 0, "test must cover some interior tiles");
    }

    #[test]
    fn validation_holds_for_lifo_order_too() {
        // Order-independence among ready tiles: pick last instead of first.
        let plan = TilePlan::build(dw(4), 12, 10);
        plan.validate_with_order(|ready| ready.last().copied())
            .expect("LIFO order valid");
    }

    #[test]
    fn validation_detects_missing_dependency() {
        // Sabotage: drop all edges and parents; exact-level checks must
        // then fail for any multi-row-dependency plan.
        let mut plan = TilePlan::build(dw(4), 12, 10);
        for d in plan.dependents.iter_mut() {
            d.clear();
        }
        let n = plan.tiles.len();
        plan.parents = vec![0; n];
        // Process in reverse enumeration order to provoke the violation.
        let err = plan.validate_with_order(|ready| ready.last().copied());
        assert!(err.is_err(), "sabotaged plan must fail validation");
    }

    #[test]
    fn lags_survive_clipping() {
        let plan = TilePlan::build(dw(8), 6, 4);
        for tile in &plan.tiles {
            for row in &tile.rows {
                assert!(row.lag < 8, "lag bounded by Dw");
            }
            assert!(tile.max_lag() <= 7);
        }
    }

    #[test]
    fn tiny_domain_single_line() {
        let plan = TilePlan::build(dw(2), 1, 4);
        assert_eq!(plan.total_half_updates(), 2 * 4);
        plan.validate().expect("1-line domain");
    }
}
