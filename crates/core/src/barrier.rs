//! Sense-reversing spin barrier for intra-thread-group synchronization.
//!
//! A thread group crosses a barrier after every diamond-row update —
//! hundreds of times per tile — so the barrier must be much cheaper than
//! `std::sync::Barrier`'s mutex round trip. This is the classic
//! sense-reversing centralized barrier: one shared atomic counter and a
//! phase flag; arriving threads spin on the phase with exponential-ish
//! backoff. The release/acquire pairing on `phase` publishes all writes
//! performed before the barrier to all threads leaving it.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    phase: AtomicUsize,
}

impl SpinBarrier {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        SpinBarrier {
            n,
            arrived: AtomicUsize::new(0),
            phase: AtomicUsize::new(0),
        }
    }

    pub fn participants(&self) -> usize {
        self.n
    }

    /// Wait for all `n` participants. Returns `true` for exactly one
    /// "leader" per phase (the last arriver).
    pub fn wait(&self) -> bool {
        if self.n == 1 {
            // Single-participant groups (1WD) skip synchronization.
            return true;
        }
        let phase = self.phase.load(Ordering::Relaxed);
        // AcqRel: acquire earlier arrivers' writes, release ours.
        if self.arrived.fetch_add(1, Ordering::AcqRel) == self.n - 1 {
            self.arrived.store(0, Ordering::Relaxed);
            // Release our (and transitively everyone's) writes to spinners.
            self.phase.store(phase.wrapping_add(1), Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            // Acquire pairs with the leader's release above.
            while self.phase.load(Ordering::Acquire) == phase {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    // Oversubscribed hosts (this reproduction machine has
                    // 2 cores) must yield or groups larger than the core
                    // count would livelock.
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_thread_barrier_is_always_leader() {
        let b = SpinBarrier::new(1);
        for _ in 0..5 {
            assert!(b.wait());
        }
    }

    #[test]
    fn no_thread_passes_early() {
        // Each thread increments a counter before the barrier and checks
        // after the barrier that all increments are visible.
        const T: usize = 4;
        const ROUNDS: usize = 200;
        let b = SpinBarrier::new(T);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..T {
                s.spawn(|| {
                    for round in 1..=ROUNDS as u64 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        b.wait();
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(
                            seen >= round * T as u64,
                            "round {round}: saw {seen}, want >= {}",
                            round * T as u64
                        );
                        b.wait(); // second barrier so nobody races ahead
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (T * ROUNDS) as u64);
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        const T: usize = 3;
        const ROUNDS: usize = 100;
        let b = SpinBarrier::new(T);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..T {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS as u64);
    }

    #[test]
    fn publishes_plain_writes() {
        // A non-atomic write before the barrier must be visible after it.
        const T: usize = 2;
        let b = SpinBarrier::new(T);
        let mut slot = [0u64; T];
        let slot_ptr = SendPtr(slot.as_mut_ptr());
        std::thread::scope(|s| {
            for tid in 0..T {
                let b = &b;
                s.spawn(move || {
                    let p = slot_ptr.get();
                    for round in 1..=100u64 {
                        // SAFETY: each thread writes only its own slot; the
                        // barrier orders the cross-thread reads.
                        unsafe { *p.add(tid) = round };
                        b.wait();
                        for other in 0..T {
                            let v = unsafe { *p.add(other) };
                            assert_eq!(v, round, "tid {tid} sees stale slot {other}");
                        }
                        b.wait();
                    }
                });
            }
        });
    }

    #[derive(Clone, Copy)]
    struct SendPtr(*mut u64);
    unsafe impl Send for SendPtr {}
    impl SendPtr {
        fn get(self) -> *mut u64 {
            self.0
        }
    }

    #[test]
    #[should_panic(expected = "barrier needs at least one participant")]
    fn zero_participants_rejected() {
        let _ = SpinBarrier::new(0);
    }
}
