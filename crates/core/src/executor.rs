//! The MWD execution engine: thread groups cooperatively updating diamond
//! tiles from the shared FIFO queue, with multi-dimensional intra-tile
//! parallelization (x chunks x z sub-windows x component subsets).
//!
//! # Safety argument (referenced by every `unsafe` block below)
//!
//! Writes: a (tile, row, position) work item writes component arrays of
//! `row.kind` at cells `(x, y, z)` with `y` in the row's clipped interval
//! and `z` in the row's wavefront window. Within the item, group members
//! write disjoint `(component, z-chunk, x-chunk)` triples by construction
//! of `TgShape::coords` + `split_range`. Across items:
//!
//! - rows within one tile are separated by the group's [`SpinBarrier`]
//!   (release/acquire), and the wavefront windows make successive rows'
//!   read sets land in already-completed cells
//!   (`wavefront::tests::wavefront_satisfies_z_dependencies_exactly`);
//! - concurrently running tiles never overlap in writes, and never write
//!   what another in-flight tile reads (`TilePlan` antichain disjointness,
//!   verified by `tiling` tests and the plan validator);
//! - a completed tile's writes are published to dependent tiles through
//!   the queue's mutex (release on `complete`, acquire on `pop`) and the
//!   group's publish barrier.
//!
//! The end-to-end check is the bitwise oracle: for any configuration and
//! thread count, `run_mwd` must produce exactly the bits of `step_naive`.

use crate::barrier::SpinBarrier;
use crate::cancel::CancelToken;
use crate::config::{split_range, split_range_aligned, MwdConfig};
use crate::queue::ReadyQueue;
use crate::tiling::{Tile, TilePlan};
use crate::wavefront::WavefrontSpec;
use em_field::{Component, State};
use em_kernels::update::update_component_rows_periodic_x;
use em_kernels::{update_component_rows, RawGrid};
use em_obs::{Recorder, ThreadLog};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Boundary handling of the temporally blocked engines. Periodic x uses
/// the loop-peeled kernels (the paper's outlook, Sec. VI): the wrap read
/// stays within the current (y, z) row of the opposite field, so the
/// diamond/wavefront dependency structure is untouched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MwdBoundary {
    /// Homogeneous Dirichlet (zero halo) — the paper's benchmark mode.
    #[default]
    Dirichlet,
    /// Periodic along x, Dirichlet along y/z.
    PeriodicX,
}

/// Counters from one MWD run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Tiles executed (clipped diamonds).
    pub tiles: usize,
    /// Single-field cell updates performed (2 per LUP).
    pub half_updates: usize,
    /// Barrier crossings per thread (row/position synchronizations).
    pub barriers: usize,
    /// Thread count used.
    pub threads: usize,
}

/// Run `nt` time steps of the THIIM update with MWD temporal blocking.
///
/// Builds the tile plan for `(ny, nt, dw)`, then lets
/// `cfg.groups` thread groups of `cfg.tg.size()` threads each drain it.
/// Any valid configuration yields results bit-identical to
/// [`em_kernels::run_naive`].
pub fn run_mwd(state: &mut State, cfg: &MwdConfig, nt: usize) -> Result<RunStats, String> {
    run_mwd_bc(state, cfg, nt, MwdBoundary::Dirichlet)
}

/// [`run_mwd`] with an explicit boundary selection.
pub fn run_mwd_bc(
    state: &mut State,
    cfg: &MwdConfig,
    nt: usize,
    boundary: MwdBoundary,
) -> Result<RunStats, String> {
    run_mwd_bc_rec(state, cfg, nt, boundary, &Recorder::disabled(), 0)
}

/// [`run_mwd_bc`] with span recording: per-thread-group phase spans
/// (`frontier_setup`, `queue_wait`, `diamond_update`) nest under
/// `parent`. With a disabled recorder this is exactly [`run_mwd_bc`] —
/// instrumentation reduces to one branch per call site, so the updates
/// stay bit-identical.
pub fn run_mwd_bc_rec(
    state: &mut State,
    cfg: &MwdConfig,
    nt: usize,
    boundary: MwdBoundary,
    rec: &Recorder,
    parent: u64,
) -> Result<RunStats, String> {
    let dims = state.dims();
    cfg.validate(dims)?;
    if nt == 0 {
        return Ok(RunStats {
            threads: cfg.threads(),
            ..RunStats::default()
        });
    }
    let mut log = rec.thread("mwd_plan", parent);
    let setup = log.start("frontier_setup");
    let plan = TilePlan::build(cfg.diamond()?, dims.ny, nt);
    log.end_kv(
        setup,
        if rec.is_enabled() {
            vec![("tiles", plan.tiles.len().to_string())]
        } else {
            Vec::new()
        },
    );
    drop(log);
    run_mwd_with_plan_bc_rec(state, cfg, &plan, boundary, rec, parent)
}

/// [`run_mwd_bc_rec`] observing a [`CancelToken`]: group leaders check
/// the token before every tile claim; on cancellation the queue is
/// closed, every group winds down at its next claim, and the halt
/// error is returned. The field state is then mid-plan and must be
/// discarded — callers only use this path for work whose results are
/// dropped on cancellation.
pub fn run_mwd_bc_rec_cancel(
    state: &mut State,
    cfg: &MwdConfig,
    nt: usize,
    boundary: MwdBoundary,
    rec: &Recorder,
    parent: u64,
    cancel: &CancelToken,
) -> Result<RunStats, String> {
    let dims = state.dims();
    cfg.validate(dims)?;
    if nt == 0 {
        return Ok(RunStats {
            threads: cfg.threads(),
            ..RunStats::default()
        });
    }
    let plan = TilePlan::build(cfg.diamond()?, dims.ny, nt);
    run_mwd_with_plan_bc_rec_cancel(state, cfg, &plan, boundary, rec, parent, cancel)
}

/// Run a pre-built tile plan (the auto-tuner reuses plans across probes).
pub fn run_mwd_with_plan(
    state: &mut State,
    cfg: &MwdConfig,
    plan: &TilePlan,
) -> Result<RunStats, String> {
    run_mwd_with_plan_bc(state, cfg, plan, MwdBoundary::Dirichlet)
}

/// [`run_mwd_with_plan`] with an explicit boundary selection.
pub fn run_mwd_with_plan_bc(
    state: &mut State,
    cfg: &MwdConfig,
    plan: &TilePlan,
    boundary: MwdBoundary,
) -> Result<RunStats, String> {
    run_mwd_with_plan_bc_rec(state, cfg, plan, boundary, &Recorder::disabled(), 0)
}

/// [`run_mwd_with_plan_bc`] with span recording; see [`run_mwd_bc_rec`].
pub fn run_mwd_with_plan_bc_rec(
    state: &mut State,
    cfg: &MwdConfig,
    plan: &TilePlan,
    boundary: MwdBoundary,
    rec: &Recorder,
    parent: u64,
) -> Result<RunStats, String> {
    run_mwd_with_plan_bc_rec_cancel(
        state,
        cfg,
        plan,
        boundary,
        rec,
        parent,
        &CancelToken::none(),
    )
}

/// [`run_mwd_with_plan_bc_rec`] observing a [`CancelToken`]; see
/// [`run_mwd_bc_rec_cancel`] for the wind-down semantics.
#[allow(clippy::too_many_arguments)]
pub fn run_mwd_with_plan_bc_rec_cancel(
    state: &mut State,
    cfg: &MwdConfig,
    plan: &TilePlan,
    boundary: MwdBoundary,
    rec: &Recorder,
    parent: u64,
    cancel: &CancelToken,
) -> Result<RunStats, String> {
    let dims = state.dims();
    cfg.validate(dims)?;
    if plan.ny != dims.ny {
        return Err(format!(
            "plan ny={} does not match grid ny={}",
            plan.ny, dims.ny
        ));
    }
    if plan.dw.get() != cfg.dw {
        return Err(format!(
            "plan dw={} does not match config dw={}",
            plan.dw.get(),
            cfg.dw
        ));
    }

    let wf = cfg.wavefront()?;
    let queue = ReadyQueue::new(plan);
    let tg_size = cfg.tg.size();
    let groups: Vec<GroupCtx> = (0..cfg.groups).map(|_| GroupCtx::new(tg_size)).collect();
    let half_updates = AtomicUsize::new(0);
    let barriers = AtomicUsize::new(0);
    let tiles_run = AtomicUsize::new(0);

    // Raw view shared by all workers; see the module-level safety argument.
    let g = RawGrid::new(state);

    std::thread::scope(|scope| {
        for (gi, group) in groups.iter().enumerate() {
            for member in 0..tg_size {
                let queue = &queue;
                let half_updates = &half_updates;
                let barriers = &barriers;
                let tiles_run = &tiles_run;
                let rec = rec.clone();
                scope.spawn(move || {
                    let log = if rec.is_enabled() {
                        rec.thread(&format!("mwd g{gi}.{member}"), parent)
                    } else {
                        rec.thread("", parent)
                    };
                    worker(
                        &g,
                        plan,
                        cfg,
                        wf,
                        queue,
                        group,
                        member,
                        boundary,
                        log,
                        half_updates,
                        barriers,
                        tiles_run,
                        cancel,
                    );
                });
            }
        }
    });

    // A closed queue means a leader observed the token and abandoned
    // the plan: the field state is mid-update and must not be used.
    if queue.is_closed() {
        return Err(cancel
            .halt_error()
            .unwrap_or_else(|| "cancelled: executor queue closed".to_string()));
    }

    Ok(RunStats {
        tiles: tiles_run.load(Ordering::Relaxed),
        // Workers accumulate component-cell updates; six per field cell.
        half_updates: half_updates.load(Ordering::Relaxed) / 6,
        barriers: barriers.load(Ordering::Relaxed),
        threads: cfg.threads(),
    })
}

/// Sentinel published to a group's slot when the queue is drained.
const SHUTDOWN: usize = usize::MAX;

struct GroupCtx {
    barrier: SpinBarrier,
    /// Tile index + 1, or SHUTDOWN.
    slot: AtomicUsize,
}

impl GroupCtx {
    fn new(tg_size: usize) -> Self {
        GroupCtx {
            barrier: SpinBarrier::new(tg_size),
            slot: AtomicUsize::new(0),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker(
    g: &RawGrid<'_>,
    plan: &TilePlan,
    cfg: &MwdConfig,
    wf: WavefrontSpec,
    queue: &ReadyQueue<'_>,
    group: &GroupCtx,
    member: usize,
    boundary: MwdBoundary,
    mut log: ThreadLog,
    half_updates: &AtomicUsize,
    barriers: &AtomicUsize,
    tiles_run: &AtomicUsize,
    cancel: &CancelToken,
) {
    let leader = member == 0;
    let (ix, iz, ic) = cfg.tg.coords(member);
    let mut my_barriers = 0usize;
    let mut my_half = 0usize;
    let mut my_tiles = 0usize;

    loop {
        // Queue-wait phase: the leader's FIFO pop plus the publish
        // barrier every member parks on until the tile is announced.
        let wait = log.start("queue_wait");
        if leader {
            // The cancellation checkpoint: one atomic load (plus an
            // Instant read under a deadline) per tile claim. Closing
            // the queue wakes every other leader blocked in `pop`, so
            // all groups wind down without a straggler deadlocking on
            // tiles that will never complete.
            if cancel.is_halted() {
                queue.close();
            }
            let next = queue.pop().map(|t| t + 1).unwrap_or(SHUTDOWN);
            group.slot.store(next, Ordering::Release);
        }
        // Publish barrier: members learn the tile; pairs with the leader's
        // release store and closes the previous tile's epoch.
        group.barrier.wait();
        log.end(wait);
        my_barriers += 1;
        let slot = group.slot.load(Ordering::Acquire);
        if slot == SHUTDOWN {
            break;
        }
        let tile = &plan.tiles[slot - 1];

        let update = log.start("diamond_update");
        my_half += execute_tile(
            g,
            tile,
            cfg,
            wf,
            group,
            boundary,
            &mut my_barriers,
            ix,
            iz,
            ic,
        );
        if update.id() == 0 {
            log.end(update);
        } else {
            log.end_kv(update, vec![("tile", (slot - 1).to_string())]);
        }

        if leader {
            queue.complete(slot - 1);
            my_tiles += 1;
        }
    }
    drop(log);

    half_updates.fetch_add(my_half, Ordering::Relaxed);
    barriers.fetch_add(my_barriers, Ordering::Relaxed);
    tiles_run.fetch_add(my_tiles, Ordering::Relaxed);
}

/// Execute one tile cooperatively. Returns this member's cell updates.
#[allow(clippy::too_many_arguments)]
fn execute_tile(
    g: &RawGrid<'_>,
    tile: &Tile,
    cfg: &MwdConfig,
    wf: WavefrontSpec,
    group: &GroupCtx,
    boundary: MwdBoundary,
    my_barriers: &mut usize,
    ix: usize,
    iz: usize,
    ic: usize,
) -> usize {
    let dims = g.dims();
    let max_lag = tile.max_lag();
    let comps_per = 6 / cfg.tg.c;
    let mut half = 0usize;

    for p in wf.positions(dims.nz, max_lag) {
        for row in &tile.rows {
            let zwin = wf.window(p, row.lag, dims.nz);
            if !zwin.is_empty() {
                let my_z = split_range(zwin, cfg.tg.z, iz);
                // x chunks are lane-aligned so every member's rows hit
                // the SIMD fast path without per-chunk scalar tails (the
                // split stays a partition; results are bit-identical for
                // any chunking because cell updates are independent).
                let my_x = split_range_aligned(0..dims.nx, cfg.tg.x, ix, em_kernels::LANE_WIDTH);
                if !my_z.is_empty() && !my_x.is_empty() {
                    let comps = Component::of(row.kind);
                    for &comp in &comps[ic * comps_per..(ic + 1) * comps_per] {
                        // SAFETY: module-level argument — disjoint
                        // (component, z, x) split within the item; barriers
                        // order items; the plan orders tiles. The periodic
                        // wrap reads the same row of previous-row arrays,
                        // preserving the argument unchanged.
                        unsafe {
                            match boundary {
                                MwdBoundary::Dirichlet => update_component_rows(
                                    g,
                                    comp,
                                    my_z.clone(),
                                    row.y_range(),
                                    my_x.clone(),
                                ),
                                MwdBoundary::PeriodicX => update_component_rows_periodic_x(
                                    g,
                                    comp,
                                    my_z.clone(),
                                    row.y_range(),
                                    my_x.clone(),
                                ),
                            }
                        };
                    }
                    // Count component-cell updates; 6 of them make one
                    // single-field cell update.
                    half += my_z.len() * row.y_range().len() * my_x.len() * comps_per;
                }
            }
            // Row barrier: uniform across members (also for empty windows)
            // so control flow never diverges.
            group.barrier.wait();
            *my_barriers += 1;
        }
    }
    half
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TgShape;
    use em_field::GridDims;
    use em_kernels::run_naive;

    fn filled(dims: GridDims, seed: u64) -> State {
        let mut s = State::zeros(dims);
        s.fields.fill_deterministic(seed);
        s.coeffs.fill_deterministic(seed ^ 0xbeef);
        s
    }

    fn assert_mwd_matches_naive(dims: GridDims, cfg: MwdConfig, nt: usize, seed: u64) {
        let mut reference = filled(dims, seed);
        let mut tiled = reference.clone();
        run_naive(&mut reference, nt);
        let stats = run_mwd(&mut tiled, &cfg, nt).expect("run_mwd");
        if let Some(m) = em_field::norms::first_mismatch(&tiled.fields, &reference.fields) {
            panic!("cfg {cfg:?} nt={nt} dims={dims}: first mismatch {m:?}");
        }
        assert_eq!(stats.threads, cfg.threads());
        // Each field cell updated once per step: ny*nz*nx per field per
        // step => 2*cells*nt single-field updates in total.
        assert_eq!(stats.half_updates, 2 * dims.cells() * nt);
    }

    #[test]
    fn single_thread_single_group_matches_naive() {
        let dims = GridDims::new(6, 8, 7);
        assert_mwd_matches_naive(dims, MwdConfig::one_wd(4, 2, 1), 5, 1);
    }

    #[test]
    fn multiple_single_thread_groups_match_naive() {
        // 1WD with 4 concurrent groups.
        let dims = GridDims::new(5, 12, 6);
        assert_mwd_matches_naive(dims, MwdConfig::one_wd(4, 3, 4), 6, 2);
    }

    #[test]
    fn component_parallel_group_matches_naive() {
        for c in [2usize, 3, 6] {
            let dims = GridDims::new(4, 8, 5);
            let cfg = MwdConfig {
                dw: 4,
                bz: 2,
                tg: TgShape { x: 1, z: 1, c },
                groups: 1,
            };
            assert_mwd_matches_naive(dims, cfg, 4, 3);
        }
    }

    #[test]
    fn x_parallel_group_matches_naive() {
        let dims = GridDims::new(9, 8, 5);
        let cfg = MwdConfig {
            dw: 4,
            bz: 1,
            tg: TgShape { x: 3, z: 1, c: 1 },
            groups: 1,
        };
        assert_mwd_matches_naive(dims, cfg, 4, 4);
    }

    #[test]
    fn z_parallel_group_matches_naive() {
        let dims = GridDims::new(4, 8, 9);
        let cfg = MwdConfig {
            dw: 4,
            bz: 4,
            tg: TgShape { x: 1, z: 2, c: 1 },
            groups: 1,
        };
        assert_mwd_matches_naive(dims, cfg, 4, 5);
    }

    #[test]
    fn full_multidimensional_groups_match_naive() {
        // 2 groups x (2*2*3) = 12 threads on an oversubscribed host —
        // correctness must not depend on core count.
        let dims = GridDims::new(8, 12, 8);
        let cfg = MwdConfig {
            dw: 4,
            bz: 2,
            tg: TgShape { x: 2, z: 2, c: 3 },
            groups: 2,
        };
        assert_mwd_matches_naive(dims, cfg, 5, 6);
    }

    #[test]
    fn large_diamond_and_wavefront_match_naive() {
        let dims = GridDims::new(4, 16, 12);
        let cfg = MwdConfig {
            dw: 8,
            bz: 6,
            tg: TgShape { x: 1, z: 2, c: 2 },
            groups: 2,
        };
        assert_mwd_matches_naive(dims, cfg, 9, 7);
    }

    #[test]
    fn domain_not_divisible_by_diamond_width() {
        let dims = GridDims::new(3, 7, 5);
        let cfg = MwdConfig {
            dw: 4,
            bz: 3,
            tg: TgShape { x: 1, z: 1, c: 2 },
            groups: 3,
        };
        assert_mwd_matches_naive(dims, cfg, 3, 8);
    }

    #[test]
    fn nt_smaller_than_diamond_height() {
        let dims = GridDims::new(4, 10, 4);
        assert_mwd_matches_naive(dims, MwdConfig::one_wd(8, 2, 2), 2, 9);
    }

    #[test]
    fn zero_steps_is_identity() {
        let dims = GridDims::cubic(4);
        let mut s = filled(dims, 10);
        let before = s.fields.clone();
        let stats = run_mwd(&mut s, &MwdConfig::one_wd(4, 1, 2), 0).unwrap();
        assert!(s.fields.bit_eq(&before));
        assert_eq!(stats.half_updates, 0);
    }

    #[test]
    fn invalid_config_is_rejected_without_running() {
        let dims = GridDims::cubic(4);
        let mut s = filled(dims, 11);
        let cfg = MwdConfig {
            dw: 3,
            bz: 1,
            tg: TgShape::SINGLE,
            groups: 1,
        };
        assert!(run_mwd(&mut s, &cfg, 2).is_err());
    }

    #[test]
    fn periodic_x_mwd_matches_halo_exchange_naive() {
        // The outlook feature: MWD with peeled periodic-x kernels must be
        // bit-identical to the halo-exchange naive reference, for any
        // thread-group shape.
        use em_kernels::boundary::{step_naive_with_boundary, Boundary};
        let dims = GridDims::new(7, 9, 8);
        for cfg in [
            MwdConfig::one_wd(4, 2, 2),
            MwdConfig {
                dw: 4,
                bz: 2,
                tg: TgShape { x: 2, z: 2, c: 3 },
                groups: 1,
            },
        ] {
            let mut reference = filled(dims, 321);
            let mut tiled = reference.clone();
            for _ in 0..5 {
                step_naive_with_boundary(&mut reference, Boundary::PeriodicX);
            }
            run_mwd_bc(&mut tiled, &cfg, 5, MwdBoundary::PeriodicX).expect("runs");
            // The halo cells differ (naive writes wrap copies there), so
            // compare interiors via the component-wise norm.
            for comp in em_field::Component::ALL {
                let a = reference.fields.comp(comp);
                let b = tiled.fields.comp(comp);
                for ((x, y, z), va) in a.iter_interior() {
                    let vb = b.get(x as isize, y as isize, z as isize);
                    assert!(
                        va.re.to_bits() == vb.re.to_bits() && va.im.to_bits() == vb.im.to_bits(),
                        "cfg {cfg:?} {comp} ({x},{y},{z}): {va:?} vs {vb:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn periodic_x_differs_from_dirichlet() {
        // Sanity: the boundary selection actually changes the physics.
        let dims = GridDims::new(5, 6, 6);
        let mut a = filled(dims, 11);
        let mut b = a.clone();
        let cfg = MwdConfig::one_wd(4, 1, 1);
        run_mwd_bc(&mut a, &cfg, 3, MwdBoundary::Dirichlet).unwrap();
        run_mwd_bc(&mut b, &cfg, 3, MwdBoundary::PeriodicX).unwrap();
        assert!(!a.fields.bit_eq(&b.fields));
    }

    #[test]
    fn pre_cancelled_token_halts_without_hanging() {
        // Multiple groups: every leader must wind down even though the
        // first one to observe the token closes the queue.
        let dims = GridDims::new(4, 16, 8);
        let mut s = filled(dims, 21);
        let cfg = MwdConfig {
            dw: 4,
            bz: 2,
            tg: TgShape { x: 1, z: 1, c: 2 },
            groups: 3,
        };
        let token = CancelToken::none();
        token.cancel();
        let err = run_mwd_bc_rec_cancel(
            &mut s,
            &cfg,
            6,
            MwdBoundary::Dirichlet,
            &Recorder::disabled(),
            0,
            &token,
        )
        .unwrap_err();
        assert!(err.starts_with(crate::cancel::CANCELLED_PREFIX), "{err}");
    }

    #[test]
    fn expired_deadline_reports_timeout() {
        let dims = GridDims::new(4, 8, 6);
        let mut s = filled(dims, 22);
        let cfg = MwdConfig::one_wd(4, 2, 2);
        let token = CancelToken::with_deadline(std::time::Duration::from_millis(0));
        let err = run_mwd_bc_rec_cancel(
            &mut s,
            &cfg,
            4,
            MwdBoundary::Dirichlet,
            &Recorder::disabled(),
            0,
            &token,
        )
        .unwrap_err();
        assert!(err.starts_with(crate::cancel::TIMEOUT_PREFIX), "{err}");
    }

    #[test]
    fn active_token_is_bit_identical_to_the_plain_path() {
        let dims = GridDims::new(5, 9, 7);
        let cfg = MwdConfig::one_wd(4, 2, 2);
        let mut plain = filled(dims, 23);
        let mut cancellable = plain.clone();
        run_mwd(&mut plain, &cfg, 5).unwrap();
        let stats = run_mwd_bc_rec_cancel(
            &mut cancellable,
            &cfg,
            5,
            MwdBoundary::Dirichlet,
            &Recorder::disabled(),
            0,
            &CancelToken::none(),
        )
        .unwrap();
        assert!(plain.fields.bit_eq(&cancellable.fields));
        assert_eq!(stats.half_updates, 2 * dims.cells() * 5);
    }

    #[test]
    fn stats_count_tiles_and_barriers() {
        let dims = GridDims::new(4, 8, 4);
        let mut s = filled(dims, 12);
        let cfg = MwdConfig {
            dw: 4,
            bz: 2,
            tg: TgShape { x: 1, z: 1, c: 2 },
            groups: 1,
        };
        let stats = run_mwd(&mut s, &cfg, 4).unwrap();
        let plan = TilePlan::build(crate::diamond::DiamondWidth::new(4).unwrap(), 8, 4);
        assert_eq!(stats.tiles, plan.tiles.len());
        assert!(stats.barriers > 0);
    }
}
