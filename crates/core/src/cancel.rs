//! Cooperative cancellation: a stop flag plus an optional deadline.
//!
//! A [`CancelToken`] travels with one unit of work — a served job, a
//! batch, an executor run — and is polled at natural checkpoints (the
//! solver checks once per period, the MWD executor once per tile
//! claim). Cancellation is always *cooperative*: nothing is killed,
//! the work observes the token and returns a halt error whose prefix
//! ([`CANCELLED_PREFIX`] / [`TIMEOUT_PREFIX`]) tells the layers above
//! which terminal state the job landed in.
//!
//! An explicit `cancel()` always wins over an elapsed deadline: a user
//! asking for a job to stop should see `cancelled`, not `timeout`,
//! even when both are true by the time anyone looks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Error-string prefix carried by outcomes halted by an explicit
/// cancellation (stop flag, `POST /jobs/:id/cancel`, SIGTERM drain).
pub const CANCELLED_PREFIX: &str = "cancelled:";

/// Error-string prefix carried by outcomes halted by an expired
/// deadline.
pub const TIMEOUT_PREFIX: &str = "timeout:";

/// Why a token is no longer active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelState {
    /// Keep working.
    Active,
    /// The stop flag was set.
    Cancelled,
    /// The deadline elapsed (and the stop flag is not set).
    Expired,
}

/// A cheaply clonable cancellation handle: all clones share one stop
/// flag and carry the same deadline.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    stop: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires on its own (it can still be
    /// [`cancel`](Self::cancel)led).
    pub fn none() -> CancelToken {
        CancelToken::default()
    }

    /// A token that expires `after` from now.
    pub fn with_deadline(after: Duration) -> CancelToken {
        CancelToken {
            stop: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + after),
        }
    }

    /// A token around an existing shared stop flag (e.g. the process
    /// SIGTERM flag), with an optional absolute deadline.
    pub fn with_flag(stop: Arc<AtomicBool>, deadline: Option<Instant>) -> CancelToken {
        CancelToken { stop, deadline }
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Set the shared stop flag; every clone observes it.
    pub fn cancel(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Current state; an explicit cancel wins over an elapsed deadline.
    pub fn state(&self) -> CancelState {
        if self.stop.load(Ordering::SeqCst) {
            return CancelState::Cancelled;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => CancelState::Expired,
            _ => CancelState::Active,
        }
    }

    /// Whether work should halt (either cause).
    pub fn is_halted(&self) -> bool {
        self.state() != CancelState::Active
    }

    /// `None` while active; the prefixed halt error otherwise.
    pub fn halt_error(&self) -> Option<String> {
        match self.state() {
            CancelState::Active => None,
            CancelState::Cancelled => Some(format!("{CANCELLED_PREFIX} stop requested")),
            CancelState::Expired => Some(format!("{TIMEOUT_PREFIX} deadline expired")),
        }
    }
}

/// Whether an outcome error string marks an explicit cancellation.
pub fn is_cancelled_error(e: &str) -> bool {
    e.starts_with(CANCELLED_PREFIX)
}

/// Whether an outcome error string marks a deadline expiry.
pub fn is_timeout_error(e: &str) -> bool {
    e.starts_with(TIMEOUT_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_active() {
        let t = CancelToken::none();
        assert_eq!(t.state(), CancelState::Active);
        assert!(!t.is_halted());
        assert_eq!(t.halt_error(), None);
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::none();
        let clone = t.clone();
        clone.cancel();
        assert_eq!(t.state(), CancelState::Cancelled);
        let err = t.halt_error().unwrap();
        assert!(is_cancelled_error(&err), "{err}");
        assert!(!is_timeout_error(&err));
    }

    #[test]
    fn elapsed_deadline_expires() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert_eq!(t.state(), CancelState::Expired);
        let err = t.halt_error().unwrap();
        assert!(is_timeout_error(&err), "{err}");
    }

    #[test]
    fn future_deadline_stays_active() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(t.state(), CancelState::Active);
    }

    #[test]
    fn explicit_cancel_wins_over_expiry() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        t.cancel();
        assert_eq!(t.state(), CancelState::Cancelled);
    }

    #[test]
    fn external_flag_is_observed() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = CancelToken::with_flag(flag.clone(), None);
        assert!(!t.is_halted());
        flag.store(true, Ordering::SeqCst);
        assert_eq!(t.state(), CancelState::Cancelled);
    }
}
