//! Wavefront traversal along z inside a diamond tile (paper Fig. 4).
//!
//! The z dependencies mirror the y structure: H components read E at z and
//! z-1 (Hyx, Hxy), E components read H at z and z+1 (Eyx, Exy). Executing
//! the diamond rows bottom-up per wavefront position, with the z window of
//! time level `l` lagging one cell per level — `[P-l+1, P-l+1+BZ)` for H
//! and `[P-l, P-l+BZ)` for E — satisfies every read from already-covered
//! cells while keeping `BZ + Dw - 1 = Ww` z cells in flight, the paper's
//! wavefront width `Ww = Dw + BZ - 1` from Eq. 11.

use std::ops::Range;

/// Wavefront width parameter `BZ` (the z-block size; `BZ = 1` is the
/// narrowest wavefront).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WavefrontSpec {
    pub bz: usize,
}

impl WavefrontSpec {
    pub fn new(bz: usize) -> Result<Self, String> {
        if bz == 0 {
            return Err("wavefront block BZ must be >= 1".into());
        }
        Ok(WavefrontSpec { bz })
    }

    /// The paper's wavefront tile width `Ww = Dw + BZ - 1`.
    pub fn wavefront_width(&self, dw: usize) -> usize {
        dw + self.bz - 1
    }

    /// Clipped z window of a row with wavefront `lag` at position `p`.
    #[inline]
    pub fn window(&self, p: usize, lag: usize, nz: usize) -> Range<usize> {
        let lo = p as i64 - lag as i64;
        let hi = lo + self.bz as i64;
        let lo = lo.clamp(0, nz as i64) as usize;
        let hi = hi.clamp(0, nz as i64) as usize;
        lo..hi
    }

    /// Wavefront positions covering `nz` cells for rows with lags up to
    /// `max_lag`: `0, BZ, 2*BZ, ...` while any row still has work.
    pub fn positions(&self, nz: usize, max_lag: usize) -> impl Iterator<Item = usize> + '_ {
        let bz = self.bz;
        (0..)
            .map(move |i| i * bz)
            .take_while(move |&p| p < nz + max_lag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diamond::{diamond_rows, DiamondWidth};
    use em_field::FieldKind;

    #[test]
    fn ww_matches_eq11() {
        // Fig. 4 example: Dw = 4, BZ = 4 => Ww = 7.
        assert_eq!(WavefrontSpec::new(4).unwrap().wavefront_width(4), 7);
        assert_eq!(WavefrontSpec::new(1).unwrap().wavefront_width(8), 8);
        assert_eq!(WavefrontSpec::new(9).unwrap().wavefront_width(4), 12);
    }

    #[test]
    fn windows_tile_z_exactly_per_row() {
        // For each lag, the union of windows over all positions covers
        // [0, nz) exactly once.
        let wf = WavefrontSpec::new(3).unwrap();
        let nz = 14;
        for lag in 0..8 {
            let mut covered = vec![0usize; nz];
            for p in wf.positions(nz, 7) {
                for z in wf.window(p, lag, nz) {
                    covered[z] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "lag={lag}: {covered:?}");
        }
    }

    #[test]
    fn rejects_zero_bz() {
        assert!(WavefrontSpec::new(0).is_err());
    }

    /// Full (y, z, level) dependency simulation of a single canonical
    /// diamond traversal: every *in-tile* read must find its operand at
    /// exactly the right time level, including the z-neighbor reads.
    /// Cross-tile reads (values provided by parent tiles) are validated
    /// separately by `TilePlan::validate` and the executor's bitwise
    /// oracle; here they are modeled as "first in-tile write level - 1".
    #[test]
    fn wavefront_satisfies_z_dependencies_exactly() {
        for (dw_v, bz) in [(2usize, 1usize), (4, 1), (4, 3), (6, 2), (8, 5), (4, 16)] {
            let dw = DiamondWidth::new(dw_v).unwrap();
            let wf = WavefrontSpec::new(bz).unwrap();
            let nz = 11;
            let rows = diamond_rows(dw, 10, 1); // n0 = 1, base 10
            let y_min = rows.iter().map(|r| r.y_lo).min().unwrap() - 1;
            let y_max = rows.iter().map(|r| r.y_hi).max().unwrap() + 1;
            let ys = (y_max - y_min + 1) as usize;

            // First level at which the tile writes (kind, y); None if never.
            let first_write = |kind: FieldKind, y: i64| -> Option<i64> {
                rows.iter()
                    .filter(|r| r.kind == kind && y >= r.y_lo && y <= r.y_hi)
                    .map(|r| r.time)
                    .min()
            };

            let init = |kind: FieldKind| -> Vec<Vec<i64>> {
                (0..ys)
                    .map(|yi| {
                        let y = y_min + yi as i64;
                        let lvl = first_write(kind, y).map(|t| t - 1).unwrap_or(i64::MIN);
                        vec![lvl; nz]
                    })
                    .collect()
            };
            let mut e_level = init(FieldKind::E);
            let mut h_level = init(FieldKind::H);

            let max_lag = rows.iter().map(|r| r.lag).max().unwrap();
            for p in wf.positions(nz, max_lag) {
                for row in &rows {
                    for z in wf.window(p, row.lag, nz) {
                        for y in row.y_lo..=row.y_hi {
                            let yi = (y - y_min) as usize;
                            let (levels, other, other_kind, zoff, yoff) = match row.kind {
                                FieldKind::H => {
                                    (&mut h_level, &e_level, FieldKind::E, -1i64, -1i64)
                                }
                                FieldKind::E => (&mut e_level, &h_level, FieldKind::H, 1, 1),
                            };
                            // Self read at t-1.
                            assert_eq!(
                                levels[yi][z],
                                row.time - 1,
                                "dw={dw_v} bz={bz} {:?} self at t={} y={y} z={z}",
                                row.kind,
                                row.time
                            );
                            // Opposite-field reads: H@t reads E@t-1, E@t reads H@t.
                            let want = match row.kind {
                                FieldKind::H => row.time - 1,
                                FieldKind::E => row.time,
                            };
                            let reads: [(i64, i64); 3] =
                                [(y, z as i64), (y + yoff, z as i64), (y, z as i64 + zoff)];
                            for (ry, rz) in reads {
                                if rz < 0 || rz >= nz as i64 {
                                    continue;
                                }
                                // Skip reads the parents provide: the value
                                // needed predates this tile's first write.
                                match first_write(other_kind, ry) {
                                    Some(fw) if want >= fw => {
                                        let v = other[(ry - y_min) as usize][rz as usize];
                                        assert_eq!(
                                            v, want,
                                            "dw={dw_v} bz={bz} {:?} t={} y={y} z={z} reads ({ry},{rz})",
                                            row.kind, row.time
                                        );
                                    }
                                    _ => {}
                                }
                            }
                            levels[yi][z] = row.time;
                        }
                    }
                }
            }
            // Tile completed: all its rows covered all z.
            for row in &rows {
                for y in row.y_lo..=row.y_hi {
                    let yi = (y - y_min) as usize;
                    for z in 0..nz {
                        let lvl = match row.kind {
                            FieldKind::E => e_level[yi][z],
                            FieldKind::H => h_level[yi][z],
                        };
                        assert!(lvl >= row.time, "row {row:?} incomplete at z={z}");
                    }
                }
            }
        }
    }
}
