//! Dynamic FIFO tile scheduler (paper Sec. II-A).
//!
//! "Diamond tiles are dynamically scheduled to the available TGs. A FIFO
//! queue keeps track of the available diamond tiles for updating. TGs pop
//! tiles from this queue to update them. When a TG completes a tile
//! update, it pushes to the queue its dependent diamond tile, if that has
//! no other dependencies. The queue update is performed in an OpenMP
//! critical region."
//!
//! Here the critical region is a `std::sync` mutex + condvar; dependency
//! counters decrement under the same lock, which also provides the
//! release/acquire edge that publishes a completed tile's field writes to
//! whichever thread group picks up a dependent tile. Lock poisoning is
//! ignored (`unwrap_or_else(into_inner)`): a panic on one worker must not
//! deadlock the remaining groups, and the queue state is a plain counter
//! set that stays consistent under any prefix of completed operations.

use crate::tiling::TilePlan;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

struct Inner {
    ready: VecDeque<usize>,
    remaining_parents: Vec<usize>,
    /// Tiles not yet completed (ready, running, or blocked).
    outstanding: usize,
    /// Abandoned early (cooperative cancellation): every `pop` returns
    /// `None` regardless of outstanding work.
    closed: bool,
}

/// Shared ready-queue over a [`TilePlan`].
pub struct ReadyQueue<'p> {
    plan: &'p TilePlan,
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl<'p> ReadyQueue<'p> {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn new(plan: &'p TilePlan) -> Self {
        let ready: VecDeque<usize> = plan.roots().into();
        ReadyQueue {
            plan,
            inner: Mutex::new(Inner {
                ready,
                remaining_parents: plan.parents.clone(),
                outstanding: plan.tiles.len(),
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Pop the next ready tile, blocking while the queue is empty but work
    /// is still outstanding. Returns `None` once every tile has completed.
    pub fn pop(&self) -> Option<usize> {
        let mut g = self.lock();
        loop {
            if g.closed {
                return None;
            }
            if let Some(t) = g.ready.pop_front() {
                return Some(t);
            }
            if g.outstanding == 0 {
                return None;
            }
            g = self.cond.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Abandon the remaining tiles: every `pop` (including those
    /// currently blocked on the condvar) returns `None` from now on.
    /// Used by cooperative cancellation — the field state is left
    /// mid-plan and must be discarded by the caller.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cond.notify_all();
    }

    /// Whether [`Self::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Non-blocking pop, for single-threaded draining.
    pub fn try_pop(&self) -> Option<usize> {
        self.lock().ready.pop_front()
    }

    /// Mark `tile` complete, enqueueing any dependents whose last parent
    /// this was. Wakes waiting groups.
    pub fn complete(&self, tile: usize) {
        let mut g = self.lock();
        for &d in &self.plan.dependents[tile] {
            g.remaining_parents[d] -= 1;
            if g.remaining_parents[d] == 0 {
                g.ready.push_back(d);
            }
        }
        g.outstanding -= 1;
        drop(g);
        // Wake all: several groups may be waiting and multiple tiles may
        // have become ready; completion is infrequent (paper: "the lock
        // overhead is negligible").
        self.cond.notify_all();
    }

    /// Tiles not yet completed.
    pub fn outstanding(&self) -> usize {
        self.lock().outstanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diamond::DiamondWidth;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn plan(ny: usize, nt: usize, dw: usize) -> TilePlan {
        TilePlan::build(DiamondWidth::new(dw).unwrap(), ny, nt)
    }

    #[test]
    fn sequential_drain_processes_every_tile_once() {
        let p = plan(12, 8, 4);
        let q = ReadyQueue::new(&p);
        let mut seen = vec![false; p.tiles.len()];
        while let Some(t) = q.try_pop() {
            assert!(!seen[t], "tile {t} popped twice");
            seen[t] = true;
            q.complete(t);
        }
        assert!(seen.iter().all(|&s| s), "all tiles processed");
        assert_eq!(q.outstanding(), 0);
        assert_eq!(q.pop(), None, "pop after drain returns None");
    }

    #[test]
    fn fifo_order_respects_dependencies() {
        let p = plan(16, 10, 4);
        let q = ReadyQueue::new(&p);
        let mut completed = vec![false; p.tiles.len()];
        // Reconstruct parent lists for the check.
        let mut parent_of = vec![Vec::new(); p.tiles.len()];
        for (i, deps) in p.dependents.iter().enumerate() {
            for &d in deps {
                parent_of[d].push(i);
            }
        }
        while let Some(t) = q.try_pop() {
            for &par in &parent_of[t] {
                assert!(completed[par], "tile {t} popped before parent {par}");
            }
            completed[t] = true;
            q.complete(t);
        }
        assert!(completed.iter().all(|&c| c));
    }

    #[test]
    fn concurrent_groups_drain_exactly_once() {
        let p = plan(32, 12, 4);
        let q = ReadyQueue::new(&p);
        let counts: Vec<AtomicUsize> = (0..p.tiles.len()).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(t) = q.pop() {
                        counts[t].fetch_add(1, Ordering::Relaxed);
                        // Simulate work to vary interleavings.
                        std::hint::black_box((0..50).sum::<u64>());
                        q.complete(t);
                    }
                });
            }
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "tile {i}");
        }
        assert_eq!(q.outstanding(), 0);
    }

    #[test]
    fn close_wakes_blocked_poppers_and_ends_the_drain() {
        let p = plan(16, 10, 4);
        let q = ReadyQueue::new(&p);
        // Consume the roots but complete nothing, so other poppers must
        // block; then close and require everyone to come back `None`.
        let roots: Vec<usize> = std::iter::from_fn(|| q.try_pop()).collect();
        assert!(!roots.is_empty());
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| assert_eq!(q.pop(), None, "closed queue pops None"));
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.close();
        });
        assert!(q.is_closed());
        assert!(q.outstanding() > 0, "closing abandons outstanding tiles");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_dependency_completes() {
        // A two-row chain: the consumer blocks until the producer finishes.
        let p = plan(4, 6, 4);
        let q = ReadyQueue::new(&p);
        let drained = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    while let Some(t) = q.pop() {
                        q.complete(t);
                        drained.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(drained.load(Ordering::Relaxed), p.tiles.len());
    }
}
