//! # mwd-core — multicore wavefront diamond temporal blocking
//!
//! The paper's primary contribution: diamond tiling along y with E/H field
//! splitting (Fig. 2), wavefront traversal along z (Fig. 4), dynamic FIFO
//! tile scheduling, and thread groups with multi-dimensional intra-tile
//! parallelization (x chunks, z sub-windows, and 1/2/3/6-way component
//! parallelism — Fig. 3).
//!
//! The module structure follows the system's layers:
//!
//! - [`cancel`]: cooperative cancellation tokens (stop flag + deadline)
//!   observed by the executor and every layer above it;
//! - [`diamond`]: canonical diamond geometry in (y, time) space;
//! - [`tiling`]: tessellation of a whole run into clipped tiles plus the
//!   two-parent dependency DAG, with an exact-level schedule validator;
//! - [`wavefront`]: per-row z windows realizing `Ww = Dw + BZ - 1`;
//! - [`queue`]: the FIFO ready queue ("OpenMP critical" in the paper);
//! - [`barrier`]: sense-reversing spin barrier for intra-group sync;
//! - [`config`]: `Dw`/`BZ`/thread-group-shape parameters;
//! - [`budget`]: thread-budget sharing between concurrent solver jobs
//!   and the thread groups inside each job;
//! - [`executor`]: the parallel engine, bit-identical to the naive sweep.

pub mod barrier;
pub mod budget;
pub mod cancel;
pub mod config;
pub mod diamond;
pub mod executor;
pub mod queue;
pub mod tiling;
pub mod wavefront;

pub use barrier::SpinBarrier;
pub use budget::{BudgetSplit, ThreadBudget};
pub use cancel::{CancelState, CancelToken};
pub use config::{split_range, split_range_aligned, MwdConfig, TgShape};
pub use diamond::{diamond_rows, DiamondRow, DiamondWidth};
pub use executor::{
    run_mwd, run_mwd_bc, run_mwd_bc_rec, run_mwd_bc_rec_cancel, run_mwd_with_plan,
    run_mwd_with_plan_bc, run_mwd_with_plan_bc_rec, run_mwd_with_plan_bc_rec_cancel, MwdBoundary,
    RunStats,
};
pub use queue::ReadyQueue;
pub use tiling::{ClippedRow, Tile, TilePlan};
pub use wavefront::WavefrontSpec;
