//! Tracing contract of the MWD executor.
//!
//! Two properties the observability layer must hold:
//!
//! 1. A traced run emits a *well-formed* span tree — every span closes
//!    after it opens, every non-root parent id resolves to a recorded
//!    span, and a child's interval nests inside its parent's.
//! 2. Instrumentation is free when disabled — a run through the
//!    recorder-aware entry point with a disabled recorder produces
//!    bit-identical fields to a traced run of the same state.

use em_field::{GridDims, State};
use em_obs::Recorder;
use mwd_core::{run_mwd_bc_rec, MwdBoundary, MwdConfig};
use std::collections::HashMap;

fn filled(dims: GridDims, seed: u64) -> State {
    let mut s = State::zeros(dims);
    s.fields.fill_deterministic(seed);
    s.coeffs.fill_deterministic(seed ^ 0xbeef);
    s
}

#[test]
fn traced_run_emits_a_well_formed_span_tree() {
    let dims = GridDims::new(6, 16, 8);
    let mut s = filled(dims, 21);
    let cfg = MwdConfig::one_wd(4, 2, 2);

    let rec = Recorder::enabled();
    let mut log = rec.thread("driver", 0);
    let root = log.start("run");
    let root_id = root.id();
    log.end(root);
    // The driver span above closes before the solve starts; the solve's
    // spans claim it as an *ambient* parent, so containment is only
    // required between spans that genuinely nest (same thread, stack
    // order). Record a second, still-open ancestor around the real run.
    let outer = log.start("solve");
    let outer_id = outer.id();
    run_mwd_bc_rec(&mut s, &cfg, 3, MwdBoundary::Dirichlet, &rec, outer_id).unwrap();
    log.end(outer);
    drop(log);

    let trace = rec.drain();
    assert_eq!(trace.dropped, 0, "nothing overflowed the ring buffers");
    assert!(root_id > 0, "span ids are nonzero");

    let by_id: HashMap<u64, _> = trace.spans.iter().map(|sp| (sp.id, sp)).collect();
    assert_eq!(by_id.len(), trace.spans.len(), "span ids are unique");
    let tids: Vec<u64> = trace.threads.iter().map(|(tid, _)| *tid).collect();

    for sp in &trace.spans {
        assert!(
            sp.t_start_us <= sp.t_end_us,
            "span {} ({}) closes after it opens",
            sp.id,
            sp.name
        );
        assert!(
            tids.contains(&sp.thread),
            "span {} names a registered thread",
            sp.id
        );
        if sp.parent != 0 {
            let parent = by_id
                .get(&sp.parent)
                .unwrap_or_else(|| panic!("span {} has unknown parent {}", sp.id, sp.parent));
            assert!(
                parent.t_start_us <= sp.t_start_us && sp.t_end_us <= parent.t_end_us,
                "span {} ({}) [{:.1}, {:.1}]us escapes parent {} ({}) [{:.1}, {:.1}]us",
                sp.id,
                sp.name,
                sp.t_start_us,
                sp.t_end_us,
                parent.id,
                parent.name,
                parent.t_start_us,
                parent.t_end_us
            );
        }
    }

    // The executor's three phases all showed up, parented under `solve`.
    for phase in ["frontier_setup", "queue_wait", "diamond_update"] {
        let spans: Vec<_> = trace.spans.iter().filter(|sp| sp.name == phase).collect();
        assert!(!spans.is_empty(), "phase `{phase}` was recorded");
        assert!(
            spans.iter().all(|sp| sp.parent == outer_id),
            "phase `{phase}` nests under the caller's span"
        );
    }
}

#[test]
fn disabled_recorder_is_bit_identical_to_a_traced_run() {
    let dims = GridDims::new(5, 12, 10);
    let cfg = MwdConfig::one_wd(4, 2, 2);

    let mut quiet = filled(dims, 33);
    let mut traced = quiet.clone();

    let off = Recorder::disabled();
    run_mwd_bc_rec(&mut quiet, &cfg, 4, MwdBoundary::Dirichlet, &off, 0).unwrap();

    let on = Recorder::enabled();
    run_mwd_bc_rec(&mut traced, &cfg, 4, MwdBoundary::Dirichlet, &on, 0).unwrap();

    assert!(
        quiet.fields.bit_eq(&traced.fields),
        "tracing must not perturb the numerics"
    );
    assert!(
        !on.drain().spans.is_empty(),
        "the traced run actually recorded spans"
    );
}
