//! The event-loop connection plane's keep-alive semantics: pipelining,
//! `Connection: close`, half-closed and torn requests, slowloris
//! budgets — plus accounting and byte-identity parity against the
//! blocking plane.

use em_service::{ConnModel, Server, ServerConfig};
use mwd_core::ThreadBudget;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

const TINY_SPEC: &str = r#"name = "keepalive-tiny"
description = "keepalive workload"

[grid]
nx = 4
ny = 4
nz = 24

[physics]
lambda_cells = 8.0
lambda_nm = 550.0

[scene]
materials = ["vacuum"]
background = "vacuum"

[engine]
kind = "naive-periodic-xy"

[convergence]
tol = 1e-2
max_periods = 1
"#;

struct Daemon {
    addr: String,
    thread: Option<std::thread::JoinHandle<Result<em_service::server::ServiceSummary, String>>>,
}

impl Daemon {
    fn start(cfg: ServerConfig) -> Daemon {
        let server = Server::bind(&cfg).unwrap();
        let addr = format!("{}", server.local_addr().unwrap());
        let thread = std::thread::spawn(move || server.run());
        Daemon {
            addr,
            thread: Some(thread),
        }
    }

    fn stop(mut self) -> em_service::server::ServiceSummary {
        let (status, _, _) = one_shot(&self.addr, "POST", "/shutdown", None);
        assert_eq!(status, 200);
        self.thread.take().unwrap().join().unwrap().unwrap()
    }
}

fn tiny_config(model: ConnModel) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scheduler: em_service::SchedulerConfig {
            workers: 1,
            queue_depth: 8,
            budget: ThreadBudget::new(1),
            ..Default::default()
        },
        conn_model: model,
        quiet: true,
        ..Default::default()
    }
}

/// One `Connection: close` exchange, returning the raw header block too
/// (for byte-level comparisons between planes).
fn one_shot(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> (u16, String, String) {
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut payload = head.into_bytes();
    payload.extend_from_slice(body);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(&payload).unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let (header, payload) = text.split_once("\r\n\r\n").unwrap_or(("", ""));
    (status, header.to_string(), payload.to_string())
}

fn stat(addr: &str, key: &str) -> i64 {
    let (status, _, body) = one_shot(addr, "GET", "/stats", None);
    assert_eq!(status, 200);
    em_json::parse(&body)
        .unwrap()
        .get(key)
        .unwrap()
        .as_i64()
        .unwrap()
}

/// A persistent client that frames responses by `Content-Length`
/// instead of reading to EOF.
struct KeepAliveClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl KeepAliveClient {
    fn connect(addr: &str) -> KeepAliveClient {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        KeepAliveClient {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, payload: &[u8]) {
        self.writer.write_all(payload).unwrap();
    }

    fn get(path: &str) -> Vec<u8> {
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").into_bytes()
    }

    /// Read one framed response: (status, connection header, body).
    fn read_response(&mut self) -> Result<(u16, String, String), String> {
        let mut line = String::new();
        if self
            .reader
            .read_line(&mut line)
            .map_err(|e| e.to_string())?
            == 0
        {
            return Err("connection closed".to_string());
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| format!("malformed status line `{}`", line.trim()))?;
        let mut content_length = 0usize;
        let mut connection = String::new();
        loop {
            let mut h = String::new();
            if self.reader.read_line(&mut h).map_err(|e| e.to_string())? == 0 {
                return Err("connection closed mid-headers".to_string());
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                if k.eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().unwrap();
                } else if k.eq_ignore_ascii_case("connection") {
                    connection = v.trim().to_string();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| e.to_string())?;
        Ok((
            status,
            connection,
            String::from_utf8_lossy(&body).into_owned(),
        ))
    }

    /// The server closed without sending another byte.
    fn assert_clean_eof(mut self) {
        let mut rest = Vec::new();
        self.reader.read_to_end(&mut rest).unwrap();
        assert!(
            rest.is_empty(),
            "expected EOF, got {} stray bytes",
            rest.len()
        );
    }
}

#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    let daemon = Daemon::start(tiny_config(ConnModel::default()));
    let mut client = KeepAliveClient::connect(&daemon.addr);

    // Three different requests in one write; responses must come back
    // in request order, each marked keep-alive.
    let mut burst = KeepAliveClient::get("/healthz");
    burst.extend_from_slice(&KeepAliveClient::get("/stats"));
    burst.extend_from_slice(&KeepAliveClient::get("/metrics"));
    client.send(&burst);

    let (status, connection, body) = client.read_response().unwrap();
    assert_eq!(status, 200);
    assert_eq!(connection, "keep-alive");
    assert_eq!(
        em_json::parse(&body)
            .unwrap()
            .get("status")
            .unwrap()
            .as_str(),
        Some("ok"),
        "first response is /healthz"
    );
    let (status, _, body) = client.read_response().unwrap();
    assert_eq!(status, 200);
    assert!(
        em_json::parse(&body).unwrap().get("requests").is_some(),
        "second response is /stats"
    );
    let (status, _, body) = client.read_response().unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains("# TYPE em_http_requests_total counter"),
        "third response is /metrics"
    );

    // All three counted as requests on one connection.
    assert_eq!(stat(&daemon.addr, "requests"), 4);
    daemon.stop();
}

#[test]
fn deep_pipeline_of_tiny_requests_is_served_in_order() {
    // A hostile-but-legal client: thousands of pipelined requests in
    // one burst. The serve cycle must walk the backlog iteratively —
    // a recursive parse→route→write cycle would grow the stack by one
    // frame set per buffered request and abort the whole loop thread.
    // (The 3-request pipeline test above never exercises depth.)
    const N: usize = 2000;
    let daemon = Daemon::start(tiny_config(ConnModel::default()));
    let mut client = KeepAliveClient::connect(&daemon.addr);

    let mut burst = Vec::with_capacity(N * 32);
    for _ in 0..N {
        burst.extend_from_slice(&KeepAliveClient::get("/healthz"));
    }
    client.send(&burst);
    for i in 0..N {
        let (status, connection, _) = client
            .read_response()
            .unwrap_or_else(|e| panic!("response {i}/{N}: {e}"));
        assert_eq!(status, 200, "response {i}");
        assert_eq!(connection, "keep-alive", "response {i}");
    }

    // The connection is still healthy after the burst.
    client.send(&KeepAliveClient::get("/healthz"));
    assert_eq!(client.read_response().unwrap().0, 200);

    assert_eq!(stat(&daemon.addr, "requests"), N as i64 + 2);
    daemon.stop();
}

#[test]
fn max_size_chunked_request_with_heavy_framing_completes() {
    // A legal chunked request at the body limit whose *wire* form
    // carries maximal framing overhead: thousands of 1-byte chunks
    // (each costing a size line plus a CRLF the header budget never
    // sees) plus a near-16K header block. The event loop's read-buffer
    // cap must admit the whole wire form — a cap sized only
    // `header + body + small slack` pauses the read with no response
    // in flight to resume it, and the request stalls into a 408
    // instead of being answered.
    let mut cfg = tiny_config(ConnModel::EventLoop);
    cfg.io_timeout_secs = 3;
    let daemon = Daemon::start(cfg);

    let limits = em_service::Limits::default();
    let singles = 8000usize;
    let big = limits.max_body_bytes - singles;
    // Pad the header block to just under its limit.
    let head_base =
        "POST /jobs HTTP/1.1\r\nHost: t\r\nConnection: close\r\nTransfer-Encoding: chunked\r\nX-Pad: ";
    let head_target = limits.max_header_bytes - 84;
    let pad = "p".repeat(head_target - head_base.len() - 4);
    let mut wire = format!("{head_base}{pad}\r\n\r\n").into_bytes();
    for _ in 0..singles {
        wire.extend_from_slice(b"1\nx\r\n");
    }
    wire.extend_from_slice(format!("{big:x}\n").as_bytes());
    wire.resize(wire.len() + big, b'y');
    wire.extend_from_slice(b"\r\n0\n\n");
    assert!(
        wire.len() > limits.max_header_bytes + limits.max_body_bytes + 16 * 1024,
        "the wire form ({} bytes) must exceed the old header+body+16K cap",
        wire.len()
    );

    let t0 = Instant::now();
    let mut stream = TcpStream::connect(&daemon.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(&wire).unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    let status: u16 = text.split(' ').nth(1).unwrap().parse().unwrap();
    // The body is junk TOML, so submission is rejected — but the
    // request *frames* and is answered 400, well inside the budget,
    // instead of stalling at the buffer cap until the 408 sweep.
    assert_eq!(status, 400, "{}", text.lines().next().unwrap_or(""));
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "the request must be answered promptly, took {:?}",
        t0.elapsed()
    );
    assert_eq!(stat(&daemon.addr, "conn_timeouts"), 0);
    daemon.stop();
}

#[test]
fn connection_close_and_http10_end_the_connection() {
    let daemon = Daemon::start(tiny_config(ConnModel::default()));

    // HTTP/1.1 + `Connection: close`: answered, then EOF.
    let mut client = KeepAliveClient::connect(&daemon.addr);
    client.send(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    let (status, connection, _) = client.read_response().unwrap();
    assert_eq!(status, 200);
    assert_eq!(connection, "close");
    client.assert_clean_eof();

    // HTTP/1.0 without a Connection header defaults to close.
    let mut client = KeepAliveClient::connect(&daemon.addr);
    client.send(b"GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n");
    let (status, connection, _) = client.read_response().unwrap();
    assert_eq!(status, 200);
    assert_eq!(connection, "close");
    client.assert_clean_eof();

    // HTTP/1.1 without a Connection header defaults to keep-alive: a
    // second request on the same socket is served.
    let mut client = KeepAliveClient::connect(&daemon.addr);
    client.send(&KeepAliveClient::get("/healthz"));
    assert_eq!(client.read_response().unwrap().0, 200);
    client.send(&KeepAliveClient::get("/healthz"));
    assert_eq!(client.read_response().unwrap().0, 200);

    daemon.stop();
}

#[test]
fn half_close_mid_request_answers_400_on_both_planes() {
    for model in [ConnModel::EventLoop, ConnModel::Blocking] {
        let daemon = Daemon::start(tiny_config(model));

        let mut client = KeepAliveClient::connect(&daemon.addr);
        // A torn request head: the client gives up mid-line and closes
        // its write side. The request can never frame; both planes owe
        // the (possibly still-listening) read side a 400.
        client.send(b"GET /healthz HTTP/1.1\r\nHost: t");
        client.writer.shutdown(Shutdown::Write).unwrap();
        let (status, connection, body) = client.read_response().unwrap();
        assert_eq!(status, 400, "{model:?}");
        assert_eq!(connection, "close", "{model:?}");
        assert!(body.contains("connection closed mid-request"), "{body}");
        client.assert_clean_eof();

        // Identical accounting on both planes: the torn request counts
        // as a received request and a bad_request rejection, never a
        // timeout.
        assert_eq!(stat(&daemon.addr, "requests"), 2, "{model:?}");
        assert_eq!(stat(&daemon.addr, "rejected_bad"), 1, "{model:?}");
        assert_eq!(stat(&daemon.addr, "conn_timeouts"), 0, "{model:?}");
        daemon.stop();
    }
}

#[test]
fn torn_request_on_a_reused_connection_closes_with_400() {
    let daemon = Daemon::start(tiny_config(ConnModel::default()));
    let mut client = KeepAliveClient::connect(&daemon.addr);

    // A healthy exchange first: the connection is established keep-alive.
    client.send(&KeepAliveClient::get("/healthz"));
    assert_eq!(client.read_response().unwrap().0, 200);

    // The follow-up request tears mid-head. The completed exchange must
    // stay settled; only the torn one is rejected.
    client.send(b"POST /jobs HTTP/1.1\r\nContent-Le");
    client.writer.shutdown(Shutdown::Write).unwrap();
    let (status, _, body) = client.read_response().unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("connection closed mid-request"), "{body}");
    client.assert_clean_eof();

    assert_eq!(stat(&daemon.addr, "requests"), 3);
    assert_eq!(stat(&daemon.addr, "rejected_bad"), 1);
    daemon.stop();
}

#[test]
fn slowloris_trickle_is_408_within_the_budget_on_both_planes() {
    for model in [ConnModel::EventLoop, ConnModel::Blocking] {
        let mut cfg = tiny_config(model);
        cfg.io_timeout_secs = 1;
        let daemon = Daemon::start(cfg);

        // Trickle a byte of a valid-looking request head every 300 ms —
        // each arrival would reset a naive per-read socket timeout, but
        // the wall-clock budget keeps counting.
        let t0 = Instant::now();
        let mut client = KeepAliveClient::connect(&daemon.addr);
        let head = b"GET /healthz HTTP/1.1\r\n";
        let mut answered = None;
        for byte in head.iter().cycle() {
            if client.writer.write_all(&[*byte]).is_err() {
                break; // the server already gave up on us
            }
            std::thread::sleep(Duration::from_millis(300));
            if t0.elapsed() > Duration::from_secs(8) {
                break;
            }
            if let Ok(resp) = client.read_response() {
                answered = Some(resp);
                break;
            }
        }
        let (status, _, body) = answered
            .unwrap_or_else(|| panic!("{model:?}: trickling client was never answered 408"));
        assert_eq!(status, 408, "{model:?}: {body}");
        assert!(
            t0.elapsed() < Duration::from_secs(6),
            "{model:?}: 408 must land near the 1s budget, took {:?}",
            t0.elapsed()
        );

        // Counted as a connection timeout on both planes.
        assert_eq!(stat(&daemon.addr, "conn_timeouts"), 1, "{model:?}");
        assert_eq!(stat(&daemon.addr, "rejected_bad"), 0, "{model:?}");
        daemon.stop();
    }
}

#[test]
fn both_planes_serve_bit_identical_bytes() {
    // The two-daemon oracle extended to old-loop vs new-loop: the same
    // spec solved behind each connection plane must produce artifacts —
    // and whole `Connection: close` responses, headers included — that
    // agree byte for byte.
    let serve = |model: ConnModel| {
        let daemon = Daemon::start(tiny_config(model));
        let addr = daemon.addr.clone();
        let (status, _, body) = one_shot(&addr, "POST", "/jobs", Some(TINY_SPEC.as_bytes()));
        assert_eq!(status, 202, "{body}");
        let sub = em_json::parse(&body).unwrap();
        let job = sub.get("job").unwrap().as_str().unwrap().to_string();
        let key = sub.get("key").unwrap().as_str().unwrap().to_string();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            assert!(Instant::now() < deadline, "{job} never finished");
            let (status, _, body) = one_shot(&addr, "GET", &format!("/jobs/{job}"), None);
            assert_eq!(status, 200);
            let state = em_json::parse(&body).unwrap();
            match state.get("state").unwrap().as_str().unwrap() {
                "done" => break,
                "failed" | "cancelled" => panic!("{job} ended badly: {body}"),
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        let (status, header, artifact) = one_shot(&addr, "GET", &format!("/results/{key}"), None);
        assert_eq!(status, 200);
        // A deliberately malformed request too: error responses render
        // through the same path on both planes.
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut error_bytes = Vec::new();
        stream.read_to_end(&mut error_bytes).unwrap();
        daemon.stop();
        (key, format!("{header}\r\n\r\n{artifact}"), error_bytes)
    };
    let (key_a, response_a, error_a) = serve(ConnModel::EventLoop);
    let (key_b, response_b, error_b) = serve(ConnModel::Blocking);
    assert_eq!(key_a, key_b, "content keys agree across planes");
    assert_eq!(
        response_a, response_b,
        "whole artifact response is byte-identical across planes"
    );
    assert_eq!(
        error_a, error_b,
        "error responses are byte-identical across planes"
    );
}
