//! The `loadgen` binary against an in-process daemon: mixed workload,
//! dedupe accounting, report merging, and the `--min-dedupe-hits` gate.

use em_service::{Server, ServerConfig};
use mwd_core::ThreadBudget;
use std::path::Path;
use std::process::Command;

const TINY_SPEC: &str = r#"name = "loadgen-tiny"
description = "loadgen workload"

[grid]
nx = 4
ny = 4
nz = 24

[physics]
lambda_cells = 8.0
lambda_nm = 550.0

[scene]
materials = ["vacuum"]
background = "vacuum"

[engine]
kind = "naive-periodic-xy"

[convergence]
tol = 1e-2
max_periods = 1
"#;

fn loadgen(dir: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("loadgen runs")
}

#[test]
fn loadgen_reports_dedupe_and_latency_into_the_bench_file() {
    let dir = std::env::temp_dir().join(format!("loadgen_cli_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("tiny.toml"), TINY_SPEC).unwrap();
    // Pre-existing bench data must survive the merge.
    std::fs::create_dir_all(dir.join("results")).unwrap();
    std::fs::write(
        dir.join("results/BENCH_results.json"),
        "{\n  \"git_rev\": \"test\"\n}\n",
    )
    .unwrap();

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scheduler: em_service::SchedulerConfig {
            workers: 1,
            queue_depth: 32,
            budget: ThreadBudget::new(1),
            ..Default::default()
        },
        quiet: true,
        ..Default::default()
    })
    .unwrap();
    let addr = format!("{}", server.local_addr().unwrap());
    let handle = std::thread::spawn(move || server.run());

    let out = loadgen(
        &dir,
        &[
            "--addr",
            &addr,
            "--requests",
            "14",
            "--concurrency",
            "3",
            "--dup-ratio",
            "0.5",
            "--spec",
            "tiny.toml",
            "--min-dedupe-hits",
            "4",
            "--quiet",
            "--shutdown",
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "loadgen failed:\n{stdout}\n{stderr}");
    assert!(stdout.contains("dedupe hits: 7/14"), "{stdout}");
    assert!(stdout.contains("result mismatches: 0"), "{stdout}");

    // --shutdown drained the daemon cleanly.
    let summary = handle.join().unwrap().unwrap();
    assert_eq!(summary.completed, 7, "7 unique variants solved");
    assert_eq!(summary.failed, 0);

    // The report merged into BENCH_results.json without clobbering it.
    let doc =
        em_json::parse(&std::fs::read_to_string(dir.join("results/BENCH_results.json")).unwrap())
            .unwrap();
    assert_eq!(doc.get("git_rev").unwrap().as_str(), Some("test"));
    let lg = doc.get("loadgen").expect("loadgen section");
    assert_eq!(lg.get("requests").unwrap().as_i64(), Some(14));
    assert_eq!(lg.get("dedupe_hits").unwrap().as_i64(), Some(7));
    assert_eq!(lg.get("failures").unwrap().as_i64(), Some(0));
    assert_eq!(lg.get("result_mismatches").unwrap().as_i64(), Some(0));
    let rate = lg.get("dedupe_hit_rate").unwrap().as_f64().unwrap();
    assert!(
        rate >= 0.4,
        "acceptance: >=40% served from the store, got {rate}"
    );
    for p in ["p50", "p90", "p99"] {
        assert!(
            lg.get("total_ms")
                .unwrap()
                .get(p)
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loadgen_gate_fails_when_hits_are_impossible() {
    let dir = std::env::temp_dir().join(format!("loadgen_gate_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("tiny.toml"), TINY_SPEC).unwrap();

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scheduler: em_service::SchedulerConfig {
            workers: 1,
            budget: ThreadBudget::new(1),
            ..Default::default()
        },
        quiet: true,
        ..Default::default()
    })
    .unwrap();
    let addr = format!("{}", server.local_addr().unwrap());
    let handle = std::thread::spawn(move || server.run());

    // All-unique workload (dup-ratio 0) cannot produce dedupe hits, so
    // the gate must fail the run.
    let out = loadgen(
        &dir,
        &[
            "--addr",
            &addr,
            "--requests",
            "3",
            "--concurrency",
            "1",
            "--dup-ratio",
            "0",
            "--spec",
            "tiny.toml",
            "--min-dedupe-hits",
            "1",
            "--quiet",
            "--shutdown",
        ],
    );
    assert_eq!(out.status.code(), Some(1), "gate must fail");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("fewer than the required"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
