//! End-to-end tests of the HTTP API against an in-process daemon with
//! the real solve runner: submit → poll → result, dedupe with
//! bit-identical artifacts, transport-level 400/413, and shutdown.

use em_json::Json;
use em_service::{Limits, Server, ServerConfig};
use mwd_core::ThreadBudget;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A sub-second deterministic workload (the cli_integration one).
const TINY_SPEC: &str = r#"name = "api-tiny"
description = "service api workload"

[grid]
nx = 4
ny = 4
nz = 24

[physics]
lambda_cells = 8.0
lambda_nm = 550.0

[pml]
thickness = 4

[source]
z_plane = 18

[scene]
materials = ["vacuum"]
background = "vacuum"

[engine]
kind = "naive-periodic-xy"

[convergence]
tol = 1e-2
max_periods = 2
"#;

struct Daemon {
    addr: String,
    thread: Option<std::thread::JoinHandle<Result<em_service::server::ServiceSummary, String>>>,
}

impl Daemon {
    fn start(cfg: ServerConfig) -> Daemon {
        let server = Server::bind(&cfg).unwrap();
        let addr = format!("{}", server.local_addr().unwrap());
        let thread = std::thread::spawn(move || server.run());
        Daemon {
            addr,
            thread: Some(thread),
        }
    }

    fn stop(mut self) -> em_service::server::ServiceSummary {
        let (status, _) = http(&self.addr, "POST", "/shutdown", None);
        assert_eq!(status, 200);
        self.thread.take().unwrap().join().unwrap().unwrap()
    }
}

fn tiny_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scheduler: em_service::SchedulerConfig {
            workers: 1,
            queue_depth: 8,
            budget: ThreadBudget::new(1),
            ..Default::default()
        },
        quiet: true,
        ..Default::default()
    }
}

/// Raw single-request HTTP client.
fn raw(addr: &str, payload: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(payload).unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> (u16, String) {
    let body = body.unwrap_or(&[]);
    // `Connection: close` because this client reads to EOF; keep-alive
    // exchanges live in the dedicated keepalive test suite.
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut payload = head.into_bytes();
    payload.extend_from_slice(body);
    raw(addr, &payload)
}

fn poll_done(addr: &str, job: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline, "{job} never finished");
        let (status, body) = http(addr, "GET", &format!("/jobs/{job}"), None);
        assert_eq!(status, 200, "{body}");
        let doc = em_json::parse(&body).unwrap();
        match doc.get("state").unwrap().as_str().unwrap() {
            "done" => return doc,
            "failed" | "cancelled" => panic!("{job} ended badly: {body}"),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn submit_poll_result_dedupe_and_bit_identical_artifacts() {
    let daemon = Daemon::start(tiny_config());
    let addr = &daemon.addr;

    let (status, body) = http(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    let health = em_json::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("budget").unwrap().as_i64(), Some(1));

    // Submit (TOML body) and follow the job to its artifact.
    let (status, body) = http(addr, "POST", "/jobs", Some(TINY_SPEC.as_bytes()));
    assert_eq!(status, 202, "{body}");
    let sub = em_json::parse(&body).unwrap();
    assert_eq!(sub.get("status").unwrap().as_str(), Some("queued"));
    let job = sub.get("job").unwrap().as_str().unwrap().to_string();
    let key = sub.get("key").unwrap().as_str().unwrap().to_string();
    let done = poll_done(addr, &job);
    assert_eq!(
        done.get("result").unwrap().as_str().unwrap(),
        format!("/results/{key}")
    );
    let (status, artifact) = http(addr, "GET", &format!("/jobs/{job}/result"), None);
    assert_eq!(status, 200);
    let doc = em_json::parse(&artifact).unwrap();
    assert_eq!(doc.get("key").unwrap().as_str(), Some(key.as_str()));
    let outcomes = doc.get("outcomes").unwrap().as_arr().unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(
        outcomes[0].get("scenario").unwrap().as_str(),
        Some("api-tiny")
    );
    assert_eq!(outcomes[0].get("error"), Some(&Json::Null));
    assert!(
        outcomes[0].get("wall_secs").is_none(),
        "canonical artifacts carry no wall clock"
    );

    // An identical POST is served from the store without a new job.
    let (status, body) = http(addr, "POST", "/jobs", Some(TINY_SPEC.as_bytes()));
    assert_eq!(status, 200, "{body}");
    let dup = em_json::parse(&body).unwrap();
    assert_eq!(dup.get("status").unwrap().as_str(), Some("cached"));
    assert_eq!(dup.get("key").unwrap().as_str(), Some(key.as_str()));
    let (status, cached) = http(addr, "GET", &format!("/results/{key}"), None);
    assert_eq!(status, 200);
    assert_eq!(cached, artifact, "cached bytes == first solve's bytes");

    // The compact JSON form with the same parameters dedupes too (the
    // key is content-addressed, not body-addressed).
    let compact = Json::obj(vec![("toml", Json::str(TINY_SPEC))]).compact();
    let (status, body) = http(addr, "POST", "/jobs", Some(compact.as_bytes()));
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        em_json::parse(&body).unwrap().get("key").unwrap().as_str(),
        Some(key.as_str())
    );

    // Stats reflect one solve and two dedupe hits.
    let (status, body) = http(addr, "GET", "/stats", None);
    assert_eq!(status, 200);
    let stats = em_json::parse(&body).unwrap();
    assert_eq!(stats.get("submitted").unwrap().as_i64(), Some(1));
    assert_eq!(stats.get("store_hits").unwrap().as_i64(), Some(2));
    assert_eq!(stats.get("completed").unwrap().as_i64(), Some(1));

    let summary = daemon.stop();
    assert_eq!(summary.completed, 1);
    assert_eq!(summary.store_entries, 1);
    assert!(summary.dedupe_rate > 0.5);
}

#[test]
fn a_fresh_daemon_solves_to_the_same_bytes() {
    // The acceptance check behind dedupe: a cached artifact must be
    // bit-identical to a fresh solve. Two daemons with disjoint stores
    // solve the same spec; their artifacts must agree byte-for-byte.
    let solve = |cfg: ServerConfig| {
        let daemon = Daemon::start(cfg);
        let (status, body) = http(&daemon.addr, "POST", "/jobs", Some(TINY_SPEC.as_bytes()));
        assert_eq!(status, 202, "{body}");
        let sub = em_json::parse(&body).unwrap();
        let job = sub.get("job").unwrap().as_str().unwrap().to_string();
        poll_done(&daemon.addr, &job);
        let (status, artifact) = http(&daemon.addr, "GET", &format!("/jobs/{job}/result"), None);
        assert_eq!(status, 200);
        daemon.stop();
        artifact
    };
    let first = solve(tiny_config());
    let second = solve(tiny_config());
    assert_eq!(first, second, "fresh solves are bit-identical");
}

#[test]
fn transport_and_spec_errors_map_to_http_statuses() {
    let mut cfg = tiny_config();
    cfg.limits = Limits {
        max_header_bytes: 1024,
        max_body_bytes: 512,
    };
    let daemon = Daemon::start(cfg);
    let addr = &daemon.addr;

    // Malformed request line.
    let (status, _) = raw(addr, b"NOT-HTTP\r\n\r\n");
    assert_eq!(status, 400);
    // Malformed chunked framing.
    let (status, _) = raw(
        addr,
        b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
    );
    assert_eq!(status, 400);
    // Oversized declared body.
    let (status, body) = http(addr, "POST", "/jobs", Some(&vec![b'x'; 600]));
    assert_eq!(status, 413, "{body}");
    // Chunked body creeping past the limit.
    let mut creep = b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
    for _ in 0..3 {
        creep.extend_from_slice(b"c8\r\n");
        creep.extend_from_slice(&[b'y'; 200]);
        creep.extend_from_slice(b"\r\n");
    }
    creep.extend_from_slice(b"0\r\n\r\n");
    let (status, _) = raw(addr, &creep);
    assert_eq!(status, 413);
    // A well-formed chunked request works end to end.
    let mut chunked =
        b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n".to_vec();
    let body = br#"{"builtin": "no-such-scenario"}"#;
    chunked.extend_from_slice(format!("{:x}\r\n", body.len()).as_bytes());
    chunked.extend_from_slice(body);
    chunked.extend_from_slice(b"\r\n0\r\n\r\n");
    let (status, body) = raw(addr, &chunked);
    assert_eq!(status, 400, "decoded fine, rejected by the catalog");
    assert!(body.contains("unknown builtin"), "{body}");

    // Spec-level rejections.
    let (status, body) = http(addr, "POST", "/jobs", Some(b"name = "));
    assert_eq!(status, 400, "{body}");
    // Routing.
    let (status, _) = http(addr, "GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/jobs/j-999", None);
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/jobs/zzz", None);
    assert_eq!(status, 400);
    let (status, _) = http(addr, "DELETE", "/jobs", None);
    assert_eq!(status, 405);
    let (status, _) = http(addr, "GET", "/results/not-a-key", None);
    assert_eq!(status, 400);
    let (status, _) = http(addr, "GET", &format!("/results/{}", "0".repeat(32)), None);
    assert_eq!(status, 404);

    let summary = daemon.stop();
    assert_eq!(summary.completed, 0);
    assert_eq!(summary.failed, 0);
}

#[test]
fn overloaded_queue_returns_429_over_http() {
    // Deterministic via the injected-runner seam: jobs block on a gate
    // the test controls, so the single worker is provably busy and the
    // depth-1 queue provably full when the over-limit submissions land
    // (real solves finish faster than an HTTP round-trip in release
    // builds, which made a timing-based version of this test flaky).
    let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let runner_gate = gate.clone();
    let mut cfg = tiny_config();
    cfg.scheduler.queue_depth = 1;
    let server = Server::bind_with_runner(
        &cfg,
        Box::new(move |spec, threads, cancel| {
            let (lock, cv) = &*runner_gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            drop(open);
            em_service::scheduler::solve_runner(spec, threads, cancel)
        }),
    )
    .unwrap();
    let addr = format!("{}", server.local_addr().unwrap());
    let daemon = Daemon {
        addr: addr.clone(),
        thread: Some(std::thread::spawn(move || server.run())),
    };

    let body =
        |i: usize| TINY_SPEC.replace("lambda_nm = 550.0", &format!("lambda_nm = {}.0", 550 + i));
    // First job: admitted, then claimed by the only worker (blocked at
    // the gate). Wait until it is provably running.
    let (status, payload) = http(&addr, "POST", "/jobs", Some(body(0).as_bytes()));
    assert_eq!(status, 202, "{payload}");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        assert!(Instant::now() < deadline, "job 0 never started running");
        let (s, b) = http(&addr, "GET", "/healthz", None);
        assert_eq!(s, 200);
        if em_json::parse(&b).unwrap().get("running").unwrap().as_i64() == Some(1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Second job fills the depth-1 queue.
    let (status, payload) = http(&addr, "POST", "/jobs", Some(body(1).as_bytes()));
    assert_eq!(status, 202, "{payload}");
    // Every further distinct spec is turned away with 429.
    for i in 2..5 {
        let (status, payload) = http(&addr, "POST", "/jobs", Some(body(i).as_bytes()));
        assert_eq!(status, 429, "{payload}");
        assert!(payload.contains("capacity"), "{payload}");
    }
    // A duplicate of the *running* spec still coalesces: dedupe does
    // not consume a queue slot, so overload must not reject it.
    let (status, payload) = http(&addr, "POST", "/jobs", Some(body(0).as_bytes()));
    assert_eq!(status, 202, "{payload}");
    assert_eq!(
        em_json::parse(&payload)
            .unwrap()
            .get("status")
            .unwrap()
            .as_str(),
        Some("coalesced")
    );

    // Open the gate; both admitted jobs drain through.
    let (lock, cv) = &*gate;
    *lock.lock().unwrap() = true;
    cv.notify_all();
    let summary = daemon.stop();
    assert_eq!(summary.completed + summary.cancelled, 2);
}

#[test]
fn warm_store_and_tune_cache_survive_a_daemon_restart() {
    let dir = std::env::temp_dir().join(format!("em_service_warm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = tiny_config();
    cfg.store_dir = Some(dir.join("store"));
    cfg.cache_path = Some(dir.join("tune_cache.json"));

    let daemon = Daemon::start(cfg.clone());
    let (status, body) = http(&daemon.addr, "POST", "/jobs", Some(TINY_SPEC.as_bytes()));
    assert_eq!(status, 202, "{body}");
    let sub = em_json::parse(&body).unwrap();
    let job = sub.get("job").unwrap().as_str().unwrap().to_string();
    let key = sub.get("key").unwrap().as_str().unwrap().to_string();
    poll_done(&daemon.addr, &job);
    daemon.stop();
    assert!(dir.join("store").join(format!("{key}.json")).is_file());

    // A brand-new daemon over the same directory serves the result
    // without solving.
    let daemon = Daemon::start(cfg);
    let (status, body) = http(&daemon.addr, "POST", "/jobs", Some(TINY_SPEC.as_bytes()));
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        em_json::parse(&body)
            .unwrap()
            .get("status")
            .unwrap()
            .as_str(),
        Some("cached")
    );
    let summary = daemon.stop();
    assert_eq!(summary.completed, 0, "no solve on the warm path");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stop_flag_hooked_to_shutdown_module_ends_the_run_loop() {
    let server = Server::bind(&tiny_config()).unwrap();
    let flag = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());
    std::thread::sleep(Duration::from_millis(30));
    flag.store(true, Ordering::SeqCst);
    let summary = handle.join().unwrap().unwrap();
    assert_eq!(summary.completed, 0);
}

#[test]
fn generated_specs_dedupe_by_content_hash() {
    // A generated spec dedupes in the store exactly like a hand-written
    // one: submitting the same (family, seed) twice costs one solve,
    // and a different seed gets a different content key.
    use em_scenarios::gen::{generate, Family, GenParams};

    let daemon = Daemon::start(tiny_config());
    let addr = &daemon.addr;
    let params = GenParams::tiny();

    // The admission budget is one thread; override the engine so the
    // job is servable regardless of what the generator drew. The
    // override composes with the spec rather than rewriting its bytes,
    // so the content key still reflects the generated TOML.
    let submit_body = |seed: u64| {
        let spec = generate(Family::Multilayer, seed, &params).unwrap();
        Json::obj(vec![
            ("toml", Json::str(spec.to_toml_string())),
            ("engine", Json::str("naive-periodic-xy")),
        ])
        .compact()
    };

    let body = submit_body(5);
    let (status, first) = http(addr, "POST", "/jobs", Some(body.as_bytes()));
    assert_eq!(status, 202, "{first}");
    let sub = em_json::parse(&first).unwrap();
    assert_eq!(sub.get("status").unwrap().as_str(), Some("queued"));
    let job = sub.get("job").unwrap().as_str().unwrap().to_string();
    let key = sub.get("key").unwrap().as_str().unwrap().to_string();
    poll_done(addr, &job);
    let (status, artifact) = http(addr, "GET", &format!("/results/{key}"), None);
    assert_eq!(status, 200);

    // Same (family, seed) again: served from the store, byte-identical.
    let (status, second) = http(addr, "POST", "/jobs", Some(body.as_bytes()));
    assert_eq!(status, 200, "{second}");
    let dup = em_json::parse(&second).unwrap();
    assert_eq!(dup.get("status").unwrap().as_str(), Some("cached"));
    assert_eq!(dup.get("key").unwrap().as_str(), Some(key.as_str()));
    let (status, cached) = http(addr, "GET", &format!("/results/{key}"), None);
    assert_eq!(status, 200);
    assert_eq!(cached, artifact, "cached bytes == first solve's bytes");

    // A different seed is a different scenario: new key, new solve.
    let other = submit_body(6);
    let (status, third) = http(addr, "POST", "/jobs", Some(other.as_bytes()));
    assert_eq!(status, 202, "{third}");
    let sub2 = em_json::parse(&third).unwrap();
    let job2 = sub2.get("job").unwrap().as_str().unwrap().to_string();
    let key2 = sub2.get("key").unwrap().as_str().unwrap().to_string();
    assert_ne!(key2, key, "distinct seeds must not share a content key");
    poll_done(addr, &job2);

    let (status, body) = http(addr, "GET", "/stats", None);
    assert_eq!(status, 200);
    let stats = em_json::parse(&body).unwrap();
    assert_eq!(stats.get("submitted").unwrap().as_i64(), Some(2));
    assert_eq!(stats.get("store_hits").unwrap().as_i64(), Some(1));
    assert_eq!(stats.get("completed").unwrap().as_i64(), Some(2));

    let summary = daemon.stop();
    assert_eq!(summary.completed, 2);
    assert_eq!(summary.store_entries, 2);
}

/// Parse a Prometheus text exposition into `series -> value`, checking
/// the format as it goes: every comment line is `# HELP` or `# TYPE`
/// (with a known kind), every sample line is `name[{labels}] value`
/// with a numeric value, and every sample belongs to a declared family.
fn parse_exposition(text: &str) -> std::collections::HashMap<String, f64> {
    let mut values = std::collections::HashMap::new();
    let mut families = std::collections::HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE line names a family");
            let kind = it.next().expect("TYPE line carries a kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown metric kind in `{line}`"
            );
            families.insert(name.to_string());
        } else if line.starts_with('#') {
            assert!(line.starts_with("# HELP "), "stray comment `{line}`");
        } else {
            let (series, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("malformed sample `{line}`"));
            let value: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("non-numeric sample `{line}`"));
            assert!(
                values.insert(series.to_string(), value).is_none(),
                "duplicate series `{series}`"
            );
        }
    }
    for series in values.keys() {
        let base = series.split('{').next().unwrap();
        let family = base
            .strip_suffix("_bucket")
            .or_else(|| base.strip_suffix("_sum"))
            .or_else(|| base.strip_suffix("_count"))
            .unwrap_or(base);
        assert!(
            families.contains(family) || families.contains(base),
            "sample `{series}` has no `# TYPE` family"
        );
    }
    values
}

#[test]
fn metrics_exposition_parses_and_agrees_with_stats() {
    let daemon = Daemon::start(tiny_config());
    let addr = &daemon.addr;

    // /healthz keeps its bare-200 contract and now carries the
    // registry-sourced detail fields.
    let (status, body) = http(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    let health = em_json::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert!(health.get("uptime_secs").unwrap().as_f64().unwrap() >= 0.0);
    assert!(!health.get("git_rev").unwrap().as_str().unwrap().is_empty());
    assert!(!health.get("isa").unwrap().as_str().unwrap().is_empty());

    // One solve, one store hit, one served artifact: enough traffic for
    // the exposition and /stats to disagree if the wiring is wrong.
    let (status, body) = http(addr, "POST", "/jobs", Some(TINY_SPEC.as_bytes()));
    assert_eq!(status, 202, "{body}");
    let sub = em_json::parse(&body).unwrap();
    let job = sub.get("job").unwrap().as_str().unwrap().to_string();
    poll_done(addr, &job);
    let (status, _) = http(addr, "GET", &format!("/jobs/{job}/result"), None);
    assert_eq!(status, 200);
    let (status, _) = http(addr, "POST", "/jobs", Some(TINY_SPEC.as_bytes()));
    assert_eq!(status, 200, "duplicate spec is served from the store");

    let (status, body) = http(addr, "GET", "/stats", None);
    assert_eq!(status, 200);
    let stats = em_json::parse(&body).unwrap();
    let stat = |k: &str| stats.get(k).unwrap().as_i64().unwrap() as f64;

    let (status, text) = http(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let m = parse_exposition(&text);

    // Counters agree with the /stats snapshot taken one request
    // earlier. Requests are counted as they parse, so the /metrics
    // exchange itself is included in its own render: exactly one more
    // than the snapshot saw. Requests are serviced in order, so this is
    // deterministic.
    assert_eq!(m["em_http_requests_total"], stat("requests") + 1.0);
    assert_eq!(m["em_jobs_submitted_total"], stat("submitted"));
    assert_eq!(
        m["em_dedupe_hits_total{kind=\"store\"}"],
        stat("store_hits")
    );
    assert_eq!(
        m["em_dedupe_hits_total{kind=\"coalesced\"}"],
        stat("coalesced")
    );
    assert_eq!(
        m["em_jobs_finished_total{outcome=\"completed\"}"],
        stat("completed")
    );
    assert_eq!(
        m["em_jobs_finished_total{outcome=\"failed\"}"],
        stat("failed")
    );
    assert_eq!(
        m["em_admission_rejected_total{reason=\"overload\"}"],
        stat("rejected_overload")
    );
    assert_eq!(m["em_results_served_total"], stat("results_served"));
    assert!(
        stat("results_served") >= 1.0,
        "the artifact fetch was counted after the write"
    );

    // Latency histograms saw this test's traffic, per endpoint.
    assert!(m["em_http_request_seconds_count{endpoint=\"/stats\"}"] >= 1.0);
    assert!(m["em_http_request_seconds_count{endpoint=\"/jobs\"}"] >= 2.0);
    assert!(m["em_http_request_seconds_count{endpoint=\"/healthz\"}"] >= 1.0);

    // Scrape-time gauges are present with sane values.
    assert_eq!(m["em_queue_depth"], 0.0);
    assert_eq!(m["em_jobs_in_flight"], 0.0);
    assert!(m["em_store_entries"] >= 1.0);
    assert!(m["em_uptime_seconds"] > 0.0);
    assert!(m["em_worker_utilization"] >= 0.0);

    daemon.stop();
}
