//! Scheduler invariants under controlled timing: the worker pool never
//! outgrows its [`ThreadBudget`], the queue bounds admission, identical
//! submissions dedupe, and shutdown drains instead of aborting.
//!
//! Jobs run through an injected runner gated on a condvar, so every
//! "while N jobs are running" state is reached deterministically
//! instead of by sleeping.

use em_scenarios::spec::{
    ConvergenceDecl, EngineDecl, GridSpec, PhysicsSpec, ScenarioSpec, SceneDecl,
};
use em_scenarios::JobOutcome;
use em_service::scheduler::{
    CancelError, CancelOutcome, JobState, ResultError, Scheduler, SchedulerConfig, Submission,
    SubmitError,
};
use em_service::{ResultStore, ServiceStats};
use mwd_core::ThreadBudget;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn spec(lambda_nm: f64, engine: EngineDecl) -> ScenarioSpec {
    ScenarioSpec {
        name: "invariant".to_string(),
        description: String::new(),
        grid: GridSpec {
            nx: 4,
            ny: 4,
            nz: 24,
        },
        physics: PhysicsSpec {
            lambda_cells: 8.0,
            lambda_nm,
            cfl: 0.95,
        },
        pml: None,
        source: None,
        scene: SceneDecl::vacuum(),
        engine,
        convergence: ConvergenceDecl {
            tol: 1e-2,
            max_periods: 1,
        },
        sweep: None,
        workers: 1,
        outputs: Default::default(),
    }
}

fn ok_outcome(spec: &ScenarioSpec) -> Vec<JobOutcome> {
    vec![JobOutcome {
        job: 0,
        scenario: spec.name.clone(),
        sweep_index: 0,
        lambda_nm: spec.physics.lambda_nm,
        lambda_cells: spec.physics.lambda_cells,
        dims: format!("{}", spec.dims()),
        spec_hash: spec.content_hash(),
        engine: spec.engine.label(),
        threads: spec.engine.threads(),
        dry_run: false,
        converged: true,
        periods: 1,
        steps: 8,
        rel_change: 1e-3,
        energy: 1.0,
        back_iteration_cells: 0,
        absorption: Vec::new(),
        intensity_profile: None,
        wall_secs: 0.0,
        error: None,
        artifact: None,
        tuned: None,
    }]
}

/// A gate the injected runner blocks on until the test opens it.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

struct Harness {
    scheduler: Arc<Scheduler>,
    stats: Arc<ServiceStats>,
    store: Arc<ResultStore>,
    gate: Arc<Gate>,
}

fn start(cfg: SchedulerConfig) -> Harness {
    let stats = Arc::new(ServiceStats::default());
    let store = Arc::new(ResultStore::in_memory());
    let gate = Arc::new(Gate::default());
    let runner_gate = gate.clone();
    let scheduler = Scheduler::start(
        cfg,
        store.clone(),
        autotune::SharedTuneCache::in_memory(),
        stats.clone(),
        Box::new(move |spec, _threads, cancel| {
            runner_gate.wait();
            // Honor the cancellation contract the way the real solver
            // does at a period boundary: halt with the prefixed error.
            if let Some(e) = cancel.halt_error() {
                return Err(e);
            }
            Ok(ok_outcome(spec))
        }),
    )
    .unwrap();
    Harness {
        scheduler,
        stats,
        store,
        gate,
    }
}

/// Poll until `running` reaches `n` (deterministic outcome, bounded
/// wait).
fn wait_running(s: &Scheduler, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (_, running, _) = s.queue_counts();
        if running == n {
            return;
        }
        assert!(Instant::now() < deadline, "never reached {n} running jobs");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn concurrent_load_never_exceeds_the_thread_budget() {
    // 3 workers x 2 threads inside a budget of 6; every job's engine
    // demands exactly 2 threads.
    let h = start(SchedulerConfig {
        workers: 3,
        threads_per_job: 0,
        queue_depth: 16,
        budget: ThreadBudget::new(6),
        ..Default::default()
    });
    assert_eq!(h.scheduler.threads_per_job, 2);
    let engine = EngineDecl::Spatial {
        by: 2,
        bz: 2,
        threads: 2,
    };
    for i in 0..6 {
        let s = h.scheduler.submit(spec(500.0 + i as f64, engine)).unwrap();
        assert!(matches!(s, Submission::Queued { .. }));
    }
    wait_running(&h.scheduler, 3);
    assert_eq!(
        h.stats.threads_in_use.load(Ordering::SeqCst),
        6,
        "3 running jobs lease 2 threads each"
    );
    h.gate.open();
    assert!(h.scheduler.wait_idle(Duration::from_secs(20)));
    let peak = h.stats.peak_threads_in_use.load(Ordering::SeqCst);
    assert_eq!(peak, 6, "pool saturated the budget exactly once-over");
    assert!(
        peak <= h.scheduler.budget_total,
        "peak {peak} exceeded the budget {}",
        h.scheduler.budget_total
    );
    assert_eq!(h.stats.completed.get(), 6);
    h.scheduler.shutdown();
}

#[test]
fn engines_demanding_more_than_the_share_are_rejected() {
    let h = start(SchedulerConfig {
        workers: 2,
        budget: ThreadBudget::new(4),
        ..Default::default()
    });
    let greedy = EngineDecl::Spatial {
        by: 2,
        bz: 2,
        threads: 3,
    };
    match h.scheduler.submit(spec(500.0, greedy)) {
        Err(SubmitError::Invalid(e)) => {
            assert!(e.contains("at most 2"), "{e}");
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
    h.gate.open();
    h.scheduler.shutdown();
}

#[test]
fn multi_process_jobs_are_admitted_on_the_worker_thread_product() {
    // Budget 4 with one pool worker: each job may lease up to 4
    // threads. A 2-thread engine over 3 dist workers demands 6 — over
    // the share; the same engine over 2 workers demands exactly 4 —
    // admitted, and the lease accounts for the whole product.
    let h = start(SchedulerConfig {
        workers: 1,
        budget: ThreadBudget::new(4),
        ..Default::default()
    });
    assert_eq!(h.scheduler.threads_per_job, 4);
    let engine = EngineDecl::Spatial {
        by: 2,
        bz: 2,
        threads: 2,
    };
    let mut greedy = spec(600.0, engine);
    greedy.workers = 3;
    match h.scheduler.submit(greedy) {
        Err(SubmitError::Invalid(e)) => {
            assert!(e.contains("3 worker(s)") && e.contains("demands 6"), "{e}");
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
    let mut fits = spec(601.0, engine);
    fits.workers = 2;
    assert!(matches!(
        h.scheduler.submit(fits),
        Ok(Submission::Queued { .. })
    ));
    wait_running(&h.scheduler, 1);
    assert_eq!(
        h.stats.threads_in_use.load(Ordering::SeqCst),
        4,
        "a 2-worker x 2-thread job leases the full product"
    );
    h.gate.open();
    assert!(h.scheduler.wait_idle(Duration::from_secs(20)));
    h.scheduler.shutdown();
}

#[test]
fn full_queue_rejects_with_overload() {
    let h = start(SchedulerConfig {
        workers: 1,
        queue_depth: 2,
        budget: ThreadBudget::new(1),
        ..Default::default()
    });
    // One running (holds the only worker at the gate) + two queued.
    // Wait for the worker to claim the first job before filling the
    // queue, otherwise the fill itself trips the depth limit.
    h.scheduler.submit(spec(500.0, EngineDecl::Naive)).unwrap();
    wait_running(&h.scheduler, 1);
    for i in 1..3 {
        h.scheduler
            .submit(spec(500.0 + i as f64, EngineDecl::Naive))
            .unwrap();
    }
    let (queued, _, _) = h.scheduler.queue_counts();
    assert_eq!(queued, 2, "queue at capacity");
    match h.scheduler.submit(spec(900.0, EngineDecl::Naive)) {
        Err(SubmitError::Overloaded { queue_depth }) => assert_eq!(queue_depth, 2),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(h.stats.rejected_overload.get(), 1);
    h.gate.open();
    assert!(h.scheduler.wait_idle(Duration::from_secs(20)));
    // Capacity is back: the same spec is admitted now.
    assert!(h.scheduler.submit(spec(900.0, EngineDecl::Naive)).is_ok());
    h.gate.open();
    h.scheduler.wait_idle(Duration::from_secs(20));
    h.scheduler.shutdown();
}

#[test]
fn identical_submissions_coalesce_then_hit_the_store() {
    let h = start(SchedulerConfig {
        workers: 1,
        queue_depth: 8,
        budget: ThreadBudget::new(1),
        ..Default::default()
    });
    let s1 = h.scheduler.submit(spec(555.0, EngineDecl::Naive)).unwrap();
    let Submission::Queued { job, ref key } = s1 else {
        panic!("first submission queues, got {s1:?}");
    };
    // Identical spec while the job is in flight: coalesced onto it.
    let s2 = h.scheduler.submit(spec(555.0, EngineDecl::Naive)).unwrap();
    assert_eq!(
        s2,
        Submission::Coalesced {
            job,
            key: key.clone()
        }
    );
    // A different spec is its own job.
    let s3 = h.scheduler.submit(spec(556.0, EngineDecl::Naive)).unwrap();
    assert!(matches!(s3, Submission::Queued { .. }));
    assert_ne!(s3.key(), key.as_str());

    h.gate.open();
    assert!(h.scheduler.wait_idle(Duration::from_secs(20)));
    // Identical spec after completion: served from the store, no job.
    let s4 = h.scheduler.submit(spec(555.0, EngineDecl::Naive)).unwrap();
    assert_eq!(s4, Submission::Cached { key: key.clone() });
    assert_eq!(h.store.len(), 2);
    assert_eq!(h.stats.coalesced.get(), 1);
    assert_eq!(h.stats.store_hits.get(), 1);
    // Both coalesced requesters read the same artifact.
    let bytes = h.scheduler.result_bytes(job).unwrap();
    assert_eq!(h.store.get(key).unwrap(), bytes);
    h.scheduler.shutdown();
}

#[test]
fn shutdown_drains_running_work_and_cancels_the_queue() {
    let h = start(SchedulerConfig {
        workers: 1,
        queue_depth: 8,
        budget: ThreadBudget::new(1),
        ..Default::default()
    });
    let ids: Vec<u64> = (0..3)
        .map(|i| {
            match h
                .scheduler
                .submit(spec(600.0 + i as f64, EngineDecl::Naive))
                .unwrap()
            {
                Submission::Queued { job, .. } => job,
                other => panic!("{other:?}"),
            }
        })
        .collect();
    wait_running(&h.scheduler, 1);

    // Drain on a side thread (it blocks until the running job ends),
    // then open the gate so the in-flight job can finish.
    let sched = h.scheduler.clone();
    let drainer = std::thread::spawn(move || sched.shutdown());
    // The drain cancels queued jobs before the running one completes.
    let deadline = Instant::now() + Duration::from_secs(20);
    while h.scheduler.queue_counts().0 > 0 {
        assert!(
            Instant::now() < deadline,
            "queued jobs were never cancelled"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    h.gate.open();
    drainer.join().unwrap();

    let state_of = |id: u64| {
        h.scheduler
            .job_json(id)
            .unwrap()
            .get("state")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };
    assert_eq!(state_of(ids[0]), "done", "in-flight job drained");
    assert_eq!(state_of(ids[1]), "cancelled");
    assert_eq!(state_of(ids[2]), "cancelled");
    assert_eq!(h.stats.cancelled.get(), 2);
    match h.scheduler.result_bytes(ids[1]) {
        Err(ResultError::JobFailed(e)) => assert!(e.starts_with("cancelled:"), "{e}"),
        other => panic!("{other:?}"),
    }
    // New submissions are turned away while (and after) draining.
    assert_eq!(
        h.scheduler.submit(spec(700.0, EngineDecl::Naive)),
        Err(SubmitError::ShuttingDown)
    );
    // Idempotent.
    h.scheduler.shutdown();
}

#[test]
fn failed_jobs_report_and_are_not_stored() {
    let stats = Arc::new(ServiceStats::default());
    let store = Arc::new(ResultStore::in_memory());
    let scheduler = Scheduler::start(
        SchedulerConfig {
            workers: 1,
            budget: ThreadBudget::new(1),
            ..Default::default()
        },
        store.clone(),
        autotune::SharedTuneCache::in_memory(),
        stats.clone(),
        Box::new(|spec, _, _| {
            if spec.physics.lambda_nm < 600.0 {
                Err("solver exploded".to_string())
            } else {
                panic!("runner panicked");
            }
        }),
    )
    .unwrap();
    let a = match scheduler.submit(spec(500.0, EngineDecl::Naive)).unwrap() {
        Submission::Queued { job, .. } => job,
        other => panic!("{other:?}"),
    };
    let b = match scheduler.submit(spec(700.0, EngineDecl::Naive)).unwrap() {
        Submission::Queued { job, .. } => job,
        other => panic!("{other:?}"),
    };
    assert!(scheduler.wait_idle(Duration::from_secs(20)));
    match scheduler.result_bytes(a) {
        Err(ResultError::JobFailed(e)) => assert!(e.contains("solver exploded"), "{e}"),
        other => panic!("{other:?}"),
    }
    match scheduler.result_bytes(b) {
        Err(ResultError::JobFailed(e)) => assert!(e.contains("panicked"), "{e}"),
        other => panic!("{other:?}"),
    }
    assert!(store.is_empty(), "failures are never cached");
    assert_eq!(stats.failed.get(), 2);
    // A retry of a failed spec is admitted as a fresh job (no dedupe
    // against failures).
    assert!(matches!(
        scheduler.submit(spec(500.0, EngineDecl::Naive)).unwrap(),
        Submission::Queued { .. }
    ));
    scheduler.wait_idle(Duration::from_secs(20));
    scheduler.shutdown();
}

#[test]
fn targeted_cancel_hits_queued_and_running_jobs() {
    let h = start(SchedulerConfig {
        workers: 1,
        queue_depth: 8,
        budget: ThreadBudget::new(1),
        ..Default::default()
    });
    let a = match h.scheduler.submit(spec(610.0, EngineDecl::Naive)).unwrap() {
        Submission::Queued { job, .. } => job,
        other => panic!("{other:?}"),
    };
    wait_running(&h.scheduler, 1);
    let b = match h.scheduler.submit(spec(611.0, EngineDecl::Naive)).unwrap() {
        Submission::Queued { job, .. } => job,
        other => panic!("{other:?}"),
    };

    assert_eq!(h.scheduler.cancel_job(9999), Err(CancelError::UnknownJob));
    // Queued: terminal right away, without ever consuming the worker.
    assert_eq!(h.scheduler.cancel_job(b), Ok(CancelOutcome::Cancelled));
    let state_of = |id: u64| {
        h.scheduler
            .job_json(id)
            .unwrap()
            .get("state")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };
    assert_eq!(state_of(b), "cancelled");
    assert_eq!(
        h.scheduler.cancel_job(b),
        Err(CancelError::AlreadyFinished(JobState::Cancelled))
    );
    // Running: the token trips now, the job halts at its next
    // checkpoint (here: right after the gate opens).
    assert_eq!(h.scheduler.cancel_job(a), Ok(CancelOutcome::Cancelling));
    h.gate.open();
    assert!(h.scheduler.wait_idle(Duration::from_secs(20)));
    assert_eq!(state_of(a), "cancelled");
    match h.scheduler.result_bytes(a) {
        Err(ResultError::JobFailed(e)) => assert!(e.starts_with("cancelled:"), "{e}"),
        other => panic!("{other:?}"),
    }
    assert_eq!(h.stats.cancelled.get(), 2);
    assert_eq!(h.stats.completed.get(), 0, "neither job produced work");
    assert!(h.store.is_empty());
    // The cancelled-while-queued id is still in the queue's backlog;
    // the claim loop must shed it silently (this used to panic).
    h.scheduler.shutdown();
}

#[test]
fn expired_deadlines_shed_queued_jobs_as_timeouts() {
    let h = start(SchedulerConfig {
        workers: 1,
        queue_depth: 8,
        budget: ThreadBudget::new(1),
        ..Default::default()
    });
    // Occupy the only worker, then queue a job with a deadline shorter
    // than its queue wait.
    h.scheduler.submit(spec(620.0, EngineDecl::Naive)).unwrap();
    wait_running(&h.scheduler, 1);
    let b = match h
        .scheduler
        .submit_with_deadline(spec(621.0, EngineDecl::Naive), Some(30))
        .unwrap()
    {
        Submission::Queued { job, .. } => job,
        other => panic!("{other:?}"),
    };
    std::thread::sleep(Duration::from_millis(60));
    h.gate.open();
    assert!(h.scheduler.wait_idle(Duration::from_secs(20)));
    let doc = h.scheduler.job_json(b).unwrap();
    assert_eq!(doc.get("state").unwrap().as_str(), Some("timeout"));
    let err = doc.get("error").unwrap().as_str().unwrap().to_string();
    assert!(
        err.starts_with("timeout:") && err.contains("while queued"),
        "{err}"
    );
    assert_eq!(h.stats.timeout.get(), 1);
    assert_eq!(h.stats.completed.get(), 1, "the first job still finished");
    h.scheduler.shutdown();
}

#[test]
fn deadline_halts_a_running_job_as_a_timeout() {
    let stats = Arc::new(ServiceStats::default());
    let store = Arc::new(ResultStore::in_memory());
    // A runner that (like the real solver loop) polls the token between
    // work quanta and halts with its prefixed error.
    let scheduler = Scheduler::start(
        SchedulerConfig {
            workers: 1,
            budget: ThreadBudget::new(1),
            ..Default::default()
        },
        store.clone(),
        autotune::SharedTuneCache::in_memory(),
        stats.clone(),
        Box::new(|_, _, cancel| {
            let give_up = Instant::now() + Duration::from_secs(20);
            loop {
                if let Some(e) = cancel.halt_error() {
                    return Err(e);
                }
                assert!(Instant::now() < give_up, "deadline never tripped");
                std::thread::sleep(Duration::from_millis(5));
            }
        }),
    )
    .unwrap();
    let t0 = Instant::now();
    let id = match scheduler
        .submit_with_deadline(spec(630.0, EngineDecl::Naive), Some(50))
        .unwrap()
    {
        Submission::Queued { job, .. } => job,
        other => panic!("{other:?}"),
    };
    assert!(scheduler.wait_idle(Duration::from_secs(20)));
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "halted promptly, not at the runner's give-up horizon"
    );
    let doc = scheduler.job_json(id).unwrap();
    assert_eq!(doc.get("state").unwrap().as_str(), Some("timeout"));
    match scheduler.result_bytes(id) {
        Err(ResultError::JobFailed(e)) => assert!(e.starts_with("timeout:"), "{e}"),
        other => panic!("{other:?}"),
    }
    assert_eq!(stats.timeout.get(), 1);
    assert!(store.is_empty(), "timeouts are never cached");
    scheduler.shutdown();
}
