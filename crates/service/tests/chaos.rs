//! Chaos suite: the daemon under a deterministic fault-injection plan.
//!
//! Each test boots an in-process daemon with the *real* solve runner
//! and a seeded [`em_faults::FaultPlan`], then drives it with a
//! fault-tolerant client (bounded retries, torn responses treated as
//! retryable). The invariants under every plan:
//!
//! - the daemon survives: it keeps answering `/healthz`, drains
//!   cleanly, and its run loop returns `Ok`;
//! - jobs that complete serve artifacts **bit-identical** to a
//!   fault-free baseline — corruption never leaks into a response;
//! - a store reopened over a chaos-corrupted directory quarantines the
//!   damage instead of serving it;
//! - the engine-thread budget invariant holds (peak leases ≤ budget).

use em_faults::FaultPlan;
use em_json::Json;
use em_service::{Server, ServerConfig};
use mwd_core::ThreadBudget;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// One tiny sub-second scenario per variant. The scenario *name* varies
/// too: the solve fault site draws per name, so a plan hits different
/// variants differently instead of all-or-nothing.
fn spec_toml(variant: usize) -> String {
    format!(
        r#"name = "chaos-{variant}"
description = "chaos workload variant"

[grid]
nx = 4
ny = 4
nz = 24

[physics]
lambda_cells = 8.0
lambda_nm = {}.0

[pml]
thickness = 4

[source]
z_plane = 18

[scene]
materials = ["vacuum"]
background = "vacuum"

[engine]
kind = "naive-periodic-xy"

[convergence]
tol = 1e-2
max_periods = 2
"#,
        550 + 7 * variant
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("em_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(chaos: Option<&str>, store_dir: Option<PathBuf>) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scheduler: em_service::SchedulerConfig {
            workers: 1,
            queue_depth: 16,
            budget: ThreadBudget::new(1),
            ..Default::default()
        },
        store_dir,
        chaos: chaos.map(|p| FaultPlan::parse(p).unwrap()),
        quiet: true,
        ..Default::default()
    }
}

struct Daemon {
    addr: String,
    thread: Option<std::thread::JoinHandle<Result<em_service::server::ServiceSummary, String>>>,
}

impl Daemon {
    fn start(cfg: ServerConfig) -> Daemon {
        let server = Server::bind(&cfg).unwrap();
        let addr = format!("{}", server.local_addr().unwrap());
        let thread = std::thread::spawn(move || server.run());
        Daemon {
            addr,
            thread: Some(thread),
        }
    }

    fn stop(mut self) -> em_service::server::ServiceSummary {
        // Even the shutdown request can hit an injected connection
        // drop; keep asking until the daemon acknowledges or exits.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match http_try(&self.addr, "POST", "/shutdown", None) {
                Ok((200, _)) => break,
                _ if Instant::now() > deadline => break,
                _ => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        self.thread.take().unwrap().join().unwrap().unwrap()
    }
}

/// One raw exchange; a torn or malformed response is an `Err`, so
/// callers can decide to retry. A body shorter than its declared
/// `Content-Length` (the injected mid-response drop) is torn, never
/// silently accepted as a payload.
fn http_try(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or(&[]);
    // `Connection: close` because this client reads to EOF; keep-alive
    // exchanges live in the dedicated keepalive test suite.
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut payload = head.into_bytes();
    payload.extend_from_slice(body);
    stream.write_all(&payload).map_err(|e| e.to_string())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| e.to_string())?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response: {text:.60}"))?;
    let Some((header, payload)) = text.split_once("\r\n\r\n") else {
        return Err("truncated response".to_string());
    };
    let declared = header.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.eq_ignore_ascii_case("content-length")
            .then(|| v.trim().parse::<usize>().ok())
            .flatten()
    });
    if let Some(n) = declared {
        if payload.len() < n {
            return Err(format!("torn response: {} of {n} bytes", payload.len()));
        }
    }
    Ok((status, payload.to_string()))
}

/// Retry `http_try` against injected connection drops until the
/// exchange lands intact (bounded; panics if the daemon really died).
fn http(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> (u16, String) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match http_try(addr, method, path, body) {
            Ok(r) => return r,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "{method} {path} never landed: {e}"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// Follow a job to any terminal state; returns `(state, full doc)`.
fn poll_terminal(addr: &str, job: &str) -> (String, Json) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline, "{job} never reached a terminal");
        let (status, body) = http(addr, "GET", &format!("/jobs/{job}"), None);
        assert_eq!(status, 200, "{body}");
        let doc = em_json::parse(&body).unwrap();
        let state = doc.get("state").unwrap().as_str().unwrap().to_string();
        match state.as_str() {
            "queued" | "running" => std::thread::sleep(Duration::from_millis(20)),
            _ => return (state, doc),
        }
    }
}

/// Submit one variant and drive it to a terminal state, retrying the
/// submission itself against 429/503/torn responses. Returns
/// `(terminal state, content key, artifact bytes if done)`.
fn drive(addr: &str, variant: usize) -> (String, String, Option<String>) {
    let body = spec_toml(variant);
    let deadline = Instant::now() + Duration::from_secs(30);
    let doc = loop {
        match http_try(addr, "POST", "/jobs", Some(body.as_bytes())) {
            Ok((200 | 202, payload)) => break em_json::parse(&payload).unwrap(),
            Ok((429 | 503, _)) | Err(_) => {
                assert!(Instant::now() < deadline, "submission of {variant} starved");
                std::thread::sleep(Duration::from_millis(25));
            }
            Ok((s, payload)) => panic!("variant {variant}: http-{s} {payload}"),
        }
    };
    let key = doc.get("key").unwrap().as_str().unwrap().to_string();
    let state = match doc.get("status").unwrap().as_str().unwrap() {
        "cached" => "done".to_string(),
        _ => {
            let job = doc.get("job").unwrap().as_str().unwrap().to_string();
            poll_terminal(addr, &job).0
        }
    };
    let bytes = (state == "done").then(|| {
        let (s, artifact) = http(addr, "GET", &format!("/results/{key}"), None);
        assert_eq!(s, 200, "done job must serve its artifact: {artifact}");
        artifact
    });
    (state, key, bytes)
}

const VARIANTS: usize = 6;

/// Fault-free reference run: every variant completes, and its artifact
/// bytes are the baseline later plans are compared against.
fn baseline() -> HashMap<usize, (String, String)> {
    let daemon = Daemon::start(config(None, None));
    let mut base = HashMap::new();
    for v in 0..VARIANTS {
        let (state, key, bytes) = drive(&daemon.addr, v);
        assert_eq!(state, "done", "baseline variant {v}");
        base.insert(v, (key, bytes.unwrap()));
    }
    let summary = daemon.stop();
    assert_eq!(summary.completed, VARIANTS as u64);
    base
}

#[test]
fn daemon_survives_every_plan_and_serves_only_bit_identical_artifacts() {
    let base = baseline();
    let plans = [
        ("panics", "seed=11,panic=0.5"),
        ("diskerr", "seed=12,disk-error=0.5"),
        ("corrupt", "seed=13,truncate=0.6,bit-flip=0.6"),
        ("conndrop", "seed=14,conn-drop=0.3"),
        ("slow", "seed=15,slow=0.5:250"),
        (
            "mixed",
            "seed=16,panic=0.15,slow=0.2:200,disk-error=0.15,truncate=0.2,bit-flip=0.2,conn-drop=0.15",
        ),
    ];
    for (tag, plan) in plans {
        let dir = temp_dir(tag);
        let daemon = Daemon::start(config(Some(plan), Some(dir.join("store"))));
        let mut done = 0usize;
        let mut keys: Vec<(usize, String)> = Vec::new();
        for v in 0..VARIANTS {
            let (state, key, bytes) = drive(&daemon.addr, v);
            assert!(
                matches!(state.as_str(), "done" | "failed"),
                "[{tag}] variant {v} ended `{state}` (injected faults may fail a job, \
                 never wedge or corrupt it)"
            );
            if let Some(bytes) = bytes {
                let (bkey, bbytes) = &base[&v];
                assert_eq!(&key, bkey, "[{tag}] content key drifted for variant {v}");
                assert_eq!(
                    &bytes, bbytes,
                    "[{tag}] served artifact for variant {v} is not bit-identical \
                     to the fault-free baseline"
                );
                done += 1;
                keys.push((v, key));
            }
        }
        // The daemon is still alive and the budget invariant held.
        let (s, body) = http(&daemon.addr, "GET", "/healthz", None);
        assert_eq!(s, 200, "[{tag}] {body}");
        let (s, body) = http(&daemon.addr, "GET", "/stats", None);
        assert_eq!(s, 200, "[{tag}] {body}");
        let stats = em_json::parse(&body).unwrap();
        let peak = stats.get("peak_threads_in_use").unwrap().as_i64().unwrap();
        let budget = stats.get("budget").unwrap().as_i64().unwrap();
        assert!(
            peak <= budget,
            "[{tag}] peak thread leases {peak} blew the budget {budget}"
        );
        let summary = daemon.stop();
        assert_eq!(
            summary.completed, done as u64,
            "[{tag}] completion accounting"
        );

        // Crash-safety: reopen the store over whatever the plan did to
        // the directory. Every surviving entry must be bit-identical to
        // the baseline; everything else must be quarantined or absent —
        // corrupt bytes are never served, not even after a restart.
        let reopened = em_service::ResultStore::open(&dir.join("store")).unwrap();
        for (v, key) in &keys {
            // A `None` here is fine: corrupted on disk -> quarantined, a miss.
            if let Some(bytes) = reopened.get(key) {
                assert_eq!(
                    String::from_utf8_lossy(&bytes),
                    base[v].1,
                    "[{tag}] reloaded artifact for variant {v} differs from baseline"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn deadline_bounded_job_times_out_within_one_checkpoint() {
    // A plan that makes every solve sleep 10 s — but the injected
    // slowdown polls the job's cancel token every slice, exactly like
    // the solver does once per period. A 300 ms deadline must therefore
    // stop the job within one checkpoint, not after 10 s.
    let daemon = Daemon::start(config(Some("seed=21,slow=1:10000"), None));
    let body = format!(
        r#"{{"toml": {}, "deadline_ms": 300}}"#,
        Json::str(spec_toml(0)).compact()
    );
    let t0 = Instant::now();
    let (status, payload) = http(&daemon.addr, "POST", "/jobs", Some(body.as_bytes()));
    assert_eq!(status, 202, "{payload}");
    let sub = em_json::parse(&payload).unwrap();
    let job = sub.get("job").unwrap().as_str().unwrap().to_string();
    let (state, doc) = poll_terminal(&daemon.addr, &job);
    let elapsed = t0.elapsed();
    assert_eq!(state, "timeout", "{}", doc.pretty());
    let err = doc.get("error").unwrap().as_str().unwrap();
    assert!(err.starts_with("timeout:"), "{err}");
    assert!(
        elapsed < Duration::from_secs(5),
        "halted in {elapsed:?}, far before the 10 s injected solve"
    );
    // The result endpoint reports the timeout, not a payload.
    let (status, body) = http(&daemon.addr, "GET", &format!("/jobs/{job}/result"), None);
    assert_eq!(status, 500);
    assert!(body.contains("timeout"), "{body}");
    let summary = daemon.stop();
    assert_eq!(summary.timed_out, 1);
    assert_eq!(summary.completed, 0);
}

#[test]
fn cancel_endpoint_cancels_queued_and_running_jobs() {
    // Slow solves pin the single worker so the second job provably
    // waits in the queue.
    let daemon = Daemon::start(config(Some("seed=22,slow=1:10000"), None));
    let submit = |v: usize| {
        let (status, payload) = http(&daemon.addr, "POST", "/jobs", Some(spec_toml(v).as_bytes()));
        assert_eq!(status, 202, "{payload}");
        let doc = em_json::parse(&payload).unwrap();
        doc.get("job").unwrap().as_str().unwrap().to_string()
    };
    let a = submit(1);
    let b = submit(2);

    let (status, body) = http(&daemon.addr, "POST", "/jobs/zzz/cancel", None);
    assert_eq!(status, 400, "{body}");
    let (status, body) = http(&daemon.addr, "POST", "/jobs/j-999/cancel", None);
    assert_eq!(status, 404, "{body}");

    // B is queued: cancel is immediate and terminal.
    let (status, body) = http(&daemon.addr, "POST", &format!("/jobs/{b}/cancel"), None);
    assert_eq!(status, 202, "{body}");
    assert_eq!(
        em_json::parse(&body)
            .unwrap()
            .get("status")
            .unwrap()
            .as_str(),
        Some("cancelled")
    );
    let (state, _) = poll_terminal(&daemon.addr, &b);
    assert_eq!(state, "cancelled");
    // Cancelling a finished job is a conflict, not a second decrement.
    let (status, body) = http(&daemon.addr, "POST", &format!("/jobs/{b}/cancel"), None);
    assert_eq!(status, 409, "{body}");

    // A is running (wedged in the injected slow solve): the cancel
    // trips its token and the job halts at the next checkpoint instead
    // of after the full 10 s.
    let t0 = Instant::now();
    let (status, body) = http(&daemon.addr, "POST", &format!("/jobs/{a}/cancel"), None);
    assert_eq!(status, 202, "{body}");
    let ack = em_json::parse(&body).unwrap();
    let acked = ack.get("status").unwrap().as_str().unwrap().to_string();
    assert!(
        acked == "cancelling" || acked == "cancelled",
        "running-job cancel acks as cancelling (or cancelled if it was still queued): {acked}"
    );
    let (state, doc) = poll_terminal(&daemon.addr, &a);
    assert_eq!(state, "cancelled", "{}", doc.pretty());
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "cancel cut the solve short"
    );
    let summary = daemon.stop();
    assert_eq!(summary.cancelled, 2);
    assert_eq!(summary.completed, 0);
}

/// The chaos seam reaches the dist halo wire directly: a plan that
/// severs every halo link kills the exchange on the first plane, and
/// the decomposed solve must land as a clean per-job failure — bounded
/// by its own protocol, far inside the deadline, never a hang or a
/// drain-shaped outcome.
#[test]
fn dist_worker_link_cut_mid_solve_fails_cleanly_within_the_deadline() {
    use mwd_core::cancel::CancelToken;
    use std::sync::Arc;
    let spec = em_scenarios::ScenarioSpec::from_toml_str(&spec_toml(5)).unwrap();
    let inj = Arc::new(em_faults::FaultInjector::new(
        FaultPlan::parse("seed=31,conn-drop=1").unwrap(),
    ));
    let opts = em_dist::DistOptions {
        workers: 2,
        threads: 2,
        cancel: CancelToken::with_deadline(Duration::from_secs(30)),
        faults: Some(inj),
        ..Default::default()
    };
    let t0 = Instant::now();
    let outcomes = em_dist::run_dist(&spec, &opts).unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(outcomes.len(), 1);
    let err = outcomes[0]
        .error
        .as_deref()
        .expect("the cut link must fail the job");
    assert!(err.contains("dist worker"), "{err}");
    assert!(
        !err.starts_with("cancelled:") && !err.starts_with("timeout:"),
        "a wire fault is a failure, not a drain: {err}"
    );
    assert!(
        elapsed < Duration::from_secs(20),
        "failed in {elapsed:?} — via the protocol, not by burning the deadline"
    );
}

/// A `workers = 2` spec submitted to the daemon runs decomposed (the
/// dist-runner seam in `bind_with_runner`), produces the same physics
/// as the single-process solve of the same scenario, and leaves live
/// per-worker halo series on `GET /metrics`.
#[test]
fn daemon_decomposes_multi_worker_specs_and_exposes_halo_metrics() {
    let mut cfg = config(None, None);
    cfg.scheduler.budget = ThreadBudget::new(2);
    let daemon = Daemon::start(cfg);

    // Fresh daemon: the halo families are pre-registered at zero.
    let (s, body) = http(&daemon.addr, "GET", "/metrics", None);
    assert_eq!(s, 200);
    assert!(
        body.contains("em_halo_exchanges_total{worker=\"0\"} 0"),
        "{body}"
    );
    assert!(
        body.contains("em_halo_wait_seconds_count{worker=\"0\"} 0"),
        "{body}"
    );

    let submit = |toml: String| {
        let (status, payload) = http(&daemon.addr, "POST", "/jobs", Some(toml.as_bytes()));
        assert!(status == 200 || status == 202, "{payload}");
        let doc = em_json::parse(&payload).unwrap();
        let key = doc.get("key").unwrap().as_str().unwrap().to_string();
        if doc.get("status").unwrap().as_str() != Some("cached") {
            let job = doc.get("job").unwrap().as_str().unwrap().to_string();
            let (state, d) = poll_terminal(&daemon.addr, &job);
            assert_eq!(state, "done", "{}", d.pretty());
        }
        let (s, artifact) = http(&daemon.addr, "GET", &format!("/results/{key}"), None);
        assert_eq!(s, 200, "{artifact}");
        em_json::parse(&artifact).unwrap()
    };
    let single = submit(spec_toml(0));
    let dist = submit(format!("workers = 2\n{}", spec_toml(0)));

    // The artifacts legitimately differ in key/spec_hash (`workers` is
    // part of the spec identity); every physics field must not.
    let outcome = |doc: &Json| doc.get("outcomes").unwrap().as_arr().unwrap()[0].clone();
    let (a, b) = (outcome(&single), outcome(&dist));
    for field in [
        "converged",
        "periods",
        "steps",
        "rel_change",
        "energy",
        "back_iteration_cells",
        "absorption",
        "intensity_profile",
    ] {
        assert_eq!(
            a.get(field).map(Json::compact),
            b.get(field).map(Json::compact),
            "field `{field}` drifted under decomposition"
        );
    }

    // Both workers' halo series are live now.
    let (s, body) = http(&daemon.addr, "GET", "/metrics", None);
    assert_eq!(s, 200);
    for w in 0..2 {
        let needle = format!("em_halo_exchanges_total{{worker=\"{w}\"}}");
        let line = body
            .lines()
            .find(|l| l.starts_with(&needle))
            .unwrap_or_else(|| panic!("missing series {needle}"));
        let count: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(count > 0.0, "worker {w} exchanged no halos: {line}");
    }
    assert!(
        body.contains("em_halo_wait_seconds_count{worker=\"1\"}"),
        "{body}"
    );
    daemon.stop();
}

#[test]
fn sigterm_during_a_chaos_wedge_drains_within_the_deadline() {
    // SIGTERM lands while the only worker is wedged in an injected slow
    // solve and another job waits in the queue. The drain contract: the
    // running job finishes (the wedge is finite), queued jobs are
    // cancelled, and the daemon exits cleanly well within a supervisor's
    // kill deadline — it must not wait on the queue.
    let cfg = config(Some("seed=23,slow=1:2500"), None);
    let server = Server::bind(&cfg).unwrap();
    let addr = format!("{}", server.local_addr().unwrap());
    let stop = server.stop_flag();
    let thread = std::thread::spawn(move || server.run());

    let submit = |v: usize| {
        let (status, payload) = http(&addr, "POST", "/jobs", Some(spec_toml(v).as_bytes()));
        assert_eq!(status, 202, "{payload}");
    };
    submit(3);
    submit(4);
    // Wait until the first job is provably running (wedged).
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        assert!(Instant::now() < deadline, "job never started running");
        let (s, b) = http(&addr, "GET", "/healthz", None);
        assert_eq!(s, 200);
        if em_json::parse(&b).unwrap().get("running").unwrap().as_i64() == Some(1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // What `shutdown::install` does on SIGTERM.
    let t0 = Instant::now();
    stop.store(true, Ordering::SeqCst);
    let summary = thread.join().unwrap().unwrap();
    let drained_in = t0.elapsed();
    assert!(
        drained_in < Duration::from_secs(15),
        "drain took {drained_in:?}; the wedge must bound it, not the queue"
    );
    assert_eq!(summary.completed, 1, "the wedged job still finished");
    assert_eq!(summary.cancelled, 1, "the queued job was cancelled");
}
