//! SIGINT/SIGTERM → a cooperative stop flag.
//!
//! The workspace vendors no `libc` crate, but registering a handler
//! only needs the C `signal` symbol every Unix libc exports, declared
//! here directly. The handler does the one async-signal-safe thing a
//! drain needs: store `true` into an atomic. The accept loop, the
//! scheduler, and the batch runner all poll the same flag, so one
//! Ctrl-C (or a supervisor's SIGTERM) drains every layer: in-flight
//! jobs finish, summaries/artifacts are written, and the tuning cache
//! is persisted.
//!
//! A *second* signal while the drain is pending restores the default
//! disposition and re-raises, so a hung or very long job can still be
//! force-interrupted by pressing Ctrl-C again (the usual convention)
//! instead of requiring SIGKILL from elsewhere.
//!
//! On non-Unix targets [`install`] registers nothing; the HTTP
//! `POST /shutdown` route (and process exit) remain available.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// The flag the installed signal handler flips. A process installs at
/// most one.
static HOOKED: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
extern "C" {
    /// C89 `signal(2)`: `sighandler_t signal(int signum, sighandler_t
    /// handler)` with `sighandler_t` a plain function pointer.
    fn signal(signum: i32, handler: usize) -> usize;
    /// `raise(3)`: deliver a signal to the calling process/thread.
    fn raise(signum: i32) -> i32;
}

extern "C" fn on_signal(signum: i32) {
    if let Some(flag) = HOOKED.get() {
        if flag.swap(true, Ordering::SeqCst) {
            // Second signal: the drain is already pending, so the user
            // wants out *now*. Fall back to the default disposition
            // (terminate) and re-deliver — both calls are
            // async-signal-safe.
            #[cfg(unix)]
            unsafe {
                signal(signum, 0); // SIG_DFL
                raise(signum);
            }
            #[cfg(not(unix))]
            let _ = signum;
        }
    }
}

/// Route SIGINT and SIGTERM to `flag`. Returns whether this call's flag
/// is the one hooked (false if another flag was installed earlier; the
/// earlier one keeps working).
pub fn install(flag: Arc<AtomicBool>) -> bool {
    let installed = HOOKED.set(flag).is_ok();
    #[cfg(unix)]
    if installed {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `on_signal` is async-signal-safe (one atomic store of
        // a pointer read from a OnceLock that was written before
        // installation) and has the C signature `signal` expects.
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
    installed
}

/// A fresh flag, hooked to signals when possible.
pub fn hooked_flag() -> Arc<AtomicBool> {
    let flag = Arc::new(AtomicBool::new(false));
    if install(flag.clone()) {
        flag
    } else {
        // A flag was installed earlier in this process: share it, so
        // every caller observes the same drain request.
        HOOKED.get().expect("set above or earlier").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_sets_the_hooked_flag() {
        let flag = hooked_flag();
        assert!(!flag.load(Ordering::SeqCst));
        // Call the handler directly (sending a real signal would race
        // other tests in this process).
        on_signal(15);
        assert!(flag.load(Ordering::SeqCst));
        flag.store(false, Ordering::SeqCst);
        // Repeat installs share the original flag.
        let again = hooked_flag();
        assert!(Arc::ptr_eq(&flag, &again));
        assert!(!install(Arc::new(AtomicBool::new(false))));
    }
}
