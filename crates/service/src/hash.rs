//! The canonical content hash behind result-store keys.
//!
//! The implementation lives in [`em_json::hash`] so the batch runner's
//! artifact naming and the scenario generator's dedupe checks compute
//! the *same* key for the same spec text; this module re-exports it
//! under the historical service-local path. The hash is FNV-1a over
//! 128 bits with a part-separator byte, so the key depends on the
//! structure (spec, engine, fingerprint), not just concatenated text.

pub use em_json::hash::{content_hash, content_hash_bytes, is_key};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_input_changes_flip_the_key() {
        let base = content_hash(&["name = \"a\"", "mwd(dw=4)", "1t-avx2"]);
        assert_ne!(
            base,
            content_hash(&["name = \"b\"", "mwd(dw=4)", "1t-avx2"])
        );
        assert_ne!(
            base,
            content_hash(&["name = \"a\"", "mwd(dw=8)", "1t-avx2"])
        );
        assert_ne!(
            base,
            content_hash(&["name = \"a\"", "mwd(dw=4)", "1t-scalar"])
        );
    }

    #[test]
    fn deterministic_and_key_shaped() {
        let a = content_hash(&["spec", "engine", "fp"]);
        assert_eq!(a, content_hash(&["spec", "engine", "fp"]));
        assert!(is_key(&a), "{a}");
    }
}
