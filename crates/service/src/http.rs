//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Hand-rolled on `std::io` for the same reason as the TOML and JSON
//! codecs: this environment has no crates.io, and the service only
//! needs a small, well-policed subset — one request per connection
//! (every response carries `Connection: close`), `Content-Length` and
//! `Transfer-Encoding: chunked` bodies, and hard limits on header and
//! body size so a misbehaving client costs bounded memory.
//!
//! Parsing errors map onto the two client-fault status codes the API
//! uses: 400 for malformed requests and 413 for oversized ones.

use em_json::Json;
use std::io::{BufRead, Write};

/// Resource limits applied while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Request line + headers, in bytes.
    pub max_header_bytes: usize,
    /// Decoded body, in bytes (scenario specs are a few KiB).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// What went wrong reading a request, as an HTTP status.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// 400: syntactically malformed request.
    BadRequest(String),
    /// 408: the socket read timed out mid-request.
    Timeout(String),
    /// 413: header block or body over the configured limit.
    TooLarge(String),
}

impl HttpError {
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::Timeout(_) => 408,
            HttpError::TooLarge(_) => 413,
        }
    }

    pub fn message(&self) -> &str {
        match self {
            HttpError::BadRequest(m) | HttpError::Timeout(m) | HttpError::TooLarge(m) => m,
        }
    }
}

/// Map an I/O error to the right HTTP fault: a socket timeout (either
/// `TimedOut` or, on platforms where `SO_RCVTIMEO` surfaces as EAGAIN,
/// `WouldBlock`) is 408; anything else is a malformed/torn request.
fn io_fault(context: &str, e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            HttpError::Timeout(format!("{context}: socket timeout"))
        }
        _ => HttpError::BadRequest(format!("{context}: {e}")),
    }
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    /// The request target as sent (path + optional query).
    pub target: String,
    /// Header names are lower-cased; values are trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

fn bad(msg: impl Into<String>) -> HttpError {
    HttpError::BadRequest(msg.into())
}

/// Read one line (through CRLF or bare LF), enforcing a byte budget
/// shared across the whole header block.
fn read_line(r: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let buf = r.fill_buf().map_err(|e| io_fault("read failed", e))?;
        if buf.is_empty() {
            // EOF mid-line is malformed; EOF before any byte is a
            // closed connection.
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(bad("connection closed mid-line"))
            };
        }
        let nl = buf.iter().position(|&b| b == b'\n');
        let take = nl.map(|i| i + 1).unwrap_or(buf.len());
        if take > *budget {
            return Err(HttpError::TooLarge(
                "header block exceeds the configured limit".to_string(),
            ));
        }
        *budget -= take;
        line.extend_from_slice(&buf[..take]);
        r.consume(take);
        if nl.is_some() {
            while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| bad("header line is not UTF-8"));
        }
    }
}

/// Read and decode one full request. `Ok(None)` means the peer closed
/// the connection before sending anything.
pub fn read_request(r: &mut impl BufRead, limits: &Limits) -> Result<Option<Request>, HttpError> {
    let mut budget = limits.max_header_bytes;
    let Some(request_line) = read_line(r, &mut budget)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(bad(format!("malformed request line `{request_line}`"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported protocol version `{version}`")));
    }
    if !target.starts_with('/') {
        return Err(bad(format!("request target `{target}` is not a path")));
    }

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(r, &mut budget)? else {
            return Err(bad("connection closed inside the header block"));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(format!("malformed header line `{line}`")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(bad(format!("malformed header name `{name}`")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let req = Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    };

    let body = match (
        req.header("transfer-encoding"),
        req.header("content-length"),
    ) {
        (Some(te), _) => {
            if !te.eq_ignore_ascii_case("chunked") {
                return Err(bad(format!("unsupported transfer encoding `{te}`")));
            }
            read_chunked_body(r, limits)?
        }
        (None, Some(cl)) => {
            let len: usize = cl
                .parse()
                .map_err(|_| bad(format!("malformed content length `{cl}`")))?;
            if len > limits.max_body_bytes {
                return Err(HttpError::TooLarge(format!(
                    "declared body of {len} bytes exceeds the {}-byte limit",
                    limits.max_body_bytes
                )));
            }
            let mut body = vec![0u8; len];
            read_exact(r, &mut body)?;
            body
        }
        (None, None) => Vec::new(),
    };

    Ok(Some(Request { body, ..req }))
}

fn read_exact(r: &mut impl BufRead, buf: &mut [u8]) -> Result<(), HttpError> {
    std::io::Read::read_exact(r, buf).map_err(|e| io_fault("body truncated", e))
}

/// Decode a chunked body: `<hex-size>[;ext]\r\n<bytes>\r\n` repeated,
/// terminated by a zero-size chunk and (possibly empty) trailers.
fn read_chunked_body(r: &mut impl BufRead, limits: &Limits) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    // Chunk-size lines and trailers share one generous budget so a
    // stream of empty extensions cannot spin forever.
    let mut line_budget = limits.max_header_bytes;
    loop {
        let Some(size_line) = read_line(r, &mut line_budget)? else {
            return Err(bad("connection closed inside a chunked body"));
        };
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16)
            .map_err(|_| bad(format!("malformed chunk size `{size_line}`")))?;
        // Reject an absurd declared size before any arithmetic on it: a
        // chunk size near usize::MAX would overflow the `len + size`
        // check below and panic the handler instead of answering 413.
        if size > limits.max_body_bytes {
            return Err(HttpError::TooLarge(format!(
                "declared chunk of {size} bytes exceeds the {}-byte limit",
                limits.max_body_bytes
            )));
        }
        if size == 0 {
            // Trailer section: header lines until the blank terminator.
            loop {
                match read_line(r, &mut line_budget)? {
                    Some(l) if l.is_empty() => return Ok(body),
                    Some(_) => continue,
                    None => return Err(bad("connection closed inside chunk trailers")),
                }
            }
        }
        if body.len() + size > limits.max_body_bytes {
            return Err(HttpError::TooLarge(format!(
                "chunked body exceeds the {}-byte limit",
                limits.max_body_bytes
            )));
        }
        let start = body.len();
        body.resize(start + size, 0);
        read_exact(r, &mut body[start..])?;
        let mut crlf = [0u8; 2];
        read_exact(r, &mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(bad("chunk data is not CRLF-terminated"));
        }
    }
}

pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        408 => "Request Timeout",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One response, always `Connection: close`.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers rendered after the fixed set (e.g. `Retry-After`
    /// on 429/503 so well-behaved clients back off instead of
    /// hammering).
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    pub fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: value.pretty().into_bytes(),
            headers: Vec::new(),
        }
    }

    /// A JSON error payload: `{"error": <message>}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &Json::obj(vec![("error", Json::str(message))]))
    }

    /// A plain-text body (the Prometheus exposition at `/metrics`).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
            headers: Vec::new(),
        }
    }

    /// Pre-rendered JSON bytes (the content-addressed artifacts).
    pub fn raw_json(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            headers: Vec::new(),
        }
    }

    /// Builder: attach one extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Builder: advise the client to retry after `secs` (for 429/503).
    pub fn with_retry_after(self, secs: u64) -> Response {
        self.with_header("Retry-After", secs.to_string())
    }

    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "Connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(raw.to_vec()), &Limits::default())
    }

    fn parse_with(raw: &[u8], limits: Limits) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(raw.to_vec()), &limits)
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"), "case-insensitive lookup");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_content_length_body_and_query() {
        let req = parse(b"POST /jobs?x=1 HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.path(), "/jobs");
        assert_eq!(req.target, "/jobs?x=1");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_chunked_body_with_extensions_and_trailers() {
        let raw = b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    4;ext=1\r\nname\r\n3\r\n = \r\n0\r\nX-Trailer: t\r\n\r\n";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.body, b"name = ");
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let req = parse(b"GET /stats HTTP/1.1\nHost: x\n\n").unwrap().unwrap();
        assert_eq!(req.path(), "/stats");
    }

    #[test]
    fn closed_connection_before_any_byte_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_are_400() {
        for raw in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET /x\r\n\r\n".as_slice(),
            b"GET /x SPDY/3\r\n\r\n".as_slice(),
            b"GET x HTTP/1.1\r\n\r\n".as_slice(),
            b"GET /x HTTP/1.1 extra\r\n\r\n".as_slice(),
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort".as_slice(),
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabXY".as_slice(),
            b"GET /x HTTP/1.1\r\nHost: x".as_slice(),
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(
                err.status(),
                400,
                "{err:?} for {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_requests_are_413() {
        let tight = Limits {
            max_header_bytes: 64,
            max_body_bytes: 8,
        };
        // Header block over budget.
        let raw = format!("GET /x HTTP/1.1\r\nBig: {}\r\n\r\n", "v".repeat(100));
        assert_eq!(parse_with(raw.as_bytes(), tight).unwrap_err().status(), 413);
        // Declared body over budget (rejected before reading it).
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        assert_eq!(parse_with(raw, tight).unwrap_err().status(), 413);
        // Chunked body creeping over budget.
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    6\r\nabcdef\r\n6\r\nghijkl\r\n0\r\n\r\n";
        assert_eq!(parse_with(raw, tight).unwrap_err().status(), 413);
        // A near-usize::MAX chunk size must 413 cleanly, not overflow
        // the accounting arithmetic.
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    1\r\na\r\nffffffffffffffff\r\n";
        assert_eq!(parse_with(raw, tight).unwrap_err().status(), 413);
    }

    #[test]
    fn extra_headers_render_between_length_and_close() {
        let mut out = Vec::new();
        Response::error(429, "queue full")
            .with_retry_after(3)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 3\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n\r\n"), "{text}");
        let head = text.split("\r\n\r\n").next().unwrap();
        assert!(
            head.find("Retry-After").unwrap() < head.find("Connection").unwrap(),
            "extra headers precede the terminator: {head}"
        );
    }

    #[test]
    fn socket_timeouts_map_to_408() {
        struct TimesOut;
        impl std::io::Read for TimesOut {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "rcvtimeo",
                ))
            }
        }
        let mut r = std::io::BufReader::new(TimesOut);
        let err = read_request(&mut r, &Limits::default()).unwrap_err();
        assert_eq!(err.status(), 408, "{err:?}");
        assert!(matches!(err, HttpError::Timeout(_)));
    }

    #[test]
    fn responses_render_with_length_and_close() {
        let mut out = Vec::new();
        Response::error(429, "queue full")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert!(text.contains(&format!("Content-Length: {}\r\n", body.len())));
        assert_eq!(
            em_json::parse(body).unwrap().get("error").unwrap().as_str(),
            Some("queue full")
        );
    }
}
