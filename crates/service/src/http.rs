//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Hand-rolled on `std::io` for the same reason as the TOML and JSON
//! codecs: this environment has no crates.io, and the service only
//! needs a small, well-policed subset — `Content-Length` and
//! `Transfer-Encoding: chunked` bodies, HTTP/1.1 keep-alive, and hard
//! limits on header and body size so a misbehaving client costs
//! bounded memory.
//!
//! The core is [`parse_request`], a pure incremental parser over a
//! byte buffer: it either yields a complete request plus the number of
//! bytes it consumed (so pipelined requests queued behind it survive),
//! reports that the buffer is still incomplete, or rejects the prefix
//! as malformed. The blocking [`read_request`] and the epoll event
//! loop both drive this one parser, so framing decisions — including
//! the request-smuggling rejections below — cannot drift between the
//! two connection planes.
//!
//! Smuggling-relevant framing is strict: duplicate `Content-Length`
//! headers, `Content-Length` combined with `Transfer-Encoding`, and
//! duplicate `Transfer-Encoding` headers are all rejected with 400
//! rather than resolved by picking one (picking the first is how
//! request-smuggling desyncs start).
//!
//! Parsing errors map onto the client-fault status codes the API
//! uses: 400 for malformed requests, 408 for timeouts, and 413 for
//! oversized ones.

use em_json::Json;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Resource limits applied while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Request line + headers, in bytes.
    pub max_header_bytes: usize,
    /// Decoded body, in bytes (scenario specs are a few KiB).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// What went wrong reading a request, as an HTTP status.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// 400: syntactically malformed request.
    BadRequest(String),
    /// 408: the socket read timed out mid-request.
    Timeout(String),
    /// 413: header block or body over the configured limit.
    TooLarge(String),
}

impl HttpError {
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::Timeout(_) => 408,
            HttpError::TooLarge(_) => 413,
        }
    }

    pub fn message(&self) -> &str {
        match self {
            HttpError::BadRequest(m) | HttpError::Timeout(m) | HttpError::TooLarge(m) => m,
        }
    }
}

/// Map an I/O error to the right HTTP fault: a socket timeout (either
/// `TimedOut` or, on platforms where `SO_RCVTIMEO` surfaces as EAGAIN,
/// `WouldBlock`) is 408; anything else is a malformed/torn request.
fn io_fault(context: &str, e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            HttpError::Timeout(format!("{context}: socket timeout"))
        }
        _ => HttpError::BadRequest(format!("{context}: {e}")),
    }
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    /// The request target as sent (path + optional query).
    pub target: String,
    /// Header names are lower-cased; values are trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Whether the connection may carry another request after this
    /// one: the HTTP/1.1 default unless the client sent
    /// `Connection: close` (or spoke HTTP/1.0 without
    /// `Connection: keep-alive`).
    pub keep_alive: bool,
}

impl Request {
    /// First header with this (case-insensitive) name. Framing headers
    /// (`content-length`, `transfer-encoding`) are validated to be
    /// unique during parsing, so "first" is never ambiguous for them.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

fn bad(msg: impl Into<String>) -> HttpError {
    HttpError::BadRequest(msg.into())
}

fn too_large(msg: impl Into<String>) -> HttpError {
    HttpError::TooLarge(msg.into())
}

/// Cursor over the incremental parse buffer, enforcing a shared byte
/// budget across the lines it extracts.
struct Lines<'a> {
    buf: &'a [u8],
    pos: usize,
    budget: usize,
}

enum Line<'a> {
    /// A complete line (terminator stripped, UTF-8 validated).
    Full(&'a str),
    /// The buffer ends before the line does; wait for more bytes.
    Partial,
}

impl<'a> Lines<'a> {
    fn new(buf: &'a [u8], pos: usize, budget: usize) -> Lines<'a> {
        Lines { buf, pos, budget }
    }

    /// Extract the next line (through CRLF or bare LF). A line that
    /// would exceed the remaining budget is 413 even before its
    /// terminator arrives, so an unterminated flood cannot buffer
    /// unbounded bytes.
    fn next_line(&mut self) -> Result<Line<'a>, HttpError> {
        let rest = &self.buf[self.pos..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            if rest.len() > self.budget {
                return Err(too_large("header block exceeds the configured limit"));
            }
            return Ok(Line::Partial);
        };
        let take = nl + 1;
        if take > self.budget {
            return Err(too_large("header block exceeds the configured limit"));
        }
        self.budget -= take;
        self.pos += take;
        let mut line = &rest[..nl];
        while line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        std::str::from_utf8(line)
            .map(Line::Full)
            .map_err(|_| bad("header line is not UTF-8"))
    }
}

/// Incrementally parse one request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` once a complete request is
/// framed — `consumed` is the exact byte length of the request, so any
/// pipelined bytes at `buf[consumed..]` belong to the next request.
/// Returns `Ok(None)` while the buffer holds only an incomplete
/// prefix. Malformed or oversized prefixes fail eagerly, even before
/// the request is complete.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Option<(Request, usize)>, HttpError> {
    let mut lines = Lines::new(buf, 0, limits.max_header_bytes);
    let request_line = match lines.next_line()? {
        Line::Full(l) => l,
        Line::Partial => return Ok(None),
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(bad(format!("malformed request line `{request_line}`"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported protocol version `{version}`")));
    }
    if !target.starts_with('/') {
        return Err(bad(format!("request target `{target}` is not a path")));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match lines.next_line()? {
            Line::Full(l) => l,
            Line::Partial => return Ok(None),
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(format!("malformed header line `{line}`")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(bad(format!("malformed header name `{name}`")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Framing headers must be unambiguous: a duplicated Content-Length,
    // a duplicated Transfer-Encoding, or the two combined is how a
    // front-end and back-end come to disagree about where a request
    // ends (request smuggling). Reject all of them outright.
    let count = |name: &str| headers.iter().filter(|(k, _)| k == name).count();
    let cl_count = count("content-length");
    let te_count = count("transfer-encoding");
    if cl_count > 1 {
        return Err(bad("duplicate content-length headers"));
    }
    if te_count > 1 {
        return Err(bad("duplicate transfer-encoding headers"));
    }
    if cl_count > 0 && te_count > 0 {
        return Err(bad(
            "content-length combined with transfer-encoding is ambiguous framing",
        ));
    }

    let req = Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
        keep_alive: false,
    };

    let (body, consumed) = match (
        req.header("transfer-encoding"),
        req.header("content-length"),
    ) {
        (Some(te), _) => {
            if !te.eq_ignore_ascii_case("chunked") {
                return Err(bad(format!("unsupported transfer encoding `{te}`")));
            }
            match parse_chunked_body(buf, lines.pos, limits)? {
                Some(parsed) => parsed,
                None => return Ok(None),
            }
        }
        (None, Some(cl)) => {
            let len: usize = cl
                .parse()
                .map_err(|_| bad(format!("malformed content length `{cl}`")))?;
            if len > limits.max_body_bytes {
                return Err(too_large(format!(
                    "declared body of {len} bytes exceeds the {}-byte limit",
                    limits.max_body_bytes
                )));
            }
            let start = lines.pos;
            if buf.len() < start + len {
                return Ok(None);
            }
            (buf[start..start + len].to_vec(), start + len)
        }
        (None, None) => (Vec::new(), lines.pos),
    };

    let keep_alive = connection_keep_alive(&req, version);
    Ok(Some((
        Request {
            body,
            keep_alive,
            ..req
        },
        consumed,
    )))
}

/// Keep-alive decision: the `Connection` header wins; otherwise
/// HTTP/1.1 defaults to keep-alive and HTTP/1.0 to close.
fn connection_keep_alive(req: &Request, version: &str) -> bool {
    if let Some(conn) = req.header("connection") {
        for token in conn.split(',') {
            let token = token.trim();
            if token.eq_ignore_ascii_case("close") {
                return false;
            }
            if token.eq_ignore_ascii_case("keep-alive") {
                return true;
            }
        }
    }
    version != "HTTP/1.0"
}

/// Incrementally decode a chunked body starting at `start`:
/// `<hex-size>[;ext]\r\n<bytes>\r\n` repeated, terminated by a
/// zero-size chunk and (possibly empty) trailers. Returns the decoded
/// body and the buffer offset just past the trailer terminator, or
/// `None` if the buffer ends mid-body.
fn parse_chunked_body(
    buf: &[u8],
    start: usize,
    limits: &Limits,
) -> Result<Option<(Vec<u8>, usize)>, HttpError> {
    let mut body = Vec::new();
    // Chunk-size lines and trailers share one generous budget so a
    // stream of empty extensions cannot spin forever.
    let mut lines = Lines::new(buf, start, limits.max_header_bytes);
    loop {
        let size_line = match lines.next_line()? {
            Line::Full(l) => l,
            Line::Partial => return Ok(None),
        };
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16)
            .map_err(|_| bad(format!("malformed chunk size `{size_line}`")))?;
        // Reject an absurd declared size before any arithmetic on it: a
        // chunk size near usize::MAX would overflow the `len + size`
        // check below and panic the handler instead of answering 413.
        if size > limits.max_body_bytes {
            return Err(too_large(format!(
                "declared chunk of {size} bytes exceeds the {}-byte limit",
                limits.max_body_bytes
            )));
        }
        if size == 0 {
            // Trailer section: header lines until the blank terminator.
            loop {
                match lines.next_line()? {
                    Line::Full("") => return Ok(Some((body, lines.pos))),
                    Line::Full(_) => continue,
                    Line::Partial => return Ok(None),
                }
            }
        }
        if body.len() + size > limits.max_body_bytes {
            return Err(too_large(format!(
                "chunked body exceeds the {}-byte limit",
                limits.max_body_bytes
            )));
        }
        let data_start = lines.pos;
        if buf.len() < data_start + size + 2 {
            return Ok(None);
        }
        body.extend_from_slice(&buf[data_start..data_start + size]);
        if &buf[data_start + size..data_start + size + 2] != b"\r\n" {
            return Err(bad("chunk data is not CRLF-terminated"));
        }
        lines.pos = data_start + size + 2;
    }
}

/// Read and decode one full request from a blocking reader. `Ok(None)`
/// means the peer closed the connection before sending anything.
///
/// This drives [`parse_request`] over an accumulating buffer, so the
/// blocking path and the event loop share identical framing.
pub fn read_request(r: &mut impl BufRead, limits: &Limits) -> Result<Option<Request>, HttpError> {
    let mut acc: Vec<u8> = Vec::new();
    loop {
        if let Some((req, _consumed)) = parse_request(&acc, limits)? {
            return Ok(Some(req));
        }
        let chunk = r.fill_buf().map_err(|e| io_fault("read failed", e))?;
        if chunk.is_empty() {
            return if acc.is_empty() {
                Ok(None)
            } else {
                Err(bad("connection closed mid-request"))
            };
        }
        let take = chunk.len();
        acc.extend_from_slice(chunk);
        r.consume(take);
    }
}

pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        408 => "Request Timeout",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response body: owned bytes, or a shared reference into the
/// content-addressed result store so large cached artifacts are served
/// without copying them per response.
#[derive(Clone, Debug)]
pub enum Body {
    Bytes(Vec<u8>),
    Shared(Arc<Vec<u8>>),
}

impl Body {
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Body::Bytes(b) => b,
            Body::Shared(b) => b,
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl From<Vec<u8>> for Body {
    fn from(b: Vec<u8>) -> Body {
        Body::Bytes(b)
    }
}

/// One response.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Body,
    /// Extra headers rendered after the fixed set (e.g. `Retry-After`
    /// on 429/503 so well-behaved clients back off instead of
    /// hammering).
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    pub fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: Body::Bytes(value.pretty().into_bytes()),
            headers: Vec::new(),
        }
    }

    /// A JSON error payload: `{"error": <message>}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &Json::obj(vec![("error", Json::str(message))]))
    }

    /// A plain-text body (the Prometheus exposition at `/metrics`).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: Body::Bytes(body.into_bytes()),
            headers: Vec::new(),
        }
    }

    /// Pre-rendered JSON bytes (the content-addressed artifacts).
    pub fn raw_json(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: Body::Bytes(body),
            headers: Vec::new(),
        }
    }

    /// Pre-rendered JSON shared with the result store — no per-response
    /// copy of the artifact bytes.
    pub fn shared_json(status: u16, body: Arc<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: Body::Shared(body),
            headers: Vec::new(),
        }
    }

    /// Builder: attach one extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Builder: advise the client to retry after `secs` (for 429/503).
    pub fn with_retry_after(self, secs: u64) -> Response {
        self.with_header("Retry-After", secs.to_string())
    }

    /// Render the full wire bytes (head + body). With
    /// `keep_alive: false` this is byte-identical to what the blocking
    /// path has always written — the bit-identity oracle between the
    /// two connection planes depends on that.
    pub fn render(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.body.len());
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            let _ = write!(out, "{name}: {value}\r\n");
        }
        let conn = if keep_alive { "keep-alive" } else { "close" };
        let _ = write!(out, "Connection: {conn}\r\n\r\n");
        out.extend_from_slice(self.body.as_slice());
        out
    }

    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&self.render(false))?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(raw.to_vec()), &Limits::default())
    }

    fn parse_with(raw: &[u8], limits: Limits) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(raw.to_vec()), &limits)
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"), "case-insensitive lookup");
        assert!(req.body.is_empty());
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_content_length_body_and_query() {
        let req = parse(b"POST /jobs?x=1 HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.path(), "/jobs");
        assert_eq!(req.target, "/jobs?x=1");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_chunked_body_with_extensions_and_trailers() {
        let raw = b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    4;ext=1\r\nname\r\n3\r\n = \r\n0\r\nX-Trailer: t\r\n\r\n";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.body, b"name = ");
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let req = parse(b"GET /stats HTTP/1.1\nHost: x\n\n").unwrap().unwrap();
        assert_eq!(req.path(), "/stats");
    }

    #[test]
    fn closed_connection_before_any_byte_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = parse(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!close.keep_alive);
        let old = parse(b"GET /x HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let old_ka = parse(b"GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(old_ka.keep_alive);
        let mixed = parse(b"GET /x HTTP/1.1\r\nConnection: close, TE\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!mixed.keep_alive, "close wins inside a token list");
    }

    #[test]
    fn incremental_parse_reports_incomplete_then_consumed() {
        let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /next";
        let limits = Limits::default();
        // Every strict prefix of the request itself is incomplete.
        let full = raw.len() - b"GET /next".len();
        for cut in 0..full {
            assert!(
                parse_request(&raw[..cut], &limits).unwrap().is_none(),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        // The complete request parses and leaves the pipelined bytes.
        let (req, consumed) = parse_request(raw, &limits).unwrap().unwrap();
        assert_eq!(req.body, b"hello");
        assert_eq!(consumed, full);
        assert_eq!(&raw[consumed..], b"GET /next");
    }

    #[test]
    fn incremental_parse_consumes_exact_chunked_length() {
        let raw = b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    4\r\nname\r\n0\r\n\r\nleftover";
        let (req, consumed) = parse_request(raw, &Limits::default()).unwrap().unwrap();
        assert_eq!(req.body, b"name");
        assert_eq!(&raw[consumed..], b"leftover");
    }

    #[test]
    fn smuggling_framing_conflicts_are_400() {
        for raw in [
            // Duplicate Content-Length, even when the values agree.
            b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello".as_slice(),
            // Conflicting Content-Length values.
            b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello".as_slice(),
            // Content-Length combined with Transfer-Encoding.
            b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nTransfer-Encoding: chunked\r\n\r\n\
              0\r\n\r\n"
                .as_slice(),
            // Same pair, opposite header order.
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 5\r\n\r\n\
              0\r\n\r\n"
                .as_slice(),
            // Duplicate Transfer-Encoding headers.
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\nTransfer-Encoding: chunked\r\n\r\n\
              0\r\n\r\n"
                .as_slice(),
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(
                err.status(),
                400,
                "{err:?} for {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn malformed_requests_are_400() {
        for raw in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET /x\r\n\r\n".as_slice(),
            b"GET /x SPDY/3\r\n\r\n".as_slice(),
            b"GET x HTTP/1.1\r\n\r\n".as_slice(),
            b"GET /x HTTP/1.1 extra\r\n\r\n".as_slice(),
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort".as_slice(),
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabXY".as_slice(),
            b"GET /x HTTP/1.1\r\nHost: x".as_slice(),
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(
                err.status(),
                400,
                "{err:?} for {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_requests_are_413() {
        let tight = Limits {
            max_header_bytes: 64,
            max_body_bytes: 8,
        };
        // Header block over budget.
        let raw = format!("GET /x HTTP/1.1\r\nBig: {}\r\n\r\n", "v".repeat(100));
        assert_eq!(parse_with(raw.as_bytes(), tight).unwrap_err().status(), 413);
        // An unterminated header flood is rejected at the same budget,
        // not buffered while waiting for a newline that never comes.
        let raw = format!("GET /x HTTP/1.1\r\nBig: {}", "v".repeat(100));
        assert_eq!(parse_with(raw.as_bytes(), tight).unwrap_err().status(), 413);
        // Declared body over budget (rejected before reading it).
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        assert_eq!(parse_with(raw, tight).unwrap_err().status(), 413);
        // Chunked body creeping over budget.
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    6\r\nabcdef\r\n6\r\nghijkl\r\n0\r\n\r\n";
        assert_eq!(parse_with(raw, tight).unwrap_err().status(), 413);
        // A near-usize::MAX chunk size must 413 cleanly, not overflow
        // the accounting arithmetic.
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    1\r\na\r\nffffffffffffffff\r\n";
        assert_eq!(parse_with(raw, tight).unwrap_err().status(), 413);
    }

    #[test]
    fn extra_headers_render_between_length_and_close() {
        let mut out = Vec::new();
        Response::error(429, "queue full")
            .with_retry_after(3)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 3\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n\r\n"), "{text}");
        let head = text.split("\r\n\r\n").next().unwrap();
        assert!(
            head.find("Retry-After").unwrap() < head.find("Connection").unwrap(),
            "extra headers precede the terminator: {head}"
        );
    }

    #[test]
    fn socket_timeouts_map_to_408() {
        struct TimesOut;
        impl std::io::Read for TimesOut {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "rcvtimeo",
                ))
            }
        }
        let mut r = std::io::BufReader::new(TimesOut);
        let err = read_request(&mut r, &Limits::default()).unwrap_err();
        assert_eq!(err.status(), 408, "{err:?}");
        assert!(matches!(err, HttpError::Timeout(_)));
    }

    #[test]
    fn responses_render_with_length_and_close() {
        let mut out = Vec::new();
        Response::error(429, "queue full")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert!(text.contains(&format!("Content-Length: {}\r\n", body.len())));
        assert_eq!(
            em_json::parse(body).unwrap().get("error").unwrap().as_str(),
            Some("queue full")
        );
    }

    #[test]
    fn render_keep_alive_differs_only_in_connection_header() {
        let resp = Response::error(404, "nope").with_header("X-Extra", "1");
        let close = String::from_utf8(resp.render(false)).unwrap();
        let ka = String::from_utf8(resp.render(true)).unwrap();
        assert!(close.contains("Connection: close\r\n\r\n"), "{close}");
        assert!(ka.contains("Connection: keep-alive\r\n\r\n"), "{ka}");
        assert_eq!(
            close.replace("Connection: close", "Connection: keep-alive"),
            ka,
            "rendering must differ only in the Connection header"
        );
    }

    #[test]
    fn shared_bodies_render_identically_to_owned() {
        let bytes = br#"{"artifact": true}"#.to_vec();
        let owned = Response::raw_json(200, bytes.clone()).render(false);
        let shared = Response::shared_json(200, Arc::new(bytes)).render(false);
        assert_eq!(owned, shared);
    }
}
