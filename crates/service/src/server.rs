//! The connection planes and the JSON API.
//!
//! | Route                  | Meaning                                        |
//! |------------------------|------------------------------------------------|
//! | `POST /jobs`           | submit a spec (TOML or compact JSON body)      |
//! | `GET /jobs/:id`        | job status                                     |
//! | `GET /jobs/:id/result` | the job's artifact (404/409/500 until `done`)  |
//! | `POST /jobs/:id/cancel`| cancel a queued or running job                 |
//! | `GET /results/:key`    | artifact by content key                        |
//! | `GET /healthz`         | liveness + capacity + build snapshot           |
//! | `GET /stats`           | the full counter set                           |
//! | `GET /metrics`         | Prometheus text exposition of the same counters|
//! | `POST /shutdown`       | request a drain (same as SIGTERM)              |
//!
//! Submissions answer `200 {"status": "cached"}` when the artifact
//! already exists, `202 {"status": "queued"|"coalesced"}` otherwise;
//! overload is `429`, a draining daemon `503`, malformed input `400`,
//! oversized input `413`. Both back-pressure statuses (429/503) carry
//! `Retry-After` so well-behaved clients pace their retries.
//!
//! Two connection planes share this one router:
//!
//! * [`ConnModel::EventLoop`] (the default on Linux) — the epoll event
//!   loop in [`crate::event_loop`]: non-blocking sockets, per-connection
//!   state machines, HTTP/1.1 keep-alive with pipelining, and a bounded
//!   connection count with accept backpressure.
//! * [`ConnModel::Blocking`] — the original thread-per-connection
//!   plane: one request per connection, every response carries
//!   `Connection: close`.
//!
//! Responses are rendered by the same code on both planes, so a given
//! request produces byte-identical bytes on either (the two-daemon
//! bit-identity oracle in the test suite holds old-loop vs new-loop).
//! Either way the heavyweight work happens on the scheduler's worker
//! pool; the connection plane only parses, routes, and writes.
//!
//! Every request gets a total wall-clock budget (`io_timeout_secs`)
//! from its first byte to its last: a client trickling one byte per
//! read-timeout window (slowloris) is answered 408 and counted in
//! `conn_timeouts` on both planes, instead of pinning a handler thread
//! or connection slot forever.

use crate::http::{read_request, HttpError, Limits, Request, Response};
use crate::scheduler::{
    job_name, parse_job_name, solve_runner, CancelError, CancelOutcome, ResultError, RunFn,
    Scheduler, SchedulerConfig, Submission, SubmitError,
};
use crate::stats::ServiceStats;
use crate::store::ResultStore;
use crate::submit::parse_submission;
use autotune::SharedTuneCache;
use em_faults::{ConnFault, FaultInjector, FaultPlan, SolveFault};
use em_json::Json;
use em_obs::Counter;
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which connection plane [`Server::run`] drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnModel {
    /// Non-blocking epoll event loop with keep-alive (Linux only;
    /// falls back to [`ConnModel::Blocking`] elsewhere).
    EventLoop,
    /// Thread-per-connection, one request per connection.
    Blocking,
}

impl Default for ConnModel {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            ConnModel::EventLoop
        } else {
            ConnModel::Blocking
        }
    }
}

impl std::str::FromStr for ConnModel {
    type Err = String;

    fn from_str(s: &str) -> Result<ConnModel, String> {
        match s {
            "event-loop" | "epoll" => Ok(ConnModel::EventLoop),
            "blocking" | "threaded" => Ok(ConnModel::Blocking),
            other => Err(format!(
                "unknown connection model `{other}` (expected `event-loop` or `blocking`)"
            )),
        }
    }
}

/// Everything `mwd serve` configures.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (printed on startup).
    pub addr: String,
    pub limits: Limits,
    pub scheduler: SchedulerConfig,
    /// Artifact directory (`None` = in-memory store only).
    pub store_dir: Option<PathBuf>,
    /// Tuning-cache file (`None` = in-memory cache for this daemon).
    pub cache_path: Option<PathBuf>,
    /// Total wall-clock budget per request, seconds — first byte to
    /// last byte, not per socket read (a stalled or trickling client
    /// must not pin a handler thread or connection slot forever).
    pub io_timeout_secs: u64,
    /// Connection plane: epoll event loop or thread-per-connection.
    pub conn_model: ConnModel,
    /// Concurrent-connection bound; accepts pause (backlog queues in
    /// the kernel) while at the cap instead of growing without bound.
    pub max_connections: usize,
    /// Deterministic fault-injection plan (`mwd serve --chaos`); `None`
    /// in production.
    pub chaos: Option<FaultPlan>,
    pub quiet: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7171".to_string(),
            limits: Limits::default(),
            scheduler: SchedulerConfig::default(),
            store_dir: None,
            cache_path: None,
            io_timeout_secs: 10,
            conn_model: ConnModel::default(),
            max_connections: 1024,
            chaos: None,
            quiet: false,
        }
    }
}

/// What a finished daemon reports (printed by `mwd serve`, asserted by
/// tests).
#[derive(Clone, Debug)]
pub struct ServiceSummary {
    pub requests: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub timed_out: u64,
    pub store_entries: usize,
    pub dedupe_rate: f64,
    /// Whether the tuning cache was written on shutdown.
    pub cache_saved: bool,
}

pub struct Server {
    pub(crate) listener: TcpListener,
    scheduler: Arc<Scheduler>,
    stats: Arc<ServiceStats>,
    store: Arc<ResultStore>,
    tune: SharedTuneCache,
    limits: Limits,
    io_timeout: Duration,
    conn_model: ConnModel,
    pub(crate) max_connections: usize,
    stop: Arc<AtomicBool>,
    pub(crate) quiet: bool,
    started: Instant,
    /// Resolved once at bind; `/healthz` reports it on every probe.
    git_rev: Arc<String>,
    /// The chaos injector, when this daemon runs under a fault plan.
    faults: Option<Arc<FaultInjector>>,
    /// Monotonic connection ordinal — the identity the connection-level
    /// fault site draws against, so a plan's drops are reproducible.
    pub(crate) conn_seq: Arc<AtomicU64>,
}

impl Server {
    /// Bind the listener and start the worker pool with the production
    /// solve runner.
    pub fn bind(cfg: &ServerConfig) -> Result<Server, String> {
        Server::bind_with_runner(cfg, Box::new(solve_runner))
    }

    /// [`Server::bind`] with an injected job runner — the seam the
    /// deterministic HTTP tests use to control job timing.
    pub fn bind_with_runner(
        cfg: &ServerConfig,
        run: Box<crate::scheduler::RunFn>,
    ) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set the listener non-blocking: {e}"))?;
        let store = Arc::new(match &cfg.store_dir {
            Some(dir) => ResultStore::open(dir)?,
            None => ResultStore::in_memory(),
        });
        let faults = cfg
            .chaos
            .as_ref()
            .map(|plan| Arc::new(FaultInjector::new(plan.clone())));
        let stats = Arc::new(ServiceStats::default());
        // Innermost → outermost: dist routing first (so a multi-worker
        // spec runs decomposed), then the chaos plan's solve-site
        // faults on top (so injected panics/slowdowns hit dist jobs
        // exactly like single-process ones).
        let run = dist_runner(stats.registry().clone(), faults.clone(), run);
        let run = match &faults {
            Some(inj) => {
                store.set_fault_injector(inj.clone());
                chaos_runner(inj.clone(), run)
            }
            None => run,
        };
        let tune = match &cfg.cache_path {
            Some(path) => SharedTuneCache::load(path)?,
            None => SharedTuneCache::in_memory(),
        };
        let scheduler = Scheduler::start(
            cfg.scheduler.clone(),
            store.clone(),
            tune.clone(),
            stats.clone(),
            run,
        )?;
        Ok(Server {
            listener,
            scheduler,
            stats,
            store,
            tune,
            limits: cfg.limits,
            io_timeout: Duration::from_secs(cfg.io_timeout_secs.max(1)),
            conn_model: cfg.conn_model,
            max_connections: cfg.max_connections.max(1),
            stop: Arc::new(AtomicBool::new(false)),
            quiet: cfg.quiet,
            started: Instant::now(),
            git_rev: Arc::new(em_obs::git_revision()),
            faults,
            conn_seq: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The chaos injector, when this daemon runs under a fault plan.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// The bound address (relevant with port 0).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("no local address: {e}"))
    }

    /// The flag that ends [`Server::run`]; hook it to signals with
    /// [`crate::shutdown::install`].
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// The connection plane this daemon runs.
    pub fn conn_model(&self) -> ConnModel {
        self.conn_model
    }

    /// The shared routing context both connection planes hand to
    /// [`route`].
    pub(crate) fn serve_ctx(&self) -> ServeCtx {
        ServeCtx {
            scheduler: self.scheduler.clone(),
            stats: self.stats.clone(),
            store: self.store.clone(),
            limits: self.limits,
            io_timeout: self.io_timeout,
            stop: self.stop.clone(),
            started: self.started,
            git_rev: self.git_rev.clone(),
            faults: self.faults.clone(),
        }
    }

    /// Serve until the stop flag is set, then drain and persist.
    pub fn run(&self) -> Result<ServiceSummary, String> {
        match self.conn_model {
            #[cfg(target_os = "linux")]
            ConnModel::EventLoop => crate::event_loop::run(self)?,
            #[cfg(not(target_os = "linux"))]
            ConnModel::EventLoop => self.run_blocking(),
            ConnModel::Blocking => self.run_blocking(),
        }
        self.scheduler.shutdown();
        let cache_saved = self.tune.save()?;
        Ok(ServiceSummary {
            requests: self.stats.requests.get(),
            completed: self.stats.completed.get(),
            failed: self.stats.failed.get(),
            cancelled: self.stats.cancelled.get(),
            timed_out: self.stats.timeout.get(),
            store_entries: self.store.len(),
            dedupe_rate: self.stats.dedupe_rate(),
            cache_saved,
        })
    }

    /// The thread-per-connection plane: accept until the stop flag is
    /// set, then join the handlers.
    fn run_blocking(&self) {
        let ctx = Arc::new(self.serve_ctx());
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            handles.retain(|h| !h.is_finished());
            if handles.len() >= self.max_connections {
                // At the connection cap: let the kernel backlog hold
                // new arrivals until a handler finishes.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let ctx = ctx.clone();
                    let ordinal = self.conn_seq.fetch_add(1, Ordering::SeqCst);
                    handles.push(std::thread::spawn(move || {
                        handle_connection(stream, &ctx, ordinal)
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    // Transient accept failures (ECONNABORTED, EMFILE
                    // under fd pressure, EINTR) must not tear the
                    // daemon down mid-flight — that would skip the
                    // drain, abandon running jobs, and lose the
                    // session's tuning work. Log, back off, keep
                    // serving; the stop flag remains the only exit.
                    if !self.quiet {
                        eprintln!("accept failed (continuing): {e}");
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        if !self.quiet {
            eprintln!("draining: waiting for handlers and in-flight jobs ...");
        }
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Route multi-process specs (`workers > 1`) through the z-slab dist
/// coordinator with in-process thread workers sharing this daemon's
/// metric registry (per-worker halo series on `GET /metrics`) and its
/// chaos injector (wire faults on the halo links). Single-worker specs
/// fall through to the wrapped runner untouched.
fn dist_runner(
    registry: Arc<em_obs::Registry>,
    faults: Option<Arc<FaultInjector>>,
    inner: Box<RunFn>,
) -> Box<RunFn> {
    Box::new(move |spec, threads, cancel| {
        if spec.workers > 1 {
            let opts = em_dist::DistOptions {
                workers: spec.workers,
                threads,
                launcher: em_dist::Launcher::Thread,
                cancel: cancel.clone(),
                registry: Some(registry.clone()),
                faults: faults.clone(),
                ..Default::default()
            };
            em_dist::run_dist(spec, &opts)
        } else {
            inner(spec, threads, cancel)
        }
    })
}

/// Wrap the real runner in the chaos plan's solve-site faults: an
/// injected panic exercises the worker's panic isolation, an injected
/// slowdown stretches the solve (checking the job's cancel token every
/// slice, so deadlines and drains stay responsive even while wedged).
fn chaos_runner(inj: Arc<FaultInjector>, inner: Box<RunFn>) -> Box<RunFn> {
    Box::new(move |spec, threads, cancel| {
        match inj.solve_fault(&spec.name) {
            SolveFault::Panic => panic!("injected: chaos panic for `{}`", spec.name),
            SolveFault::SlowMs(ms) => {
                let deadline = Instant::now() + Duration::from_millis(ms);
                while Instant::now() < deadline {
                    if let Some(err) = cancel.halt_error() {
                        return Err(err);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
            SolveFault::None => {}
        }
        inner(spec, threads, cancel)
    })
}

/// The shared routing context: everything [`route`] needs, identical
/// for the blocking plane and the event loop.
pub(crate) struct ServeCtx {
    pub(crate) scheduler: Arc<Scheduler>,
    pub(crate) stats: Arc<ServiceStats>,
    pub(crate) store: Arc<ResultStore>,
    pub(crate) limits: Limits,
    pub(crate) io_timeout: Duration,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) started: Instant,
    pub(crate) git_rev: Arc<String>,
    pub(crate) faults: Option<Arc<FaultInjector>>,
}

/// One routed response plus its accounting: which latency-histogram
/// series the exchange lands on, and the counter to bump only once the
/// bytes actually reach the client (so error/disconnect paths don't
/// inflate `results_served`).
pub(crate) struct Routed {
    pub(crate) response: Response,
    pub(crate) endpoint: &'static str,
    pub(crate) on_written: Option<Arc<Counter>>,
}

pub(crate) fn routed(endpoint: &'static str, response: Response) -> Routed {
    Routed {
        response,
        endpoint,
        on_written: None,
    }
}

/// A reader that enforces the total per-request wall-clock budget on
/// the blocking plane: each read's socket timeout is clamped to the
/// time remaining until the request deadline, so a client trickling a
/// byte per read window still runs out of budget (the slowloris fix —
/// `SO_RCVTIMEO` alone restarts the clock on every byte).
struct DeadlineStream {
    stream: TcpStream,
    deadline: Instant,
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining < Duration::from_millis(1) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request wall-clock budget exhausted",
            ));
        }
        self.stream.set_read_timeout(Some(remaining))?;
        self.stream.read(buf)
    }
}

fn handle_connection(stream: TcpStream, ctx: &ServeCtx, ordinal: u64) {
    let _ = stream.set_write_timeout(Some(ctx.io_timeout));
    let t0 = Instant::now();
    let mut reader = BufReader::new(DeadlineStream {
        stream: match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
        deadline: t0 + ctx.io_timeout,
    });
    let out = match read_request(&mut reader, &ctx.limits) {
        Ok(Some(req)) => {
            ServiceStats::bump(&ctx.stats.requests);
            route(&req, ctx)
        }
        // The peer closed without sending a byte: not a request.
        Ok(None) => return,
        Err(e) => {
            ServiceStats::bump(&ctx.stats.requests);
            ServiceStats::bump(if matches!(e, HttpError::Timeout(_)) {
                &ctx.stats.conn_timeouts
            } else {
                &ctx.stats.rejected_bad
            });
            routed("other", Response::error(e.status(), e.message()))
        }
    };
    let mut stream = stream;
    // Connection-level chaos: render the response but deliver only a
    // prefix, then drop the socket — the client sees a torn response
    // and must treat it as a failed exchange.
    if let Some(inj) = &ctx.faults {
        if inj.conn_fault(&format!("conn-{ordinal}")) == ConnFault::DropMid {
            let bytes = out.response.render(false);
            let _ = stream.write_all(&bytes[..bytes.len() / 2]);
            let _ = stream.flush();
            ctx.stats
                .latency(out.endpoint)
                .observe(t0.elapsed().as_secs_f64());
            return;
        }
    }
    if out.response.write_to(&mut stream).is_ok() {
        if let Some(counter) = &out.on_written {
            counter.inc();
        }
    }
    ctx.stats
        .latency(out.endpoint)
        .observe(t0.elapsed().as_secs_f64());
}

pub(crate) fn route(req: &Request, ctx: &ServeCtx) -> Routed {
    let segments: Vec<&str> = req.path().split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => routed("/healthz", healthz(ctx)),
        ("GET", ["stats"]) => routed("/stats", stats_doc(ctx)),
        ("GET", ["metrics"]) => routed("/metrics", metrics(ctx)),
        ("POST", ["jobs"]) => routed("/jobs", submit(req, ctx)),
        ("GET", ["jobs", id]) => routed("/jobs/:id", job_status(id, ctx)),
        ("POST", ["jobs", id, "cancel"]) => routed("/jobs/:id/cancel", cancel_job(id, ctx)),
        ("GET", ["jobs", id, "result"]) => {
            let (response, served) = job_result(id, ctx);
            Routed {
                response,
                endpoint: "/jobs/:id/result",
                on_written: served.then(|| ctx.stats.results_served.clone()),
            }
        }
        ("GET", ["results", key]) => {
            let (response, served) = result_by_key(key, ctx);
            Routed {
                response,
                endpoint: "/results/:key",
                on_written: served.then(|| ctx.stats.results_served.clone()),
            }
        }
        ("POST", ["shutdown"]) => {
            ctx.stop.store(true, Ordering::SeqCst);
            routed(
                "/shutdown",
                Response::json(
                    200,
                    &Json::obj(vec![("status", Json::str("shutting-down"))]),
                ),
            )
        }
        (
            m,
            ["jobs"] | ["healthz"] | ["stats"] | ["metrics"] | ["shutdown"] | ["jobs", _, "cancel"],
        ) => routed(
            "other",
            Response::error(405, &format!("method `{m}` not allowed here")),
        ),
        _ => routed(
            "other",
            Response::error(404, &format!("no route for {} {}", req.method, req.path())),
        ),
    }
}

fn healthz(ctx: &ServeCtx) -> Response {
    let (queued, running, records) = ctx.scheduler.queue_counts();
    Response::json(
        200,
        &Json::obj(vec![
            ("status", Json::str("ok")),
            (
                "uptime_secs",
                Json::Num(ctx.started.elapsed().as_secs_f64()),
            ),
            ("git_rev", Json::str(ctx.git_rev.as_str())),
            ("isa", Json::str(em_kernels::active_isa().name())),
            ("queued", Json::Int(queued as i64)),
            ("running", Json::Int(running as i64)),
            ("records", Json::Int(records as i64)),
            ("workers", Json::Int(ctx.scheduler.workers as i64)),
            (
                "threads_per_job",
                Json::Int(ctx.scheduler.threads_per_job as i64),
            ),
            ("budget", Json::Int(ctx.scheduler.budget_total as i64)),
            ("queue_depth", Json::Int(ctx.scheduler.queue_depth as i64)),
        ]),
    )
}

fn stats_doc(ctx: &ServeCtx) -> Response {
    let (queued, running, records) = ctx.scheduler.queue_counts();
    let (store_hits, store_misses) = ctx.store.counters();
    let mut doc = ctx.stats.to_json();
    doc.set("queued", Json::Int(queued as i64));
    doc.set("running", Json::Int(running as i64));
    doc.set("records", Json::Int(records as i64));
    doc.set(
        "store",
        Json::obj(vec![
            ("entries", Json::Int(ctx.store.len() as i64)),
            ("lookup_hits", Json::Int(store_hits as i64)),
            ("lookup_misses", Json::Int(store_misses as i64)),
        ]),
    );
    doc.set("budget", Json::Int(ctx.scheduler.budget_total as i64));
    doc.set("fingerprint", Json::str(ctx.scheduler.fingerprint()));
    Response::json(200, &doc)
}

/// The Prometheus exposition. Counters render straight off the shared
/// registry; point-in-time values (queue depth, leases, store size) are
/// read from their owners at scrape time and published as gauges rather
/// than double-booked as counters.
fn metrics(ctx: &ServeCtx) -> Response {
    let reg = ctx.stats.registry();
    let (queued, running, records) = ctx.scheduler.queue_counts();
    reg.gauge("em_queue_depth", "Jobs waiting in the queue.", &[])
        .set(queued as f64);
    reg.gauge("em_jobs_in_flight", "Jobs running right now.", &[])
        .set(running as f64);
    reg.gauge(
        "em_job_records",
        "Job records retained for GET /jobs/:id.",
        &[],
    )
    .set(records as f64);
    reg.gauge("em_store_entries", "Artifacts in the result store.", &[])
        .set(ctx.store.len() as f64);
    let (store_hits, store_misses) = ctx.store.counters();
    reg.gauge(
        "em_store_lookups",
        "Result-store lookups since start, by outcome.",
        &[("result", "hit")],
    )
    .set(store_hits as f64);
    reg.gauge(
        "em_store_lookups",
        "Result-store lookups since start, by outcome.",
        &[("result", "miss")],
    )
    .set(store_misses as f64);
    reg.gauge(
        "em_store_quarantined",
        "Artifacts quarantined for failing integrity verification.",
        &[],
    )
    .set(ctx.store.quarantined() as f64);
    if let Some(inj) = &ctx.faults {
        let c = inj.counts();
        for (site, n) in [
            ("panic", c.panics),
            ("slow", c.slows),
            ("disk_error", c.disk_errors),
            ("truncate", c.truncates),
            ("bit_flip", c.bit_flips),
            ("conn_drop", c.conn_drops),
        ] {
            reg.gauge(
                "em_injected_faults",
                "Faults injected so far by the chaos plan, by site.",
                &[("site", site)],
            )
            .set(n as f64);
        }
    }
    let in_use = ctx.stats.threads_in_use.load(Ordering::SeqCst) as f64;
    let peak = ctx.stats.peak_threads_in_use.load(Ordering::SeqCst) as f64;
    reg.gauge(
        "em_threads_in_use",
        "Engine threads currently leased by running jobs.",
        &[],
    )
    .set(in_use);
    reg.gauge(
        "em_threads_in_use_peak",
        "High-water mark of leased engine threads.",
        &[],
    )
    .set(peak);
    let budget = ctx.scheduler.budget_total as f64;
    reg.gauge(
        "em_worker_utilization",
        "Fraction of the engine-thread budget currently leased.",
        &[],
    )
    .set(if budget > 0.0 { in_use / budget } else { 0.0 });
    reg.gauge(
        "em_uptime_seconds",
        "Seconds since the daemon bound its listener.",
        &[],
    )
    .set(ctx.started.elapsed().as_secs_f64());
    Response::text(200, reg.render())
}

fn submit(req: &Request, ctx: &ServeCtx) -> Response {
    let submission = match parse_submission(&req.body) {
        Ok(s) => s,
        Err(e) => {
            ServiceStats::bump(&ctx.stats.rejected_bad);
            return Response::error(400, &e);
        }
    };
    match ctx
        .scheduler
        .submit_with_deadline(submission.spec, submission.deadline_ms)
    {
        Ok(Submission::Cached { key }) => Response::json(
            200,
            &Json::obj(vec![
                ("status", Json::str("cached")),
                ("key", Json::str(&key)),
                ("result", Json::str(format!("/results/{key}"))),
            ]),
        ),
        Ok(Submission::Coalesced { job, key }) => Response::json(
            202,
            &Json::obj(vec![
                ("status", Json::str("coalesced")),
                ("job", Json::str(job_name(job))),
                ("key", Json::str(&key)),
            ]),
        ),
        Ok(Submission::Queued { job, key }) => Response::json(
            202,
            &Json::obj(vec![
                ("status", Json::str("queued")),
                ("job", Json::str(job_name(job))),
                ("key", Json::str(&key)),
            ]),
        ),
        Err(SubmitError::Invalid(e)) => {
            ServiceStats::bump(&ctx.stats.rejected_bad);
            Response::error(400, &e)
        }
        Err(SubmitError::Overloaded { queue_depth }) => Response::error(
            429,
            &format!("queue is at its {queue_depth}-job capacity; retry later"),
        )
        .with_retry_after(1),
        Err(SubmitError::ShuttingDown) => {
            Response::error(503, "daemon is draining").with_retry_after(5)
        }
        Err(SubmitError::Internal(e)) => Response::error(500, &e),
    }
}

fn cancel_job(name: &str, ctx: &ServeCtx) -> Response {
    let Some(id) = parse_job_name(name) else {
        return Response::error(400, &format!("malformed job id `{name}`"));
    };
    match ctx.scheduler.cancel_job(id) {
        Ok(outcome) => Response::json(
            202,
            &Json::obj(vec![
                ("job", Json::str(job_name(id))),
                (
                    "status",
                    Json::str(match outcome {
                        CancelOutcome::Cancelled => "cancelled",
                        CancelOutcome::Cancelling => "cancelling",
                    }),
                ),
            ]),
        ),
        Err(CancelError::UnknownJob) => Response::error(404, &format!("unknown job `{name}`")),
        Err(CancelError::AlreadyFinished(state)) => Response::error(
            409,
            &format!(
                "job `{name}` already finished as `{}`; nothing to cancel",
                state.as_str()
            ),
        ),
    }
}

fn job_status(name: &str, ctx: &ServeCtx) -> Response {
    let Some(id) = parse_job_name(name) else {
        return Response::error(400, &format!("malformed job id `{name}`"));
    };
    match ctx.scheduler.job_json(id) {
        Some(doc) => Response::json(200, &doc),
        None => Response::error(404, &format!("unknown job `{name}`")),
    }
}

/// The bool marks a result payload whose `results_served` increment is
/// deferred until the bytes are confirmed written (see [`Routed`]).
fn job_result(name: &str, ctx: &ServeCtx) -> (Response, bool) {
    let Some(id) = parse_job_name(name) else {
        return (
            Response::error(400, &format!("malformed job id `{name}`")),
            false,
        );
    };
    let response = match ctx.scheduler.result_bytes(id) {
        // The artifact is shared straight out of the store — no
        // per-response copy of the bytes.
        Ok(bytes) => return (Response::shared_json(200, bytes), true),
        Err(ResultError::UnknownJob) => Response::error(404, &format!("unknown job `{name}`")),
        Err(ResultError::NotReady(state)) => Response::error(
            409,
            &format!("job `{name}` is {}; poll until done", state.as_str()),
        ),
        Err(ResultError::JobFailed(e)) => Response::error(500, &e),
        Err(ResultError::Missing) => {
            Response::error(500, &format!("artifact for `{name}` is missing"))
        }
    };
    (response, false)
}

fn result_by_key(key: &str, ctx: &ServeCtx) -> (Response, bool) {
    if !crate::hash::is_key(key) {
        return (
            Response::error(400, &format!("malformed result key `{key}`")),
            false,
        );
    }
    match ctx.store.get(key) {
        Some(bytes) => (Response::shared_json(200, bytes), true),
        None => (
            Response::error(404, &format!("no stored result under `{key}`")),
            false,
        ),
    }
}
