//! `loadgen` — hammer a running `mwd serve` daemon with a concurrent
//! mixed workload and report latency percentiles + dedupe hit rate.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--concurrency C]
//!         [--dup-ratio R] [--scenario BUILTIN | --spec FILE | --gen-mix MIX]
//!         [--engine KIND] [--max-periods M] [--deadline-ms D] [--seed S]
//!         [--retries K] [--allow-failures]
//!         [--report FILE] [--min-dedupe-hits K] [--shutdown] [--quiet]
//!         [--sustained-secs S [--connections N] [--keepalive]
//!          [--pipeline D] [--min-rps F]]
//! ```
//!
//! The workload is `N` submissions drawn from a pool of
//! `U = max(1, N * (1 - R))` distinct spec variants (the base scenario
//! with per-variant `lambda_nm`, or — with `--gen-mix` — generated
//! scenarios drawn from a weighted family mix), shuffled
//! deterministically by `--seed`. With `R = 0.5`, half the requests repeat an earlier spec —
//! the daemon should answer those from the result store (or coalesce
//! them onto the in-flight job) without solving.
//!
//! Every completed request fetches its artifact and the bytes are
//! compared per variant: a cached result that differs from the first
//! solve of the same variant is counted as a mismatch and fails the
//! run. The summary (and `--report`, merged into `BENCH_results.json`
//! under the `loadgen` key) therefore certifies both the hit rate and
//! bit-identical serving.
//!
//! With `--sustained-secs S` the mixed workload is replaced by a
//! sustained-throughput benchmark on one *cached* artifact: warm a
//! single variant to the result store, then hammer `GET /results/:key`
//! for `S` seconds per phase. The first phase opens a fresh connection
//! per request (the per-connection baseline); with `--keepalive`, a
//! second phase holds `--connections` persistent HTTP/1.1 connections
//! open, each with up to `--pipeline` requests in flight. Every
//! response is byte-verified against the warmed artifact, and the
//! report (under the separate `loadgen_sustained` key) records both
//! phases plus the keep-alive speedup.

use em_json::Json;
use em_obs::{Histogram, HistogramSnapshot};
use em_scenarios::gen::{generate, splitmix64, Family, GenParams};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "loadgen — concurrent load generator for `mwd serve`

OPTIONS:
    --addr <host:port>     daemon address (default 127.0.0.1:7171)
    --requests <n>         total submissions (default 20)
    --concurrency <c>      client threads (default 4)
    --dup-ratio <r>        fraction of requests repeating an earlier
                           spec, 0..=1 (default 0.5)
    --scenario <builtin>   base catalog scenario (default vacuum-slab)
    --spec <file>          base scenario TOML file (overrides --scenario)
    --gen-mix <mix>        draw variants from the scenario generators
                           instead: `family:weight,...` over
                           multilayer|rough-interface|nanoparticle|nanowire
                           (weight defaults to 1); overrides --scenario
                           and --spec
    --engine <kind>        engine override sent with every request
    --max-periods <m>      per-request convergence cap (default 1)
    --deadline-ms <d>      per-request job deadline sent with every
                           submission (default: none)
    --seed <s>             workload shuffle seed (default 7)
    --retries <k>          bounded retries per request on 429/503 or a
                           torn connection, paced by Retry-After when
                           present and decorrelated jitter otherwise
                           (default 0)
    --allow-failures       report failures/timeouts without failing the
                           run (result mismatches still fail it)
    --report <file>        merge the report into this JSON file
                           (default results/BENCH_results.json)
    --min-dedupe-hits <k>  exit 1 if fewer requests were deduped
    --shutdown             POST /shutdown when done
    --quiet                suppress per-request lines

SUSTAINED MODE (cached-result throughput):
    --sustained-secs <s>   replace the mixed workload: warm one variant
                           into the result store, then hammer its
                           `GET /results/:key` for <s> seconds per
                           phase, byte-verifying every response
    --connections <n>      client connections per phase
                           (default: --concurrency)
    --keepalive            add a second phase over persistent HTTP/1.1
                           connections (vs the connect-per-request
                           baseline) and report the speedup
    --pipeline <d>         pipelined requests in flight per keep-alive
                           connection (default 1)
    --min-rps <f>          exit 1 if the best phase's throughput is
                           below this floor
";

struct Opts {
    addr: String,
    requests: usize,
    concurrency: usize,
    dup_ratio: f64,
    scenario: String,
    spec_file: Option<PathBuf>,
    gen_mix: Vec<(Family, f64)>,
    engine: Option<String>,
    max_periods: usize,
    deadline_ms: Option<u64>,
    seed: u64,
    retries: u32,
    allow_failures: bool,
    report: PathBuf,
    min_dedupe_hits: Option<usize>,
    shutdown: bool,
    quiet: bool,
    sustained_secs: Option<u64>,
    connections: Option<usize>,
    keepalive: bool,
    pipeline: usize,
    min_rps: Option<f64>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        addr: "127.0.0.1:7171".to_string(),
        requests: 20,
        concurrency: 4,
        dup_ratio: 0.5,
        scenario: "vacuum-slab".to_string(),
        spec_file: None,
        gen_mix: Vec::new(),
        engine: None,
        max_periods: 1,
        deadline_ms: None,
        seed: 7,
        retries: 0,
        allow_failures: false,
        report: PathBuf::from("results/BENCH_results.json"),
        min_dedupe_hits: None,
        shutdown: false,
        quiet: false,
        sustained_secs: None,
        connections: None,
        keepalive: false,
        pipeline: 1,
        min_rps: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--addr" => o.addr = value("--addr")?,
            "--requests" => o.requests = parse_count(&value("--requests")?, "--requests")?,
            "--concurrency" => {
                o.concurrency = parse_count(&value("--concurrency")?, "--concurrency")?
            }
            "--dup-ratio" => {
                o.dup_ratio = value("--dup-ratio")?
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or("--dup-ratio needs a number in 0..=1")?
            }
            "--scenario" => o.scenario = value("--scenario")?,
            "--spec" => o.spec_file = Some(PathBuf::from(value("--spec")?)),
            "--gen-mix" => o.gen_mix = parse_gen_mix(&value("--gen-mix")?)?,
            "--engine" => o.engine = Some(value("--engine")?),
            "--max-periods" => {
                o.max_periods = parse_count(&value("--max-periods")?, "--max-periods")?
            }
            "--deadline-ms" => {
                o.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse::<u64>()
                        .ok()
                        .filter(|&d| d >= 1)
                        .ok_or("--deadline-ms needs a positive integer")?,
                )
            }
            "--seed" => {
                o.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer")?
            }
            "--retries" => {
                o.retries = value("--retries")?
                    .parse()
                    .map_err(|_| "--retries needs a non-negative integer")?
            }
            "--allow-failures" => o.allow_failures = true,
            "--report" => o.report = PathBuf::from(value("--report")?),
            "--min-dedupe-hits" => {
                o.min_dedupe_hits = Some(
                    value("--min-dedupe-hits")?
                        .parse()
                        .map_err(|_| "--min-dedupe-hits needs an integer")?,
                )
            }
            "--shutdown" => o.shutdown = true,
            "--quiet" => o.quiet = true,
            "--sustained-secs" => {
                o.sustained_secs = Some(
                    value("--sustained-secs")?
                        .parse::<u64>()
                        .ok()
                        .filter(|&s| s >= 1)
                        .ok_or("--sustained-secs needs a positive integer")?,
                )
            }
            "--connections" => {
                o.connections = Some(parse_count(&value("--connections")?, "--connections")?)
            }
            "--keepalive" => o.keepalive = true,
            "--pipeline" => {
                o.pipeline = value("--pipeline")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&d| d >= 1)
                    .ok_or("--pipeline needs a positive integer")?
            }
            "--min-rps" => {
                o.min_rps = Some(
                    value("--min-rps")?
                        .parse::<f64>()
                        .ok()
                        .filter(|f| f.is_finite() && *f > 0.0)
                        .ok_or("--min-rps needs a positive number")?,
                )
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`; try --help")),
        }
    }
    if o.requests == 0 {
        return Err("--requests must be positive".to_string());
    }
    if o.concurrency == 0 {
        return Err("--concurrency must be positive".to_string());
    }
    if o.sustained_secs.is_none()
        && (o.keepalive || o.connections.is_some() || o.pipeline != 1 || o.min_rps.is_some())
    {
        return Err(
            "--connections/--keepalive/--pipeline/--min-rps need --sustained-secs".to_string(),
        );
    }
    if o.connections == Some(0) {
        return Err("--connections must be positive".to_string());
    }
    Ok(o)
}

fn parse_count(s: &str, flag: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("{flag} needs a non-negative integer"))
}

/// Parse `family[:weight],...` into a weighted family list.
fn parse_gen_mix(s: &str) -> Result<Vec<(Family, f64)>, String> {
    let known = || {
        Family::ALL
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut mix = Vec::new();
    for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (name, weight) = match part.split_once(':') {
            Some((n, w)) => {
                let w: f64 = w
                    .parse()
                    .ok()
                    .filter(|w: &f64| w.is_finite() && *w > 0.0)
                    .ok_or_else(|| format!("--gen-mix weight for `{n}` must be positive"))?;
                (n.trim(), w)
            }
            None => (part, 1.0),
        };
        let family = Family::from_name(name)
            .ok_or_else(|| format!("--gen-mix: unknown family `{name}` (known: {})", known()))?;
        if mix.iter().any(|(f, _)| *f == family) {
            return Err(format!("--gen-mix lists `{name}` twice"));
        }
        mix.push((family, weight));
    }
    if mix.is_empty() {
        return Err(format!(
            "--gen-mix needs `family[:weight],...` (known: {})",
            known()
        ));
    }
    Ok(mix)
}

/// Deterministic weighted family pick for one variant index.
fn pick_family(mix: &[(Family, f64)], seed: u64, variant: usize) -> Family {
    let mut state = seed ^ (variant as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let draw = (splitmix64(&mut state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut acc = 0.0;
    for (family, w) in mix {
        acc += w / total;
        if draw < acc {
            return *family;
        }
    }
    mix.last().unwrap().0
}

/// One parsed HTTP exchange: status, body, and the `Retry-After` advice
/// (seconds) when the daemon sent one.
struct Exchange {
    status: u16,
    payload: String,
    retry_after: Option<u64>,
}

/// One blocking HTTP exchange (the daemon closes after each response).
/// A response whose declared `Content-Length` does not match the bytes
/// actually received (a torn connection) is an error, never a payload.
fn http(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> Result<Exchange, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("send {method} {path}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read {method} {path}: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response to {method} {path}: {text:.60}"))?;
    let Some((header, payload)) = text.split_once("\r\n\r\n") else {
        return Err(format!("truncated response to {method} {path}"));
    };
    let header_value = |name: &str| {
        header.lines().find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
        })
    };
    if let Some(declared) = header_value("content-length").and_then(|v| v.parse::<usize>().ok()) {
        if payload.len() < declared {
            return Err(format!(
                "torn response to {method} {path}: {} of {declared} body bytes",
                payload.len()
            ));
        }
    }
    Ok(Exchange {
        status,
        payload: payload.to_string(),
        retry_after: header_value("retry-after").and_then(|v| v.parse().ok()),
    })
}

struct RequestOutcome {
    variant: usize,
    /// "cached" | "coalesced" | "queued" | "http-<status>" | error text.
    status: String,
    submit_ms: f64,
    total_ms: f64,
    result_bytes: Option<String>,
    failed: bool,
    /// Submit retries this request spent (torn connections, 429/503).
    retries: u32,
    /// The request exhausted its retries against 429/503 back-pressure.
    shed: bool,
    /// The job ended in the `timeout` terminal state.
    timed_out: bool,
}

/// Decorrelated-jitter backoff (AWS-style): each sleep is drawn
/// uniformly from `[base, prev * 3]`, capped — so concurrent clients
/// de-synchronize instead of retrying in lockstep. An explicit
/// `Retry-After` from the daemon overrides the draw.
fn backoff_ms(rng_state: &mut u64, prev_ms: u64, retry_after: Option<u64>) -> u64 {
    const BASE_MS: u64 = 25;
    const CAP_MS: u64 = 2_000;
    if let Some(secs) = retry_after {
        return (secs * 1_000).clamp(BASE_MS, CAP_MS);
    }
    let hi = (prev_ms.max(BASE_MS) * 3).min(CAP_MS);
    let r = (splitmix64(rng_state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    BASE_MS + (r * (hi - BASE_MS) as f64) as u64
}

/// Nearest-rank percentile over *sorted* exact samples. Returns 0 for
/// an empty set.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// A latency distribution as JSON: exact-sample percentiles plus the
/// cumulative log2 buckets (same layout `/metrics` exposes), so the
/// report carries the whole shape, not three points of it. The
/// percentiles are nearest-rank over the recorded samples — the log2
/// buckets are too coarse for quantiles (interpolating within a
/// power-of-two bucket can overstate p50 by up to 2x), so they only
/// describe the shape; `method` labels how the three points were
/// computed. Zero-delta buckets are elided — cumulative counts make
/// them redundant.
fn latency_doc(sorted_samples: &[f64], snap: &HistogramSnapshot) -> Json {
    let mut buckets = Vec::new();
    let mut cum = 0u64;
    for (i, &c) in snap.counts.iter().enumerate() {
        cum += c;
        if c == 0 {
            continue;
        }
        let le = match snap.bounds.get(i) {
            Some(&b) => Json::Num(b),
            None => Json::str("+Inf"),
        };
        buckets.push(Json::obj(vec![
            ("le", le),
            ("cum_count", Json::Int(cum as i64)),
        ]));
    }
    Json::obj(vec![
        ("p50", Json::Num(percentile(sorted_samples, 0.50))),
        ("p90", Json::Num(percentile(sorted_samples, 0.90))),
        ("p99", Json::Num(percentile(sorted_samples, 0.99))),
        ("method", Json::str("exact_samples")),
        ("count", Json::Int(snap.count() as i64)),
        ("sum", Json::Num(snap.sum)),
        ("buckets", Json::Arr(buckets)),
    ])
}

fn drive_one(o: &Opts, body: &str, variant: usize, request_index: usize) -> RequestOutcome {
    let t0 = Instant::now();
    let mut out = RequestOutcome {
        variant,
        status: String::new(),
        submit_ms: 0.0,
        total_ms: 0.0,
        result_bytes: None,
        failed: false,
        retries: 0,
        shed: false,
        timed_out: false,
    };
    let fail = |out: &mut RequestOutcome, msg: String| {
        out.status = msg;
        out.failed = true;
        out.total_ms = t0.elapsed().as_secs_f64() * 1e3;
    };
    // Submit, with bounded retries: 429/503 are explicit back-pressure
    // (honor Retry-After), a torn connection is worth re-asking since
    // submissions are idempotent by content key.
    let mut rng_state = o
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(request_index as u64);
    let mut prev_sleep = 0u64;
    let mut attempt = 0u32;
    let ex = loop {
        let (retryable, retry_after, last_err) =
            match http(&o.addr, "POST", "/jobs", Some(body.as_bytes())) {
                Ok(ex) if ex.status == 429 || ex.status == 503 => {
                    (true, ex.retry_after, format!("http-{}", ex.status))
                }
                Ok(ex) => break ex,
                Err(e) => (true, None, e),
            };
        debug_assert!(retryable);
        if attempt >= o.retries {
            out.shed = last_err.starts_with("http-");
            fail(&mut out, last_err);
            return out;
        }
        attempt += 1;
        out.retries = attempt;
        prev_sleep = backoff_ms(&mut rng_state, prev_sleep, retry_after);
        std::thread::sleep(Duration::from_millis(prev_sleep));
    };
    out.submit_ms = t0.elapsed().as_secs_f64() * 1e3;
    let doc = em_json::parse(&ex.payload).unwrap_or(Json::Null);
    if ex.status != 200 && ex.status != 202 {
        fail(&mut out, format!("http-{}", ex.status));
        return out;
    }
    out.status = doc
        .get("status")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();

    // Resolve to artifact bytes: straight from the store for `cached`,
    // else poll the job to completion. Poll exchanges that tear or
    // error are retried within the deadline — transient connection
    // faults must not fail a job that is still running fine.
    let result_path = if out.status == "cached" {
        match doc.get("result").and_then(Json::as_str) {
            Some(p) => p.to_string(),
            None => {
                fail(&mut out, "cached response without result path".into());
                return out;
            }
        }
    } else {
        let Some(job) = doc.get("job").and_then(Json::as_str).map(str::to_string) else {
            fail(&mut out, "queued response without job id".into());
            return out;
        };
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if Instant::now() > deadline {
                fail(&mut out, format!("{job} did not finish in 120s"));
                return out;
            }
            match http(&o.addr, "GET", &format!("/jobs/{job}"), None) {
                Ok(ex) if ex.status == 200 => {
                    let state = em_json::parse(&ex.payload)
                        .ok()
                        .and_then(|d| d.get("state").map(|s| s.as_str().unwrap_or("").to_string()))
                        .unwrap_or_default();
                    match state.as_str() {
                        "done" => break,
                        "failed" | "cancelled" | "timeout" => {
                            out.timed_out = state == "timeout";
                            fail(&mut out, format!("{job} ended {state}"));
                            return out;
                        }
                        _ => std::thread::sleep(Duration::from_millis(25)),
                    }
                }
                Ok(ex) => {
                    fail(&mut out, format!("poll {job}: http-{}", ex.status));
                    return out;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        format!("/jobs/{job}/result")
    };
    // The artifact fetch also retries torn connections: the result is
    // immutable once stored, so re-reading is always safe.
    let fetch_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match http(&o.addr, "GET", &result_path, None) {
            Ok(ex) if ex.status == 200 => {
                out.result_bytes = Some(ex.payload);
                break;
            }
            Ok(ex) => {
                fail(&mut out, format!("fetch {result_path}: http-{}", ex.status));
                return out;
            }
            Err(e) => {
                if Instant::now() > fetch_deadline {
                    fail(&mut out, e);
                    return out;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    out.total_ms = t0.elapsed().as_secs_f64() * 1e3;
    out
}

/// The submission body for one variant index. With --gen-mix, the
/// variant is a generated scenario: family from the weighted mix,
/// generator seed derived from (--seed, variant), so the pool is
/// deterministic and duplicates dedupe by content.
fn variant_body(
    o: &Opts,
    base_toml: &Option<String>,
    family_counts: &mut HashMap<&'static str, usize>,
    v: usize,
) -> Result<String, String> {
    let mut pairs = vec![];
    if o.gen_mix.is_empty() {
        match base_toml {
            Some(t) => pairs.push(("toml", Json::str(t.clone()))),
            None => pairs.push(("builtin", Json::str(&o.scenario))),
        }
        pairs.push(("lambda_nm", Json::Num(550.0 + 7.0 * v as f64)));
    } else {
        let family = pick_family(&o.gen_mix, o.seed, v);
        let spec = generate(family, o.seed.wrapping_add(v as u64), &GenParams::tiny())
            .map_err(|e| format!("--gen-mix variant {v}: {e}"))?;
        *family_counts.entry(family.name()).or_insert(0) += 1;
        pairs.push(("toml", Json::str(spec.to_toml_string())));
    }
    if let Some(kind) = &o.engine {
        pairs.push(("engine", Json::str(kind)));
    }
    pairs.push(("max_periods", Json::Int(o.max_periods as i64)));
    if let Some(d) = o.deadline_ms {
        pairs.push(("deadline_ms", Json::Int(d as i64)));
    }
    Ok(Json::obj(pairs).compact())
}

/// Health check before loading. The probe itself can hit an injected
/// connection drop under `--chaos`, so it gets the same bounded
/// retries as a submission.
fn probe_health(o: &Opts) -> Result<(), String> {
    let mut probe = 0u32;
    let hs = loop {
        match http(&o.addr, "GET", "/healthz", None) {
            Ok(x) => break x.status,
            Err(e) if probe < o.retries.max(2) => {
                probe += 1;
                std::thread::sleep(Duration::from_millis(50));
                let _ = e;
            }
            Err(e) => return Err(format!("healthz probe: {e}")),
        }
    };
    if hs != 200 {
        return Err(format!("daemon at {} is unhealthy (HTTP {hs})", o.addr));
    }
    Ok(())
}

/// Merge `report` into the JSON file at `path` under `key`, so
/// bench_report's measurements (and the other loadgen mode's section)
/// in the same file survive.
fn merge_report(path: &PathBuf, key: &str, report: Json) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| em_json::parse(&t).ok())
        .filter(|d| d.as_obj().is_some())
        .unwrap_or(Json::Obj(vec![]));
    doc.set(key, report);
    std::fs::write(path, doc.pretty()).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn run(o: &Opts) -> Result<ExitCode, String> {
    if o.sustained_secs.is_some() {
        return run_sustained(o);
    }
    // The variant pool: U distinct specs; requests beyond U repeat one.
    let unique = ((o.requests as f64) * (1.0 - o.dup_ratio)).round().max(1.0) as usize;
    let unique = unique.min(o.requests);
    let base_toml = match &o.spec_file {
        Some(p) => Some(
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?,
        ),
        None => None,
    };
    // Deterministic assignment: first U requests cover each variant
    // once, the rest re-draw via an LCG; then shuffle so duplicates
    // interleave with first sights (exercising coalescing, not just
    // store hits).
    let mut lcg = o.seed | 1;
    let mut step = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lcg >> 33
    };
    let mut variants: Vec<usize> = (0..o.requests)
        .map(|i| {
            if i < unique {
                i
            } else {
                step() as usize % unique
            }
        })
        .collect();
    for i in (1..variants.len()).rev() {
        variants.swap(i, step() as usize % (i + 1));
    }

    // Build one body per *variant* and share it across duplicates, so
    // the per-family counts describe the unique pool, not the requests.
    let mut family_counts: HashMap<&'static str, usize> = HashMap::new();
    let variant_bodies: Vec<String> = (0..unique)
        .map(|v| variant_body(o, &base_toml, &mut family_counts, v))
        .collect::<Result<_, _>>()?;
    let bodies: Vec<&String> = variants.iter().map(|&v| &variant_bodies[v]).collect();

    probe_health(o)?;

    let t0 = Instant::now();
    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<RequestOutcome>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..o.concurrency.min(o.requests) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= o.requests {
                    break;
                }
                let out = drive_one(o, bodies[i], variants[i], i);
                if !o.quiet {
                    println!(
                        "[{:>3}/{}] variant {:>3} {:<10} submit {:>7.1} ms total {:>8.1} ms",
                        i + 1,
                        o.requests,
                        out.variant,
                        out.status,
                        out.submit_ms,
                        out.total_ms
                    );
                }
                outcomes.lock().unwrap().push(out);
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let outcomes = outcomes.into_inner().unwrap();

    // Bit-identical serving: all artifact bytes of one variant agree.
    let mut first_seen: HashMap<usize, &str> = HashMap::new();
    let mut mismatches = 0usize;
    for out in &outcomes {
        if let Some(bytes) = &out.result_bytes {
            match first_seen.get(&out.variant) {
                Some(prev) if *prev != bytes.as_str() => mismatches += 1,
                Some(_) => {}
                None => {
                    first_seen.insert(out.variant, bytes);
                }
            }
        }
    }

    let count = |s: &str| outcomes.iter().filter(|r| r.status == s).count();
    let (cached, coalesced, queued) = (count("cached"), count("coalesced"), count("queued"));
    let dedupe_hits = cached + coalesced;
    let failures = outcomes.iter().filter(|r| r.failed).count();
    let retries: u64 = outcomes.iter().map(|r| r.retries as u64).sum();
    let shed = outcomes.iter().filter(|r| r.shed).count();
    let timeouts = outcomes.iter().filter(|r| r.timed_out).count();
    // Percentiles come from the exact samples; the shared telemetry
    // histogram (same log2 layout the daemon's `/metrics` uses) rides
    // along for the bucket shape.
    let submit_hist = Histogram::latency_millis();
    let total_hist = Histogram::latency_millis();
    let mut submit_samples = Vec::with_capacity(outcomes.len());
    let mut total_samples = Vec::with_capacity(outcomes.len());
    for r in &outcomes {
        submit_hist.observe(r.submit_ms);
        submit_samples.push(r.submit_ms);
        if !r.failed {
            total_hist.observe(r.total_ms);
            total_samples.push(r.total_ms);
        }
    }
    submit_samples.sort_by(f64::total_cmp);
    total_samples.sort_by(f64::total_cmp);
    let submit = submit_hist.snapshot();
    let total = total_hist.snapshot();

    let stats_doc = http(&o.addr, "GET", "/stats", None)
        .ok()
        .and_then(|ex| {
            (ex.status == 200)
                .then(|| em_json::parse(&ex.payload).ok())
                .flatten()
        })
        .unwrap_or(Json::Null);

    let mut report_pairs = vec![
        ("addr", Json::str(&o.addr)),
        ("requests", Json::Int(o.requests as i64)),
        ("concurrency", Json::Int(o.concurrency as i64)),
        ("dup_ratio", Json::Num(o.dup_ratio)),
        ("unique_variants", Json::Int(unique as i64)),
        ("cached", Json::Int(cached as i64)),
        ("coalesced", Json::Int(coalesced as i64)),
        ("queued", Json::Int(queued as i64)),
        ("dedupe_hits", Json::Int(dedupe_hits as i64)),
        (
            "dedupe_hit_rate",
            Json::Num(dedupe_hits as f64 / o.requests as f64),
        ),
        ("failures", Json::Int(failures as i64)),
        ("retries", Json::Int(retries as i64)),
        ("shed", Json::Int(shed as i64)),
        ("timeouts", Json::Int(timeouts as i64)),
        ("result_mismatches", Json::Int(mismatches as i64)),
        ("wall_secs", Json::Num(wall)),
        (
            "requests_per_sec",
            Json::Num(o.requests as f64 / wall.max(1e-9)),
        ),
        ("submit_ms", latency_doc(&submit_samples, &submit)),
        ("total_ms", latency_doc(&total_samples, &total)),
        ("server_stats", stats_doc),
    ];
    if !o.gen_mix.is_empty() {
        let weights = o
            .gen_mix
            .iter()
            .map(|(f, w)| (f.name(), Json::Num(*w)))
            .collect();
        let mut counts: Vec<(&str, Json)> = family_counts
            .iter()
            .map(|(name, n)| (*name, Json::Int(*n as i64)))
            .collect();
        counts.sort_by_key(|(name, _)| *name);
        report_pairs.push((
            "gen_mix",
            Json::obj(vec![
                ("weights", Json::obj(weights)),
                ("variant_counts", Json::obj(counts)),
                ("gen_seed", Json::Int(o.seed as i64)),
            ]),
        ));
    }
    merge_report(&o.report, "loadgen", Json::obj(report_pairs))?;

    println!(
        "\n{} requests in {:.2}s ({:.1}/s) against {}",
        o.requests,
        wall,
        o.requests as f64 / wall.max(1e-9),
        o.addr
    );
    println!(
        "dedupe hits: {dedupe_hits}/{} ({:.0}%) — {cached} cached, {coalesced} coalesced, {queued} solved",
        o.requests,
        100.0 * dedupe_hits as f64 / o.requests as f64
    );
    println!(
        "latency ms: submit p50 {:.1} / p90 {:.1} / p99 {:.1}; end-to-end p50 {:.1} / p90 {:.1} / p99 {:.1}",
        percentile(&submit_samples, 0.50),
        percentile(&submit_samples, 0.90),
        percentile(&submit_samples, 0.99),
        percentile(&total_samples, 0.50),
        percentile(&total_samples, 0.90),
        percentile(&total_samples, 0.99),
    );
    println!("retries: {retries}, shed: {shed}, timeouts: {timeouts}");
    println!("failures: {failures}, result mismatches: {mismatches}");
    println!("report: {}", o.report.display());

    if o.shutdown {
        let s = http(&o.addr, "POST", "/shutdown", None)?.status;
        println!("shutdown requested (HTTP {s})");
    }

    let enough_hits = o.min_dedupe_hits.is_none_or(|k| dedupe_hits >= k);
    if !enough_hits {
        eprintln!(
            "error: {dedupe_hits} dedupe hit(s), fewer than the required {}",
            o.min_dedupe_hits.unwrap_or(0)
        );
    }
    // Mismatches always fail the run — bit-identical serving is the
    // contract. Failures (including timeouts) gate unless the workload
    // expects them (`--allow-failures`, chaos/deadline runs).
    let gating_failures = if o.allow_failures { 0 } else { failures };
    if gating_failures > 0 || mismatches > 0 || !enough_hits {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// One sustained phase's tallies, summed over all client threads.
struct PhaseResult {
    requests: usize,
    failures: usize,
    mismatches: usize,
    wall_secs: f64,
}

impl PhaseResult {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.wall_secs.max(1e-9)
    }

    fn doc(&self) -> Json {
        Json::obj(vec![
            ("requests", Json::Int(self.requests as i64)),
            ("requests_per_sec", Json::Num(self.rps())),
            ("failures", Json::Int(self.failures as i64)),
            ("mismatches", Json::Int(self.mismatches as i64)),
            ("wall_secs", Json::Num(self.wall_secs)),
        ])
    }
}

/// Run one timed phase: `threads` clients hammer until `secs` elapse,
/// each returning `(requests, failures, mismatches)`.
fn sustained_phase<W>(threads: usize, secs: u64, worker: W) -> PhaseResult
where
    W: Fn(Instant) -> (usize, usize, usize) + Sync,
{
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs(secs);
    let mut out = PhaseResult {
        requests: 0,
        failures: 0,
        mismatches: 0,
        wall_secs: 0.0,
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| scope.spawn(|| worker(deadline)))
            .collect();
        for h in handles {
            let (r, f, m) = h.join().unwrap();
            out.requests += r;
            out.failures += f;
            out.mismatches += m;
        }
    });
    out.wall_secs = t0.elapsed().as_secs_f64();
    out
}

/// Read one `Content-Length`-framed response off a persistent
/// connection without consuming past it — the framing a keep-alive
/// client needs where `http()` just reads to EOF.
fn read_framed(r: &mut BufReader<TcpStream>) -> Result<(u16, Vec<u8>), String> {
    let mut line = String::new();
    if r.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
        return Err("connection closed".to_string());
    }
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| format!("malformed status line: {}", line.trim()))?;
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        if r.read_line(&mut h).map_err(|e| e.to_string())? == 0 {
            return Err("connection closed mid-headers".to_string());
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length: {}", v.trim()))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).map_err(|e| e.to_string())?;
    Ok((status, body))
}

/// One keep-alive client: hold a persistent connection, keep up to
/// `pipeline` requests in flight, byte-verify every response.
/// Reconnects (counting a failure) if the connection tears while time
/// remains; past the deadline, drains what is already in flight.
fn keepalive_worker(
    addr: &str,
    request: &[u8],
    expected: &[u8],
    pipeline: usize,
    deadline: Instant,
) -> (usize, usize, usize) {
    let (mut requests, mut failures, mut mismatches) = (0usize, 0usize, 0usize);
    'reconnect: while Instant::now() < deadline {
        let stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => {
                failures += 1;
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => {
                failures += 1;
                continue;
            }
        };
        let mut reader = BufReader::new(stream);
        let mut in_flight = 0usize;
        for _ in 0..pipeline {
            if writer.write_all(request).is_err() {
                failures += 1;
                continue 'reconnect;
            }
            in_flight += 1;
        }
        loop {
            match read_framed(&mut reader) {
                Ok((200, body)) => {
                    in_flight -= 1;
                    requests += 1;
                    if body != expected {
                        mismatches += 1;
                    }
                }
                Ok(_) => {
                    in_flight -= 1;
                    failures += 1;
                }
                Err(_) => {
                    failures += 1;
                    continue 'reconnect;
                }
            }
            if Instant::now() < deadline {
                if writer.write_all(request).is_err() {
                    failures += 1;
                    continue 'reconnect;
                }
                in_flight += 1;
            } else if in_flight == 0 {
                break 'reconnect;
            }
        }
    }
    (requests, failures, mismatches)
}

/// `--sustained-secs`: cached-result throughput. Warm one variant into
/// the result store, then hammer its `/results/:key` — first with a
/// fresh connection per request (the per-connection baseline), then
/// (with `--keepalive`) over persistent pipelined connections — and
/// record both phases plus the speedup under `loadgen_sustained`.
fn run_sustained(o: &Opts) -> Result<ExitCode, String> {
    let secs = o.sustained_secs.unwrap();
    let connections = o.connections.unwrap_or(o.concurrency).max(1);
    probe_health(o)?;

    let base_toml = match &o.spec_file {
        Some(p) => Some(
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?,
        ),
        None => None,
    };
    let mut family_counts = HashMap::new();
    let body = variant_body(o, &base_toml, &mut family_counts, 0)?;

    // Warm: solve the variant once, then re-submit — the second answer
    // must be `cached` and names the stable `/results/:key` path every
    // phase will hammer. Its bytes become the expected artifact.
    let warm = drive_one(o, &body, 0, 0);
    if warm.failed {
        return Err(format!("warm-up solve failed: {}", warm.status));
    }
    let ex = http(&o.addr, "POST", "/jobs", Some(body.as_bytes()))?;
    let doc = em_json::parse(&ex.payload).unwrap_or(Json::Null);
    if ex.status != 200 || doc.get("status").and_then(Json::as_str) != Some("cached") {
        return Err(format!(
            "warm-up re-submission was not served from the store (HTTP {})",
            ex.status
        ));
    }
    let path = doc
        .get("result")
        .and_then(Json::as_str)
        .ok_or("cached response without result path")?
        .to_string();
    let expected = {
        let ex = http(&o.addr, "GET", &path, None)?;
        if ex.status != 200 {
            return Err(format!("warm-up fetch {path}: http-{}", ex.status));
        }
        ex.payload
    };
    println!(
        "sustained: warmed {path} ({} bytes), {secs}s per phase, {connections} connection(s)",
        expected.len()
    );

    // Phase 1 — per-connection baseline: every request pays connect,
    // close, and a read-to-EOF.
    let baseline = sustained_phase(connections, secs, |deadline| {
        let (mut requests, mut failures, mut mismatches) = (0usize, 0usize, 0usize);
        while Instant::now() < deadline {
            match http(&o.addr, "GET", &path, None) {
                Ok(ex) if ex.status == 200 => {
                    requests += 1;
                    if ex.payload != expected {
                        mismatches += 1;
                    }
                }
                Ok(_) | Err(_) => failures += 1,
            }
        }
        (requests, failures, mismatches)
    });
    println!(
        "per-connection: {} requests in {:.2}s ({:.0}/s), failures {}, mismatches {}",
        baseline.requests,
        baseline.wall_secs,
        baseline.rps(),
        baseline.failures,
        baseline.mismatches
    );

    // Phase 2 — keep-alive: persistent connections, pipelined requests.
    let keep = o.keepalive.then(|| {
        let request = format!("GET {path} HTTP/1.1\r\nHost: {}\r\n\r\n", o.addr).into_bytes();
        let phase = sustained_phase(connections, secs, |deadline| {
            keepalive_worker(&o.addr, &request, expected.as_bytes(), o.pipeline, deadline)
        });
        println!(
            "keepalive [pipeline {}]: {} requests in {:.2}s ({:.0}/s), failures {}, mismatches {}",
            o.pipeline,
            phase.requests,
            phase.wall_secs,
            phase.rps(),
            phase.failures,
            phase.mismatches
        );
        println!(
            "keepalive speedup: {:.1}x over per-connection",
            phase.rps() / baseline.rps().max(1e-9)
        );
        phase
    });

    let mut report_pairs = vec![
        ("addr", Json::str(&o.addr)),
        ("path", Json::str(&path)),
        ("artifact_bytes", Json::Int(expected.len() as i64)),
        ("connections", Json::Int(connections as i64)),
        ("pipeline", Json::Int(o.pipeline as i64)),
        ("duration_secs", Json::Int(secs as i64)),
        ("per_connection", baseline.doc()),
    ];
    if let Some(phase) = &keep {
        report_pairs.push(("keepalive", phase.doc()));
        report_pairs.push((
            "keepalive_speedup",
            Json::Num(phase.rps() / baseline.rps().max(1e-9)),
        ));
    }
    merge_report(&o.report, "loadgen_sustained", Json::obj(report_pairs))?;
    println!("report: {}", o.report.display());

    if o.shutdown {
        let s = http(&o.addr, "POST", "/shutdown", None)?.status;
        println!("shutdown requested (HTTP {s})");
    }

    let failures = baseline.failures + keep.as_ref().map_or(0, |p| p.failures);
    let mismatches = baseline.mismatches + keep.as_ref().map_or(0, |p| p.mismatches);
    let best_rps = keep.as_ref().map_or(baseline.rps(), |p| p.rps());
    println!("failures: {failures}, result mismatches: {mismatches}");
    let rps_ok = o.min_rps.is_none_or(|floor| best_rps >= floor);
    if !rps_ok {
        eprintln!(
            "error: {best_rps:.0} req/s, below the required {:.0}",
            o.min_rps.unwrap_or(0.0)
        );
    }
    let gating_failures = if o.allow_failures { 0 } else { failures };
    if gating_failures > 0 || mismatches > 0 || !rps_ok {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_opts(&args).and_then(|o| run(&o)) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
