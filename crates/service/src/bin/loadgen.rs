//! `loadgen` — hammer a running `mwd serve` daemon with a concurrent
//! mixed workload and report latency percentiles + dedupe hit rate.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--concurrency C]
//!         [--dup-ratio R] [--scenario BUILTIN | --spec FILE | --gen-mix MIX]
//!         [--engine KIND] [--max-periods M] [--deadline-ms D] [--seed S]
//!         [--retries K] [--allow-failures]
//!         [--report FILE] [--min-dedupe-hits K] [--shutdown] [--quiet]
//! ```
//!
//! The workload is `N` submissions drawn from a pool of
//! `U = max(1, N * (1 - R))` distinct spec variants (the base scenario
//! with per-variant `lambda_nm`, or — with `--gen-mix` — generated
//! scenarios drawn from a weighted family mix), shuffled
//! deterministically by `--seed`. With `R = 0.5`, half the requests repeat an earlier spec —
//! the daemon should answer those from the result store (or coalesce
//! them onto the in-flight job) without solving.
//!
//! Every completed request fetches its artifact and the bytes are
//! compared per variant: a cached result that differs from the first
//! solve of the same variant is counted as a mismatch and fails the
//! run. The summary (and `--report`, merged into `BENCH_results.json`
//! under the `loadgen` key) therefore certifies both the hit rate and
//! bit-identical serving.

use em_json::Json;
use em_obs::{Histogram, HistogramSnapshot};
use em_scenarios::gen::{generate, splitmix64, Family, GenParams};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "loadgen — concurrent load generator for `mwd serve`

OPTIONS:
    --addr <host:port>     daemon address (default 127.0.0.1:7171)
    --requests <n>         total submissions (default 20)
    --concurrency <c>      client threads (default 4)
    --dup-ratio <r>        fraction of requests repeating an earlier
                           spec, 0..=1 (default 0.5)
    --scenario <builtin>   base catalog scenario (default vacuum-slab)
    --spec <file>          base scenario TOML file (overrides --scenario)
    --gen-mix <mix>        draw variants from the scenario generators
                           instead: `family:weight,...` over
                           multilayer|rough-interface|nanoparticle|nanowire
                           (weight defaults to 1); overrides --scenario
                           and --spec
    --engine <kind>        engine override sent with every request
    --max-periods <m>      per-request convergence cap (default 1)
    --deadline-ms <d>      per-request job deadline sent with every
                           submission (default: none)
    --seed <s>             workload shuffle seed (default 7)
    --retries <k>          bounded retries per request on 429/503 or a
                           torn connection, paced by Retry-After when
                           present and decorrelated jitter otherwise
                           (default 0)
    --allow-failures       report failures/timeouts without failing the
                           run (result mismatches still fail it)
    --report <file>        merge the report into this JSON file
                           (default results/BENCH_results.json)
    --min-dedupe-hits <k>  exit 1 if fewer requests were deduped
    --shutdown             POST /shutdown when done
    --quiet                suppress per-request lines
";

struct Opts {
    addr: String,
    requests: usize,
    concurrency: usize,
    dup_ratio: f64,
    scenario: String,
    spec_file: Option<PathBuf>,
    gen_mix: Vec<(Family, f64)>,
    engine: Option<String>,
    max_periods: usize,
    deadline_ms: Option<u64>,
    seed: u64,
    retries: u32,
    allow_failures: bool,
    report: PathBuf,
    min_dedupe_hits: Option<usize>,
    shutdown: bool,
    quiet: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        addr: "127.0.0.1:7171".to_string(),
        requests: 20,
        concurrency: 4,
        dup_ratio: 0.5,
        scenario: "vacuum-slab".to_string(),
        spec_file: None,
        gen_mix: Vec::new(),
        engine: None,
        max_periods: 1,
        deadline_ms: None,
        seed: 7,
        retries: 0,
        allow_failures: false,
        report: PathBuf::from("results/BENCH_results.json"),
        min_dedupe_hits: None,
        shutdown: false,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--addr" => o.addr = value("--addr")?,
            "--requests" => o.requests = parse_count(&value("--requests")?, "--requests")?,
            "--concurrency" => {
                o.concurrency = parse_count(&value("--concurrency")?, "--concurrency")?
            }
            "--dup-ratio" => {
                o.dup_ratio = value("--dup-ratio")?
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or("--dup-ratio needs a number in 0..=1")?
            }
            "--scenario" => o.scenario = value("--scenario")?,
            "--spec" => o.spec_file = Some(PathBuf::from(value("--spec")?)),
            "--gen-mix" => o.gen_mix = parse_gen_mix(&value("--gen-mix")?)?,
            "--engine" => o.engine = Some(value("--engine")?),
            "--max-periods" => {
                o.max_periods = parse_count(&value("--max-periods")?, "--max-periods")?
            }
            "--deadline-ms" => {
                o.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse::<u64>()
                        .ok()
                        .filter(|&d| d >= 1)
                        .ok_or("--deadline-ms needs a positive integer")?,
                )
            }
            "--seed" => {
                o.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer")?
            }
            "--retries" => {
                o.retries = value("--retries")?
                    .parse()
                    .map_err(|_| "--retries needs a non-negative integer")?
            }
            "--allow-failures" => o.allow_failures = true,
            "--report" => o.report = PathBuf::from(value("--report")?),
            "--min-dedupe-hits" => {
                o.min_dedupe_hits = Some(
                    value("--min-dedupe-hits")?
                        .parse()
                        .map_err(|_| "--min-dedupe-hits needs an integer")?,
                )
            }
            "--shutdown" => o.shutdown = true,
            "--quiet" => o.quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`; try --help")),
        }
    }
    if o.requests == 0 {
        return Err("--requests must be positive".to_string());
    }
    if o.concurrency == 0 {
        return Err("--concurrency must be positive".to_string());
    }
    Ok(o)
}

fn parse_count(s: &str, flag: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("{flag} needs a non-negative integer"))
}

/// Parse `family[:weight],...` into a weighted family list.
fn parse_gen_mix(s: &str) -> Result<Vec<(Family, f64)>, String> {
    let known = || {
        Family::ALL
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut mix = Vec::new();
    for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (name, weight) = match part.split_once(':') {
            Some((n, w)) => {
                let w: f64 = w
                    .parse()
                    .ok()
                    .filter(|w: &f64| w.is_finite() && *w > 0.0)
                    .ok_or_else(|| format!("--gen-mix weight for `{n}` must be positive"))?;
                (n.trim(), w)
            }
            None => (part, 1.0),
        };
        let family = Family::from_name(name)
            .ok_or_else(|| format!("--gen-mix: unknown family `{name}` (known: {})", known()))?;
        if mix.iter().any(|(f, _)| *f == family) {
            return Err(format!("--gen-mix lists `{name}` twice"));
        }
        mix.push((family, weight));
    }
    if mix.is_empty() {
        return Err(format!(
            "--gen-mix needs `family[:weight],...` (known: {})",
            known()
        ));
    }
    Ok(mix)
}

/// Deterministic weighted family pick for one variant index.
fn pick_family(mix: &[(Family, f64)], seed: u64, variant: usize) -> Family {
    let mut state = seed ^ (variant as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let draw = (splitmix64(&mut state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut acc = 0.0;
    for (family, w) in mix {
        acc += w / total;
        if draw < acc {
            return *family;
        }
    }
    mix.last().unwrap().0
}

/// One parsed HTTP exchange: status, body, and the `Retry-After` advice
/// (seconds) when the daemon sent one.
struct Exchange {
    status: u16,
    payload: String,
    retry_after: Option<u64>,
}

/// One blocking HTTP exchange (the daemon closes after each response).
/// A response whose declared `Content-Length` does not match the bytes
/// actually received (a torn connection) is an error, never a payload.
fn http(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> Result<Exchange, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("send {method} {path}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read {method} {path}: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response to {method} {path}: {text:.60}"))?;
    let Some((header, payload)) = text.split_once("\r\n\r\n") else {
        return Err(format!("truncated response to {method} {path}"));
    };
    let header_value = |name: &str| {
        header.lines().find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
        })
    };
    if let Some(declared) = header_value("content-length").and_then(|v| v.parse::<usize>().ok()) {
        if payload.len() < declared {
            return Err(format!(
                "torn response to {method} {path}: {} of {declared} body bytes",
                payload.len()
            ));
        }
    }
    Ok(Exchange {
        status,
        payload: payload.to_string(),
        retry_after: header_value("retry-after").and_then(|v| v.parse().ok()),
    })
}

struct RequestOutcome {
    variant: usize,
    /// "cached" | "coalesced" | "queued" | "http-<status>" | error text.
    status: String,
    submit_ms: f64,
    total_ms: f64,
    result_bytes: Option<String>,
    failed: bool,
    /// Submit retries this request spent (torn connections, 429/503).
    retries: u32,
    /// The request exhausted its retries against 429/503 back-pressure.
    shed: bool,
    /// The job ended in the `timeout` terminal state.
    timed_out: bool,
}

/// Decorrelated-jitter backoff (AWS-style): each sleep is drawn
/// uniformly from `[base, prev * 3]`, capped — so concurrent clients
/// de-synchronize instead of retrying in lockstep. An explicit
/// `Retry-After` from the daemon overrides the draw.
fn backoff_ms(rng_state: &mut u64, prev_ms: u64, retry_after: Option<u64>) -> u64 {
    const BASE_MS: u64 = 25;
    const CAP_MS: u64 = 2_000;
    if let Some(secs) = retry_after {
        return (secs * 1_000).clamp(BASE_MS, CAP_MS);
    }
    let hi = (prev_ms.max(BASE_MS) * 3).min(CAP_MS);
    let r = (splitmix64(rng_state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    BASE_MS + (r * (hi - BASE_MS) as f64) as u64
}

/// A latency distribution as JSON: quantiles plus the cumulative log2
/// buckets (same layout `/metrics` exposes), so the report carries the
/// whole shape, not three points of it. Zero-delta buckets are elided —
/// cumulative counts make them redundant.
fn latency_doc(snap: &HistogramSnapshot) -> Json {
    let mut buckets = Vec::new();
    let mut cum = 0u64;
    for (i, &c) in snap.counts.iter().enumerate() {
        cum += c;
        if c == 0 {
            continue;
        }
        let le = match snap.bounds.get(i) {
            Some(&b) => Json::Num(b),
            None => Json::str("+Inf"),
        };
        buckets.push(Json::obj(vec![
            ("le", le),
            ("cum_count", Json::Int(cum as i64)),
        ]));
    }
    Json::obj(vec![
        ("p50", Json::Num(snap.quantile(0.50))),
        ("p90", Json::Num(snap.quantile(0.90))),
        ("p99", Json::Num(snap.quantile(0.99))),
        ("count", Json::Int(snap.count() as i64)),
        ("sum", Json::Num(snap.sum)),
        ("buckets", Json::Arr(buckets)),
    ])
}

fn drive_one(o: &Opts, body: &str, variant: usize, request_index: usize) -> RequestOutcome {
    let t0 = Instant::now();
    let mut out = RequestOutcome {
        variant,
        status: String::new(),
        submit_ms: 0.0,
        total_ms: 0.0,
        result_bytes: None,
        failed: false,
        retries: 0,
        shed: false,
        timed_out: false,
    };
    let fail = |out: &mut RequestOutcome, msg: String| {
        out.status = msg;
        out.failed = true;
        out.total_ms = t0.elapsed().as_secs_f64() * 1e3;
    };
    // Submit, with bounded retries: 429/503 are explicit back-pressure
    // (honor Retry-After), a torn connection is worth re-asking since
    // submissions are idempotent by content key.
    let mut rng_state = o
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(request_index as u64);
    let mut prev_sleep = 0u64;
    let mut attempt = 0u32;
    let ex = loop {
        let (retryable, retry_after, last_err) =
            match http(&o.addr, "POST", "/jobs", Some(body.as_bytes())) {
                Ok(ex) if ex.status == 429 || ex.status == 503 => {
                    (true, ex.retry_after, format!("http-{}", ex.status))
                }
                Ok(ex) => break ex,
                Err(e) => (true, None, e),
            };
        debug_assert!(retryable);
        if attempt >= o.retries {
            out.shed = last_err.starts_with("http-");
            fail(&mut out, last_err);
            return out;
        }
        attempt += 1;
        out.retries = attempt;
        prev_sleep = backoff_ms(&mut rng_state, prev_sleep, retry_after);
        std::thread::sleep(Duration::from_millis(prev_sleep));
    };
    out.submit_ms = t0.elapsed().as_secs_f64() * 1e3;
    let doc = em_json::parse(&ex.payload).unwrap_or(Json::Null);
    if ex.status != 200 && ex.status != 202 {
        fail(&mut out, format!("http-{}", ex.status));
        return out;
    }
    out.status = doc
        .get("status")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();

    // Resolve to artifact bytes: straight from the store for `cached`,
    // else poll the job to completion. Poll exchanges that tear or
    // error are retried within the deadline — transient connection
    // faults must not fail a job that is still running fine.
    let result_path = if out.status == "cached" {
        match doc.get("result").and_then(Json::as_str) {
            Some(p) => p.to_string(),
            None => {
                fail(&mut out, "cached response without result path".into());
                return out;
            }
        }
    } else {
        let Some(job) = doc.get("job").and_then(Json::as_str).map(str::to_string) else {
            fail(&mut out, "queued response without job id".into());
            return out;
        };
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if Instant::now() > deadline {
                fail(&mut out, format!("{job} did not finish in 120s"));
                return out;
            }
            match http(&o.addr, "GET", &format!("/jobs/{job}"), None) {
                Ok(ex) if ex.status == 200 => {
                    let state = em_json::parse(&ex.payload)
                        .ok()
                        .and_then(|d| d.get("state").map(|s| s.as_str().unwrap_or("").to_string()))
                        .unwrap_or_default();
                    match state.as_str() {
                        "done" => break,
                        "failed" | "cancelled" | "timeout" => {
                            out.timed_out = state == "timeout";
                            fail(&mut out, format!("{job} ended {state}"));
                            return out;
                        }
                        _ => std::thread::sleep(Duration::from_millis(25)),
                    }
                }
                Ok(ex) => {
                    fail(&mut out, format!("poll {job}: http-{}", ex.status));
                    return out;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        format!("/jobs/{job}/result")
    };
    // The artifact fetch also retries torn connections: the result is
    // immutable once stored, so re-reading is always safe.
    let fetch_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match http(&o.addr, "GET", &result_path, None) {
            Ok(ex) if ex.status == 200 => {
                out.result_bytes = Some(ex.payload);
                break;
            }
            Ok(ex) => {
                fail(&mut out, format!("fetch {result_path}: http-{}", ex.status));
                return out;
            }
            Err(e) => {
                if Instant::now() > fetch_deadline {
                    fail(&mut out, e);
                    return out;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    out.total_ms = t0.elapsed().as_secs_f64() * 1e3;
    out
}

fn run(o: &Opts) -> Result<ExitCode, String> {
    // The variant pool: U distinct specs; requests beyond U repeat one.
    let unique = ((o.requests as f64) * (1.0 - o.dup_ratio)).round().max(1.0) as usize;
    let unique = unique.min(o.requests);
    let base_toml = match &o.spec_file {
        Some(p) => Some(
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?,
        ),
        None => None,
    };
    // Deterministic assignment: first U requests cover each variant
    // once, the rest re-draw via an LCG; then shuffle so duplicates
    // interleave with first sights (exercising coalescing, not just
    // store hits).
    let mut lcg = o.seed | 1;
    let mut step = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lcg >> 33
    };
    let mut variants: Vec<usize> = (0..o.requests)
        .map(|i| {
            if i < unique {
                i
            } else {
                step() as usize % unique
            }
        })
        .collect();
    for i in (1..variants.len()).rev() {
        variants.swap(i, step() as usize % (i + 1));
    }

    // With --gen-mix, each variant is a generated scenario: family from
    // the weighted mix, generator seed derived from (--seed, variant),
    // so the pool is deterministic and duplicates dedupe by content.
    let mut family_counts: HashMap<&'static str, usize> = HashMap::new();
    let mut variant_body = |v: usize| -> Result<String, String> {
        let mut pairs = vec![];
        if o.gen_mix.is_empty() {
            match &base_toml {
                Some(t) => pairs.push(("toml", Json::str(t.clone()))),
                None => pairs.push(("builtin", Json::str(&o.scenario))),
            }
            pairs.push(("lambda_nm", Json::Num(550.0 + 7.0 * v as f64)));
        } else {
            let family = pick_family(&o.gen_mix, o.seed, v);
            let spec = generate(family, o.seed.wrapping_add(v as u64), &GenParams::tiny())
                .map_err(|e| format!("--gen-mix variant {v}: {e}"))?;
            *family_counts.entry(family.name()).or_insert(0) += 1;
            pairs.push(("toml", Json::str(spec.to_toml_string())));
        }
        if let Some(kind) = &o.engine {
            pairs.push(("engine", Json::str(kind)));
        }
        pairs.push(("max_periods", Json::Int(o.max_periods as i64)));
        if let Some(d) = o.deadline_ms {
            pairs.push(("deadline_ms", Json::Int(d as i64)));
        }
        Ok(Json::obj(pairs).compact())
    };
    // Build one body per *variant* and share it across duplicates, so
    // the per-family counts describe the unique pool, not the requests.
    let variant_bodies: Vec<String> = (0..unique)
        .map(&mut variant_body)
        .collect::<Result<_, _>>()?;
    let bodies: Vec<&String> = variants.iter().map(|&v| &variant_bodies[v]).collect();

    // Health check before loading. The probe itself can hit an injected
    // connection drop under `--chaos`, so it gets the same bounded
    // retries as a submission.
    let mut probe = 0u32;
    let hs = loop {
        match http(&o.addr, "GET", "/healthz", None) {
            Ok(x) => break x.status,
            Err(e) if probe < o.retries.max(2) => {
                probe += 1;
                std::thread::sleep(Duration::from_millis(50));
                let _ = e;
            }
            Err(e) => return Err(format!("healthz probe: {e}")),
        }
    };
    if hs != 200 {
        return Err(format!("daemon at {} is unhealthy (HTTP {hs})", o.addr));
    }

    let t0 = Instant::now();
    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<RequestOutcome>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..o.concurrency.min(o.requests) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= o.requests {
                    break;
                }
                let out = drive_one(o, bodies[i], variants[i], i);
                if !o.quiet {
                    println!(
                        "[{:>3}/{}] variant {:>3} {:<10} submit {:>7.1} ms total {:>8.1} ms",
                        i + 1,
                        o.requests,
                        out.variant,
                        out.status,
                        out.submit_ms,
                        out.total_ms
                    );
                }
                outcomes.lock().unwrap().push(out);
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let outcomes = outcomes.into_inner().unwrap();

    // Bit-identical serving: all artifact bytes of one variant agree.
    let mut first_seen: HashMap<usize, &str> = HashMap::new();
    let mut mismatches = 0usize;
    for out in &outcomes {
        if let Some(bytes) = &out.result_bytes {
            match first_seen.get(&out.variant) {
                Some(prev) if *prev != bytes.as_str() => mismatches += 1,
                Some(_) => {}
                None => {
                    first_seen.insert(out.variant, bytes);
                }
            }
        }
    }

    let count = |s: &str| outcomes.iter().filter(|r| r.status == s).count();
    let (cached, coalesced, queued) = (count("cached"), count("coalesced"), count("queued"));
    let dedupe_hits = cached + coalesced;
    let failures = outcomes.iter().filter(|r| r.failed).count();
    let retries: u64 = outcomes.iter().map(|r| r.retries as u64).sum();
    let shed = outcomes.iter().filter(|r| r.shed).count();
    let timeouts = outcomes.iter().filter(|r| r.timed_out).count();
    // The shared telemetry histogram (same log2 layout the daemon's
    // `/metrics` uses) replaces client-side sort-the-samples math.
    let submit_hist = Histogram::latency_millis();
    let total_hist = Histogram::latency_millis();
    for r in &outcomes {
        submit_hist.observe(r.submit_ms);
        if !r.failed {
            total_hist.observe(r.total_ms);
        }
    }
    let submit = submit_hist.snapshot();
    let total = total_hist.snapshot();

    let stats_doc = http(&o.addr, "GET", "/stats", None)
        .ok()
        .and_then(|ex| {
            (ex.status == 200)
                .then(|| em_json::parse(&ex.payload).ok())
                .flatten()
        })
        .unwrap_or(Json::Null);

    let mut report_pairs = vec![
        ("addr", Json::str(&o.addr)),
        ("requests", Json::Int(o.requests as i64)),
        ("concurrency", Json::Int(o.concurrency as i64)),
        ("dup_ratio", Json::Num(o.dup_ratio)),
        ("unique_variants", Json::Int(unique as i64)),
        ("cached", Json::Int(cached as i64)),
        ("coalesced", Json::Int(coalesced as i64)),
        ("queued", Json::Int(queued as i64)),
        ("dedupe_hits", Json::Int(dedupe_hits as i64)),
        (
            "dedupe_hit_rate",
            Json::Num(dedupe_hits as f64 / o.requests as f64),
        ),
        ("failures", Json::Int(failures as i64)),
        ("retries", Json::Int(retries as i64)),
        ("shed", Json::Int(shed as i64)),
        ("timeouts", Json::Int(timeouts as i64)),
        ("result_mismatches", Json::Int(mismatches as i64)),
        ("wall_secs", Json::Num(wall)),
        (
            "requests_per_sec",
            Json::Num(o.requests as f64 / wall.max(1e-9)),
        ),
        ("submit_ms", latency_doc(&submit)),
        ("total_ms", latency_doc(&total)),
        ("server_stats", stats_doc),
    ];
    if !o.gen_mix.is_empty() {
        let weights = o
            .gen_mix
            .iter()
            .map(|(f, w)| (f.name(), Json::Num(*w)))
            .collect();
        let mut counts: Vec<(&str, Json)> = family_counts
            .iter()
            .map(|(name, n)| (*name, Json::Int(*n as i64)))
            .collect();
        counts.sort_by_key(|(name, _)| *name);
        report_pairs.push((
            "gen_mix",
            Json::obj(vec![
                ("weights", Json::obj(weights)),
                ("variant_counts", Json::obj(counts)),
                ("gen_seed", Json::Int(o.seed as i64)),
            ]),
        ));
    }
    let report = Json::obj(report_pairs);

    // Merge under the `loadgen` key so bench_report's measurements in
    // the same file survive.
    if let Some(dir) = o.report.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    let mut doc = std::fs::read_to_string(&o.report)
        .ok()
        .and_then(|t| em_json::parse(&t).ok())
        .filter(|d| d.as_obj().is_some())
        .unwrap_or(Json::Obj(vec![]));
    doc.set("loadgen", report);
    std::fs::write(&o.report, doc.pretty())
        .map_err(|e| format!("cannot write {}: {e}", o.report.display()))?;

    println!(
        "\n{} requests in {:.2}s ({:.1}/s) against {}",
        o.requests,
        wall,
        o.requests as f64 / wall.max(1e-9),
        o.addr
    );
    println!(
        "dedupe hits: {dedupe_hits}/{} ({:.0}%) — {cached} cached, {coalesced} coalesced, {queued} solved",
        o.requests,
        100.0 * dedupe_hits as f64 / o.requests as f64
    );
    println!(
        "latency ms: submit p50 {:.1} / p90 {:.1} / p99 {:.1}; end-to-end p50 {:.1} / p90 {:.1} / p99 {:.1}",
        submit.quantile(0.50),
        submit.quantile(0.90),
        submit.quantile(0.99),
        total.quantile(0.50),
        total.quantile(0.90),
        total.quantile(0.99),
    );
    println!("retries: {retries}, shed: {shed}, timeouts: {timeouts}");
    println!("failures: {failures}, result mismatches: {mismatches}");
    println!("report: {}", o.report.display());

    if o.shutdown {
        let s = http(&o.addr, "POST", "/shutdown", None)?.status;
        println!("shutdown requested (HTTP {s})");
    }

    let enough_hits = o.min_dedupe_hits.is_none_or(|k| dedupe_hits >= k);
    if !enough_hits {
        eprintln!(
            "error: {dedupe_hits} dedupe hit(s), fewer than the required {}",
            o.min_dedupe_hits.unwrap_or(0)
        );
    }
    // Mismatches always fail the run — bit-identical serving is the
    // contract. Failures (including timeouts) gate unless the workload
    // expects them (`--allow-failures`, chaos/deadline runs).
    let gating_failures = if o.allow_failures { 0 } else { failures };
    if gating_failures > 0 || mismatches > 0 || !enough_hits {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_opts(&args).and_then(|o| run(&o)) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
