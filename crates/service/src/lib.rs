//! # em-service — the long-running THIIM job service
//!
//! The ROADMAP's north star is a system that serves heavy traffic, and
//! the MWD engine exists because the THIIM update is memory-starved and
//! throughput-bound: the scarce resource is sustained machine bandwidth.
//! A serving layer therefore must not re-pay work — process startup,
//! tune-cache loading, or (for identical specs) the entire solve — per
//! request. This crate is that layer:
//!
//! - [`http`]: a hand-rolled HTTP/1.1 server substrate on
//!   `std::net::TcpListener` (no new dependencies, matching the
//!   offline/vendored constraint): request parsing with header/body
//!   limits and chunked-transfer decoding, JSON responses;
//! - [`hash`]: the canonical content hash. A job's identity is
//!   `FNV-1a-128(resolved spec TOML, engine config, host/ISA
//!   fingerprint)` — two submissions with equal hashes are
//!   interchangeable by construction;
//! - [`store`]: the content-addressed result store. Artifacts are the
//!   *canonical* (wall-clock-free) batch outcome JSON, so a cached
//!   result is byte-identical to what a fresh solve would produce; every
//!   disk artifact carries an integrity footer, is fsynced before its
//!   rename, and fails verification into a `.corrupt` quarantine rather
//!   than ever being served;
//! - [`scheduler`]: admission control and execution. A bounded queue
//!   (overflow → HTTP 429) feeds a worker pool that shares one
//!   [`mwd_core::ThreadBudget`] between concurrent jobs, exactly like
//!   the batch runner; identical in-flight submissions coalesce onto
//!   one job, `engine = "auto"` resolves through a process-wide
//!   [`autotune::SharedTuneCache`] so the tuning cache stays warm
//!   across requests, and every job carries a [`mwd_core::CancelToken`]
//!   so deadlines (`deadline_ms`) and `POST /jobs/:id/cancel` halt it
//!   within one solver period;
//! - [`server`]: the connection planes and the JSON API — `POST /jobs`,
//!   `GET /jobs/:id`, `GET /jobs/:id/result`, `POST /jobs/:id/cancel`,
//!   `GET /results/:key`, `GET /healthz`, `GET /stats`,
//!   `POST /shutdown`; with `--chaos`, an [`em_faults::FaultInjector`]
//!   is threaded through the solve, store, and connection seams;
//! - `event_loop` (Linux): the default connection plane — a
//!   non-blocking epoll event loop with HTTP/1.1 keep-alive,
//!   pipelining, and bounded connections, serving bytes identical to
//!   the blocking plane;
//! - [`shutdown`]: SIGINT/SIGTERM → a cooperative stop flag, shared
//!   with the batch runner's drain path;
//! - [`stats`]: the service counters behind `GET /stats`.
//!
//! The `mwd serve` subcommand and the `loadgen` load generator are thin
//! shells over this crate.

#[cfg(target_os = "linux")]
pub(crate) mod event_loop;
pub mod hash;
pub mod http;
pub mod scheduler;
pub mod server;
pub mod shutdown;
pub mod stats;
pub mod store;
pub mod submit;

pub use hash::content_hash;
pub use http::{Body, Limits, Request, Response};
pub use scheduler::{
    CancelError, CancelOutcome, Scheduler, SchedulerConfig, Submission, SubmitError,
};
pub use server::{ConnModel, Server, ServerConfig};
pub use stats::ServiceStats;
pub use store::ResultStore;
pub use submit::{parse_submission, SubmitRequest};
