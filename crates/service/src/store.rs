//! The content-addressed result store.
//!
//! Results are keyed by [`crate::hash::content_hash`] over `(resolved
//! spec, engine config, host/ISA fingerprint)` and hold the *canonical*
//! artifact bytes (wall-clock-free outcome JSON, see
//! [`em_scenarios::JobOutcome::to_json_canonical`]). Because the key
//! derives from everything that determines the solve and the solver is
//! bit-deterministic, a stored artifact is byte-identical to what a
//! fresh solve of the same submission would produce — serving it skips
//! the solve entirely, which on a bandwidth-bound code is the cheapest
//! MLUP there is.
//!
//! With a backing directory, artifacts are persisted as `<key>.json`
//! and reloaded on startup, so the store (like the tuning cache) stays
//! warm across daemon restarts.
//!
//! ## Crash safety and integrity
//!
//! A served artifact must be the bytes the solver produced — a torn
//! write or a flipped bit silently served from cache would corrupt a
//! result *and keep corrupting it on every future hit*. The disk
//! format therefore carries a fixed-width integrity footer:
//!
//! ```text
//! <payload bytes>\n#em-store-integrity fnv1a128=<32 hex> len=<16 digits>\n
//! ```
//!
//! where the hash is [`crate::hash::content_hash_bytes`] over the
//! payload. Writes go `write tmp → fsync → rename → fsync(dir)`, so a
//! crash leaves either the old state or the complete new file. Every
//! disk read (the eager warm reload in [`ResultStore::open`]) verifies
//! the footer; a truncated, bit-flipped or footer-less file is
//! *quarantined* — renamed to `<key>.json.corrupt`, counted, logged —
//! and treated as a miss. Corrupt bytes are never served. In-memory
//! entries hold the payload only (no footer).

use em_faults::{DiskFault, FaultInjector};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Warm-reload guard: artifacts larger than this are skipped (logged,
/// not quarantined — they may be legitimate, just unreasonable to pin
/// in memory).
pub const MAX_ENTRY_BYTES: u64 = 16 * 1024 * 1024;

/// Warm-reload guard: once the reloaded payload bytes exceed this
/// total, remaining files are skipped.
pub const MAX_TOTAL_BYTES: u64 = 1024 * 1024 * 1024;

const FOOTER_TAG: &[u8] = b"\n#em-store-integrity fnv1a128=";
/// `\n` + tag + 32 hash hex + ` len=` + 16 digits + `\n`.
const FOOTER_LEN: usize = FOOTER_TAG.len() + 32 + 5 + 16 + 1;

/// The integrity footer for `payload` (ASCII, fixed width).
fn encode_footer(payload: &[u8]) -> String {
    format!(
        "\n#em-store-integrity fnv1a128={} len={:016}\n",
        crate::hash::content_hash_bytes(payload),
        payload.len()
    )
}

/// Split `bytes` into `(payload, ())`, verifying the footer. Errors
/// describe what was wrong (for the quarantine log).
fn verify_and_strip(bytes: &[u8]) -> Result<&[u8], String> {
    if bytes.len() < FOOTER_LEN {
        return Err(format!(
            "file is {} bytes, shorter than the {FOOTER_LEN}-byte integrity footer",
            bytes.len()
        ));
    }
    let (payload, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
    let Some(rest) = footer.strip_prefix(FOOTER_TAG) else {
        return Err("integrity footer tag missing (truncated or pre-integrity file)".to_string());
    };
    let hash = &rest[..32];
    let len_digits = &rest[32 + 5..32 + 5 + 16];
    if &rest[32..32 + 5] != b" len=" || rest[rest.len() - 1] != b'\n' {
        return Err("integrity footer is malformed".to_string());
    }
    let len = std::str::from_utf8(len_digits)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| "integrity footer length field is not a number".to_string())?;
    if len != payload.len() {
        return Err(format!(
            "integrity footer says {len} payload bytes, file has {}",
            payload.len()
        ));
    }
    let actual = crate::hash::content_hash_bytes(payload);
    if actual.as_bytes() != hash {
        return Err(format!(
            "integrity hash mismatch: footer {}, payload {actual}",
            String::from_utf8_lossy(hash)
        ));
    }
    Ok(payload)
}

struct Entry {
    bytes: Arc<Vec<u8>>,
    hits: u64,
}

/// A thread-safe, optionally disk-backed map `key -> artifact bytes`.
pub struct ResultStore {
    entries: Mutex<HashMap<String, Entry>>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Corrupt on-disk artifacts moved aside (here and across reloads
    /// of this directory within this process lifetime).
    quarantined: AtomicU64,
    /// Chaos seam: when set, store writes consult the injector
    /// (injected write errors, post-rename truncation / bit flips).
    faults: Mutex<Option<Arc<FaultInjector>>>,
}

impl ResultStore {
    /// An in-memory store.
    pub fn in_memory() -> ResultStore {
        ResultStore {
            entries: Mutex::new(HashMap::new()),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            faults: Mutex::new(None),
        }
    }

    /// A disk-backed store: existing `<32-hex>.json` files in `dir` are
    /// loaded eagerly (a warm start), new artifacts are written through.
    ///
    /// Every loaded file's integrity footer is verified; corrupt or
    /// truncated files are quarantined to `<key>.json.corrupt` and
    /// skipped. Files larger than [`MAX_ENTRY_BYTES`] — and any files
    /// past a [`MAX_TOTAL_BYTES`] running total — are skipped with a
    /// log line (junk in the directory must not wedge startup).
    pub fn open(dir: &Path) -> Result<ResultStore, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create result store {}: {e}", dir.display()))?;
        let store = ResultStore {
            entries: Mutex::new(HashMap::new()),
            dir: Some(dir.to_path_buf()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            faults: Mutex::new(None),
        };
        let listing = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read result store {}: {e}", dir.display()))?;
        let mut total: u64 = 0;
        let mut entries = HashMap::new();
        // Deterministic reload order so the total-bytes cap cuts the
        // same tail on every start.
        let mut items: Vec<_> = listing
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("result store listing failed: {e}"))?;
        items.sort_by_key(|i| i.file_name());
        for item in items {
            let name = item.file_name();
            let Some(key) = name.to_str().and_then(|n| n.strip_suffix(".json")) else {
                continue;
            };
            if !crate::hash::is_key(key) {
                continue;
            }
            let path = item.path();
            let size = item.metadata().map(|m| m.len()).unwrap_or(u64::MAX);
            if size > MAX_ENTRY_BYTES {
                eprintln!(
                    "[store] skipping oversized artifact {} ({size} bytes > {MAX_ENTRY_BYTES})",
                    path.display()
                );
                continue;
            }
            if total + size > MAX_TOTAL_BYTES {
                eprintln!(
                    "[store] warm-reload byte budget exhausted ({total} loaded); skipping {}",
                    path.display()
                );
                continue;
            }
            let bytes = std::fs::read(&path)
                .map_err(|e| format!("cannot read artifact {}: {e}", path.display()))?;
            match verify_and_strip(&bytes) {
                Ok(payload) => {
                    total += size;
                    entries.insert(
                        key.to_string(),
                        Entry {
                            bytes: Arc::new(payload.to_vec()),
                            hits: 0,
                        },
                    );
                }
                Err(why) => store.quarantine(&path, &why),
            }
        }
        *store.entries.lock().unwrap_or_else(PoisonError::into_inner) = entries;
        Ok(store)
    }

    /// Move a failed-verification artifact aside so it is never loaded
    /// (or served) again, and count it. Best-effort: if even the rename
    /// fails the file is left behind but still not loaded.
    fn quarantine(&self, path: &Path, why: &str) {
        let target = path.with_extension("json.corrupt");
        eprintln!(
            "[store] quarantining {} -> {}: {why}",
            path.display(),
            target.display()
        );
        if let Err(e) = std::fs::rename(path, &target) {
            eprintln!("[store] quarantine rename failed: {e} (entry still skipped)");
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Install the chaos injector consulted by [`Self::put`].
    pub fn set_fault_injector(&self, inj: Arc<FaultInjector>) {
        *self.faults.lock().unwrap_or_else(PoisonError::into_inner) = Some(inj);
    }

    fn fault_for(&self, key: &str) -> DiskFault {
        let guard = self.faults.lock().unwrap_or_else(PoisonError::into_inner);
        match guard.as_ref() {
            Some(inj) => inj.disk_fault(key),
            None => DiskFault::None,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Entry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look a key up, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        let mut entries = self.lock();
        match entries.get_mut(key) {
            Some(e) => {
                e.hits += 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.bytes.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether a key is present (no hit accounting).
    pub fn contains(&self, key: &str) -> bool {
        self.lock().contains_key(key)
    }

    /// Insert an artifact. Content-addressing makes double insertion
    /// benign (the bytes are equal by construction), so concurrent
    /// completions of coalesced jobs need no further coordination.
    ///
    /// The disk write is crash-safe: payload + integrity footer go to a
    /// temp file, which is fsynced *before* the rename, and the
    /// directory entry is fsynced after — a crash at any point leaves
    /// either no `<key>.json` or a complete, verifiable one.
    pub fn put(&self, key: &str, bytes: Vec<u8>) -> Result<(), String> {
        let fault = if self.dir.is_some() {
            self.fault_for(key)
        } else {
            DiskFault::None
        };
        if fault == DiskFault::Error {
            return Err(format!("injected: disk write error for artifact {key}"));
        }
        if let Some(dir) = &self.dir {
            let path = dir.join(format!("{key}.json"));
            let tmp = dir.join(format!("{key}.tmp.{}", std::process::id()));
            let write = || -> std::io::Result<()> {
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(&bytes)?;
                f.write_all(encode_footer(&bytes).as_bytes())?;
                // Data must be durable before the rename publishes the
                // name, else a crash can leave a named-but-empty file.
                f.sync_all()
            };
            write().map_err(|e| {
                let _ = std::fs::remove_file(&tmp);
                format!("cannot write artifact {}: {e}", tmp.display())
            })?;
            std::fs::rename(&tmp, &path).map_err(|e| {
                let _ = std::fs::remove_file(&tmp);
                format!("cannot move artifact into {}: {e}", path.display())
            })?;
            // Publish the directory entry too; best-effort (some
            // filesystems refuse fsync on directories).
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
            match fault {
                DiskFault::Truncate => {
                    // Corrupt the *disk* copy only: the running daemon
                    // keeps serving the good in-memory payload; the next
                    // warm reload must quarantine this file.
                    if let (Ok(f), Some(inj)) = (
                        std::fs::OpenOptions::new().write(true).open(&path),
                        self.faults
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .clone(),
                    ) {
                        let full = bytes.len() + FOOTER_LEN;
                        let _ = f.set_len(inj.truncate_len(full, key) as u64);
                    }
                }
                DiskFault::BitFlip => {
                    let inj = self
                        .faults
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .clone();
                    if let (Ok(mut on_disk), Some(inj)) = (std::fs::read(&path), inj) {
                        inj.flip_bit(&mut on_disk, key);
                        let _ = std::fs::write(&path, &on_disk);
                    }
                }
                DiskFault::None | DiskFault::Error => {}
            }
        }
        self.lock().entry(key.to_string()).or_insert(Entry {
            bytes: Arc::new(bytes),
            hits: 0,
        });
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// `(lookup hits, lookup misses)` since construction.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Corrupt artifacts quarantined by this store instance.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_faults::FaultPlan;

    fn key(n: u8) -> String {
        crate::hash::content_hash(&["test", &n.to_string()])
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("em_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip_and_counters() {
        let store = ResultStore::in_memory();
        let k = key(1);
        assert!(store.get(&k).is_none());
        store.put(&k, b"{\"x\": 1}\n".to_vec()).unwrap();
        assert_eq!(store.get(&k).unwrap().as_slice(), b"{\"x\": 1}\n");
        assert!(store.contains(&k));
        assert_eq!(store.len(), 1);
        assert_eq!(store.counters(), (1, 1));
    }

    #[test]
    fn double_insert_keeps_the_first_bytes() {
        let store = ResultStore::in_memory();
        let k = key(2);
        store.put(&k, b"first".to_vec()).unwrap();
        store.put(&k, b"second".to_vec()).unwrap();
        assert_eq!(store.get(&k).unwrap().as_slice(), b"first");
    }

    #[test]
    fn disk_backed_store_survives_a_restart() {
        let dir = temp_dir("restart");
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(&key(3), b"artifact-bytes".to_vec()).unwrap();
            assert!(dir.join(format!("{}.json", key(3))).is_file());
        }
        // Unrelated files are ignored on reload.
        std::fs::write(dir.join("notes.txt"), b"x").unwrap();
        std::fs::write(dir.join("zz.json"), b"x").unwrap();
        let warm = ResultStore::open(&dir).unwrap();
        assert_eq!(warm.len(), 1);
        assert_eq!(warm.get(&key(3)).unwrap().as_slice(), b"artifact-bytes");
        assert_eq!(warm.quarantined(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn footer_roundtrip_and_tamper_detection() {
        let payload = b"{\"key\": \"abc\"}\n";
        let mut on_disk = payload.to_vec();
        on_disk.extend_from_slice(encode_footer(payload).as_bytes());
        assert_eq!(verify_and_strip(&on_disk).unwrap(), payload);

        // Truncation (any amount) fails verification.
        for cut in [1, FOOTER_LEN / 2, FOOTER_LEN, on_disk.len() - 1] {
            let torn = &on_disk[..on_disk.len() - cut];
            assert!(verify_and_strip(torn).is_err(), "cut {cut} bytes");
        }
        // A single flipped bit anywhere fails verification.
        for at in [0, payload.len() / 2, on_disk.len() - 2] {
            let mut bad = on_disk.clone();
            bad[at] ^= 0x01;
            assert!(verify_and_strip(&bad).is_err(), "flip at {at}");
        }
        // Footer-less (legacy / foreign) bytes fail verification.
        assert!(verify_and_strip(payload).is_err());
    }

    #[test]
    fn corrupt_artifacts_are_quarantined_not_served() {
        let dir = temp_dir("quarantine");
        let (good, torn, flipped) = (key(4), key(5), key(6));
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(&good, b"good-bytes".to_vec()).unwrap();
            store.put(&torn, b"torn-bytes".to_vec()).unwrap();
            store.put(&flipped, b"flipped-bytes".to_vec()).unwrap();
        }
        // Corrupt two of the three on disk.
        let torn_path = dir.join(format!("{torn}.json"));
        let n = std::fs::metadata(&torn_path).unwrap().len();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&torn_path)
            .unwrap();
        f.set_len(n / 2).unwrap();
        drop(f);
        let flip_path = dir.join(format!("{flipped}.json"));
        let mut b = std::fs::read(&flip_path).unwrap();
        b[3] ^= 0x40;
        std::fs::write(&flip_path, &b).unwrap();

        let warm = ResultStore::open(&dir).unwrap();
        assert_eq!(warm.len(), 1, "only the intact artifact loads");
        assert_eq!(warm.get(&good).unwrap().as_slice(), b"good-bytes");
        assert!(warm.get(&torn).is_none());
        assert!(warm.get(&flipped).is_none());
        assert_eq!(warm.quarantined(), 2);
        assert!(dir.join(format!("{torn}.json.corrupt")).is_file());
        assert!(dir.join(format!("{flipped}.json.corrupt")).is_file());
        assert!(!dir.join(format!("{torn}.json")).is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_reload_shrugs_off_a_directory_of_junk() {
        let dir = temp_dir("junk");
        std::fs::create_dir_all(&dir).unwrap();
        // Key-shaped but empty / garbage / footer-less files, plus an
        // oversized key-shaped file, plus assorted non-key junk.
        std::fs::write(dir.join(format!("{}.json", key(7))), b"").unwrap();
        std::fs::write(dir.join(format!("{}.json", key(8))), vec![0u8; 700]).unwrap();
        std::fs::write(
            dir.join(format!("{}.json", key(9))),
            b"{\"no\": \"footer\"}",
        )
        .unwrap();
        let big = dir.join(format!("{}.json", key(10)));
        let f = std::fs::File::create(&big).unwrap();
        f.set_len(MAX_ENTRY_BYTES + 1).unwrap();
        drop(f);
        std::fs::write(dir.join("README"), b"not an artifact").unwrap();
        std::fs::write(dir.join("short.json"), b"x").unwrap();
        std::fs::create_dir_all(dir.join("subdir.json")).unwrap();

        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty(), "nothing loadable in a junk directory");
        assert_eq!(store.quarantined(), 3, "the three key-shaped files");
        // The store still works for new writes afterwards.
        store.put(&key(11), b"fresh".to_vec()).unwrap();
        assert_eq!(store.get(&key(11)).unwrap().as_slice(), b"fresh");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_disk_faults_fail_writes_or_corrupt_only_the_disk_copy() {
        let dir = temp_dir("faults");
        let store = ResultStore::open(&dir).unwrap();
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::parse("seed=1,disk-error=1").unwrap(),
        ));
        store.set_fault_injector(inj);
        let err = store.put(&key(12), b"doomed".to_vec()).unwrap_err();
        assert!(err.starts_with("injected:"), "{err}");
        assert!(!store.contains(&key(12)), "failed write must not land");

        // Bit-flip: the write succeeds, memory serves good bytes, the
        // disk copy is quarantined on the next reload.
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::parse("seed=1,bit-flip=1").unwrap(),
        ));
        store.set_fault_injector(inj.clone());
        store
            .put(&key(13), b"still-good-in-memory".to_vec())
            .unwrap();
        assert_eq!(
            store.get(&key(13)).unwrap().as_slice(),
            b"still-good-in-memory"
        );
        assert_eq!(inj.counts().bit_flips, 1);
        let warm = ResultStore::open(&dir).unwrap();
        assert!(
            warm.get(&key(13)).is_none(),
            "corrupt disk copy never serves"
        );
        assert_eq!(warm.quarantined(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
