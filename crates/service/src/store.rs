//! The content-addressed result store.
//!
//! Results are keyed by [`crate::hash::content_hash`] over `(resolved
//! spec, engine config, host/ISA fingerprint)` and hold the *canonical*
//! artifact bytes (wall-clock-free outcome JSON, see
//! [`em_scenarios::JobOutcome::to_json_canonical`]). Because the key
//! derives from everything that determines the solve and the solver is
//! bit-deterministic, a stored artifact is byte-identical to what a
//! fresh solve of the same submission would produce — serving it skips
//! the solve entirely, which on a bandwidth-bound code is the cheapest
//! MLUP there is.
//!
//! With a backing directory, artifacts are also persisted as
//! `<key>.json` and reloaded on startup, so the store (like the tuning
//! cache) stays warm across daemon restarts.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

struct Entry {
    bytes: Arc<Vec<u8>>,
    hits: u64,
}

/// A thread-safe, optionally disk-backed map `key -> artifact bytes`.
pub struct ResultStore {
    entries: Mutex<HashMap<String, Entry>>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultStore {
    /// An in-memory store.
    pub fn in_memory() -> ResultStore {
        ResultStore {
            entries: Mutex::new(HashMap::new()),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A disk-backed store: existing `<32-hex>.json` files in `dir` are
    /// loaded eagerly (a warm start), new artifacts are written through.
    pub fn open(dir: &Path) -> Result<ResultStore, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create result store {}: {e}", dir.display()))?;
        let mut entries = HashMap::new();
        let listing = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read result store {}: {e}", dir.display()))?;
        for item in listing {
            let item = item.map_err(|e| format!("result store listing failed: {e}"))?;
            let name = item.file_name();
            let Some(key) = name.to_str().and_then(|n| n.strip_suffix(".json")) else {
                continue;
            };
            if !crate::hash::is_key(key) {
                continue;
            }
            let bytes = std::fs::read(item.path())
                .map_err(|e| format!("cannot read artifact {}: {e}", item.path().display()))?;
            entries.insert(
                key.to_string(),
                Entry {
                    bytes: Arc::new(bytes),
                    hits: 0,
                },
            );
        }
        Ok(ResultStore {
            entries: Mutex::new(entries),
            dir: Some(dir.to_path_buf()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Entry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look a key up, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        let mut entries = self.lock();
        match entries.get_mut(key) {
            Some(e) => {
                e.hits += 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.bytes.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether a key is present (no hit accounting).
    pub fn contains(&self, key: &str) -> bool {
        self.lock().contains_key(key)
    }

    /// Insert an artifact. Content-addressing makes double insertion
    /// benign (the bytes are equal by construction), so concurrent
    /// completions of coalesced jobs need no further coordination.
    pub fn put(&self, key: &str, bytes: Vec<u8>) -> Result<(), String> {
        if let Some(dir) = &self.dir {
            let path = dir.join(format!("{key}.json"));
            // Write-then-rename: a crash mid-write must not leave a torn
            // artifact to be served after the next warm start.
            let tmp = dir.join(format!("{key}.tmp.{}", std::process::id()));
            std::fs::write(&tmp, &bytes)
                .map_err(|e| format!("cannot write artifact {}: {e}", tmp.display()))?;
            std::fs::rename(&tmp, &path).map_err(|e| {
                let _ = std::fs::remove_file(&tmp);
                format!("cannot move artifact into {}: {e}", path.display())
            })?;
        }
        self.lock().entry(key.to_string()).or_insert(Entry {
            bytes: Arc::new(bytes),
            hits: 0,
        });
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// `(lookup hits, lookup misses)` since construction.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> String {
        crate::hash::content_hash(&["test", &n.to_string()])
    }

    #[test]
    fn put_get_roundtrip_and_counters() {
        let store = ResultStore::in_memory();
        let k = key(1);
        assert!(store.get(&k).is_none());
        store.put(&k, b"{\"x\": 1}\n".to_vec()).unwrap();
        assert_eq!(store.get(&k).unwrap().as_slice(), b"{\"x\": 1}\n");
        assert!(store.contains(&k));
        assert_eq!(store.len(), 1);
        assert_eq!(store.counters(), (1, 1));
    }

    #[test]
    fn double_insert_keeps_the_first_bytes() {
        let store = ResultStore::in_memory();
        let k = key(2);
        store.put(&k, b"first".to_vec()).unwrap();
        store.put(&k, b"second".to_vec()).unwrap();
        assert_eq!(store.get(&k).unwrap().as_slice(), b"first");
    }

    #[test]
    fn disk_backed_store_survives_a_restart() {
        let dir = std::env::temp_dir().join(format!("em_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(&key(3), b"artifact-bytes".to_vec()).unwrap();
            assert!(dir.join(format!("{}.json", key(3))).is_file());
        }
        // Unrelated files are ignored on reload.
        std::fs::write(dir.join("notes.txt"), b"x").unwrap();
        std::fs::write(dir.join("zz.json"), b"x").unwrap();
        let warm = ResultStore::open(&dir).unwrap();
        assert_eq!(warm.len(), 1);
        assert_eq!(warm.get(&key(3)).unwrap().as_slice(), b"artifact-bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
