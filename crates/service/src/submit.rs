//! Decoding `POST /jobs` bodies into a [`ScenarioSpec`].
//!
//! Two forms are accepted, distinguished by the first non-whitespace
//! byte:
//!
//! - **TOML** (anything not starting with `{`): the existing scenario
//!   file format, parsed by [`ScenarioSpec::from_toml_str`];
//! - **compact JSON** (starting with `{`): a small wrapper for clients
//!   that would rather not template TOML —
//!   `{"builtin": "<catalog name>"}` or `{"toml": "<toml text>"}`,
//!   optionally overriding `engine` (a kind from
//!   [`EngineDecl::KINDS`]), `threads`, `lambda_nm`, `max_periods`,
//!   and attaching a `deadline_ms` job deadline (admission-capped at
//!   [`MAX_DEADLINE_MS`]).
//!
//! The spec is validated here, so every admission failure is a clean
//! HTTP 400 with the validator's message instead of a queued job that
//! dies later.

use em_scenarios::spec::EngineDecl;
use em_scenarios::{library, ScenarioSpec};

/// One decoded `POST /jobs` body: the spec plus job-control options
/// that are not part of the spec's content identity (a deadline does
/// not change what is computed, only whether we wait for it).
#[derive(Clone, Debug)]
pub struct SubmitRequest {
    pub spec: ScenarioSpec,
    /// Optional deadline, milliseconds from admission; capped at
    /// [`MAX_DEADLINE_MS`].
    pub deadline_ms: Option<u64>,
}

/// Parse and validate one submission body.
pub fn parse_submission(body: &[u8]) -> Result<SubmitRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let trimmed = text.trim_start();
    if trimmed.is_empty() {
        return Err("empty body (expected a scenario spec)".to_string());
    }
    let (mut spec, deadline_ms) = if trimmed.starts_with('{') {
        parse_compact(trimmed)?
    } else {
        (ScenarioSpec::from_toml_str(text)?, None)
    };
    spec.validate()?;
    // Sweeps are legal TOML but (deliberately) not servable: one job id
    // maps to one content-addressed artifact, and a sweep's natural
    // serving shape is one request per point (which then dedupe
    // independently).
    if spec.sweep.is_some() {
        return Err(
            "sweeps are not accepted over the API; submit one request per lambda point".to_string(),
        );
    }
    // Serving is bounded work by contract; convergence caps make a
    // single request's cost predictable for admission control.
    spec.convergence.max_periods = spec.convergence.max_periods.min(MAX_PERIODS_CAP);
    Ok(SubmitRequest {
        spec,
        deadline_ms: deadline_ms.map(|ms| ms.min(MAX_DEADLINE_MS)),
    })
}

/// Upper bound on `max_periods` for served jobs (a single request must
/// not be able to ask for unbounded work).
pub const MAX_PERIODS_CAP: usize = 200;

/// Upper bound on a client-supplied `deadline_ms` (10 minutes): a
/// deadline is a promise the daemon tracks per job, so it is capped the
/// same way convergence work is.
pub const MAX_DEADLINE_MS: u64 = 600_000;

fn parse_compact(text: &str) -> Result<(ScenarioSpec, Option<u64>), String> {
    let doc = em_json::parse(text).map_err(|e| format!("compact JSON form: {e}"))?;
    let obj = doc
        .as_obj()
        .ok_or_else(|| "compact JSON form must be an object".to_string())?;
    for (key, _) in obj {
        if !matches!(
            key.as_str(),
            "builtin" | "toml" | "engine" | "threads" | "lambda_nm" | "max_periods" | "deadline_ms"
        ) {
            return Err(format!("compact JSON form: unknown key `{key}`"));
        }
    }

    let mut spec = match (doc.get("builtin"), doc.get("toml")) {
        (Some(b), None) => {
            let name = b
                .as_str()
                .ok_or_else(|| "`builtin` must be a string".to_string())?;
            library::builtin(name).ok_or_else(|| {
                format!(
                    "unknown builtin scenario `{name}` (known: {})",
                    library::builtin_names().join(", ")
                )
            })?
        }
        (None, Some(t)) => {
            let toml = t
                .as_str()
                .ok_or_else(|| "`toml` must be a string".to_string())?;
            ScenarioSpec::from_toml_str(toml)?
        }
        _ => return Err("compact JSON form needs exactly one of `builtin` or `toml`".to_string()),
    };

    let threads = match doc.get("threads") {
        None => None,
        Some(v) => Some(
            v.as_i64()
                .filter(|&n| n >= 0)
                .ok_or_else(|| "`threads` must be a non-negative integer".to_string())?
                as usize,
        ),
    };
    if let Some(e) = doc.get("engine") {
        let kind = e
            .as_str()
            .ok_or_else(|| "`engine` must be an engine-kind string".to_string())?;
        // `auto` keeps threads = 0 ("this job's budget share") unless
        // the client pinned a count; concrete kinds need at least one.
        spec.engine = if kind == "auto" {
            EngineDecl::Auto {
                threads: threads.unwrap_or(0),
            }
        } else {
            EngineDecl::auto(kind, threads.unwrap_or(1))?
        };
    } else if let Some(t) = threads {
        if let EngineDecl::Auto { .. } = spec.engine {
            spec.engine = EngineDecl::Auto { threads: t };
        } else {
            return Err("`threads` without `engine` only applies to `auto` specs".to_string());
        }
    }
    if let Some(v) = doc.get("lambda_nm") {
        let nm = v
            .as_f64()
            .filter(|n| n.is_finite() && *n > 0.0)
            .ok_or_else(|| "`lambda_nm` must be a positive number".to_string())?;
        spec.physics.lambda_nm = nm;
    }
    if let Some(v) = doc.get("max_periods") {
        let mp = v
            .as_i64()
            .filter(|&n| n >= 1)
            .ok_or_else(|| "`max_periods` must be a positive integer".to_string())?;
        spec.convergence.max_periods = mp as usize;
    }
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_i64()
                .filter(|&n| n >= 1)
                .ok_or_else(|| "`deadline_ms` must be a positive integer".to_string())?
                as u64,
        ),
    };
    Ok((spec, deadline_ms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_json::Json;

    #[test]
    fn toml_bodies_parse_through_the_scenario_codec() {
        let toml = library::builtin("vacuum-slab").unwrap().to_toml_string();
        let req = parse_submission(toml.as_bytes()).unwrap();
        assert_eq!(req.spec.name, "vacuum-slab");
        assert_eq!(req.deadline_ms, None, "TOML bodies carry no deadline");
    }

    #[test]
    fn compact_builtin_with_overrides() {
        let body = br#"{"builtin": "vacuum-slab", "engine": "auto", "lambda_nm": 601.5, "max_periods": 3}"#;
        let spec = parse_submission(body).unwrap().spec;
        assert_eq!(spec.engine, EngineDecl::Auto { threads: 0 });
        assert_eq!(spec.physics.lambda_nm, 601.5);
        assert_eq!(spec.convergence.max_periods, 3);
    }

    #[test]
    fn compact_toml_form_and_thread_pinning() {
        let toml = library::builtin("vacuum-slab").unwrap().to_toml_string();
        let body = Json::obj(vec![
            ("toml", Json::str(toml)),
            ("engine", Json::str("auto")),
            ("threads", Json::Int(2)),
        ])
        .pretty();
        let spec = parse_submission(body.as_bytes()).unwrap().spec;
        assert_eq!(spec.engine, EngineDecl::Auto { threads: 2 });
    }

    #[test]
    fn deadlines_parse_and_are_capped() {
        let body = br#"{"builtin": "vacuum-slab", "deadline_ms": 1500}"#;
        assert_eq!(parse_submission(body).unwrap().deadline_ms, Some(1500));

        let body = br#"{"builtin": "vacuum-slab", "deadline_ms": 99999999999}"#;
        assert_eq!(
            parse_submission(body).unwrap().deadline_ms,
            Some(MAX_DEADLINE_MS),
            "absurd deadlines are capped at admission"
        );

        for bad in [
            &br#"{"builtin": "vacuum-slab", "deadline_ms": 0}"#[..],
            br#"{"builtin": "vacuum-slab", "deadline_ms": -3}"#,
            br#"{"builtin": "vacuum-slab", "deadline_ms": "soon"}"#,
        ] {
            let err = parse_submission(bad).unwrap_err();
            assert!(err.contains("deadline_ms"), "{err}");
        }
    }

    #[test]
    fn rejections_name_the_problem() {
        for (body, needle) in [
            (&b"\xff\xfe"[..], "UTF-8"),
            (b"   ", "empty body"),
            (b"{\"builtin\": \"no-such\"}", "unknown builtin"),
            (b"{\"builtin\": \"vacuum-slab\", \"x\": 1}", "unknown key"),
            (b"{}", "exactly one of"),
            (b"{\"builtin\": \"a\", \"toml\": \"b\"}", "exactly one of"),
            (
                b"{\"builtin\": \"vacuum-slab\", \"engine\": \"warp\"}",
                "warp",
            ),
            (
                b"{\"builtin\": \"vacuum-slab\", \"lambda_nm\": -5}",
                "lambda_nm",
            ),
            (
                b"{\"builtin\": \"vacuum-slab\", \"max_periods\": 0}",
                "max_periods",
            ),
            (
                b"{\"builtin\": \"vacuum-slab\", \"threads\": 2}",
                "only applies to `auto`",
            ),
            (b"{\"oops", "compact JSON form"),
            (b"name = ", "line"),
        ] {
            let err = parse_submission(body).unwrap_err();
            assert!(
                err.contains(needle),
                "expected `{needle}` in `{err}` for {:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn sweeps_are_rejected_and_periods_are_capped() {
        let mut spec = library::builtin("vacuum-slab").unwrap();
        spec.sweep = Some(em_scenarios::SweepDecl {
            lambdas: vec![em_scenarios::SweepPoint {
                nm: 500.0,
                cells: 10.0,
            }],
        });
        let err = parse_submission(spec.to_toml_string().as_bytes()).unwrap_err();
        assert!(err.contains("sweep"), "{err}");

        let mut spec = library::builtin("vacuum-slab").unwrap();
        spec.convergence.max_periods = 10_000;
        let capped = parse_submission(spec.to_toml_string().as_bytes()).unwrap();
        assert_eq!(capped.spec.convergence.max_periods, MAX_PERIODS_CAP);
    }
}
