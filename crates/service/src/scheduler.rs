//! Admission control and job execution.
//!
//! The serving layer's contract mirrors the batch runner's: concurrent
//! jobs and their intra-solve thread groups share one
//! [`ThreadBudget`], so the daemon never oversubscribes the host no
//! matter how requests pile up. Three mechanisms enforce it:
//!
//! - **admission**: a submission is rejected up front when the queue is
//!   full (HTTP 429), the spec is invalid (400), or its engine demands
//!   more threads than a worker's budget share (400) — nothing
//!   unbounded ever reaches a worker;
//! - **dedupe**: a submission whose content key is already in the
//!   result store is answered without a job at all, and one whose key
//!   is already queued/running coalesces onto that job — identical
//!   work is paid once;
//! - **execution**: a fixed pool of `workers` threads leases exactly
//!   its job's engine-thread demand from the shared budget while
//!   running (`workers x threads_per_job <= budget` by construction,
//!   watermarked in [`ServiceStats::peak_threads_in_use`]).
//!
//! `engine = "auto"` resolves through the process-wide
//! [`SharedTuneCache`] at admission time, so the tuned configuration is
//! part of the job's content key and stays warm across all requests.

use crate::hash::content_hash;
use crate::stats::ServiceStats;
use crate::store::ResultStore;
use autotune::{host_fingerprint, ResolveOptions, SharedTuneCache, TuneKey};
use em_json::Json;
use em_scenarios::runner::{run_batch, BatchOptions};
use em_scenarios::spec::EngineDecl;
use em_scenarios::{JobOutcome, ScenarioSpec};
use mwd_core::cancel::{CANCELLED_PREFIX, TIMEOUT_PREFIX};
use mwd_core::{CancelToken, ThreadBudget};
use perf_models::MachineSpec;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Capacity and tuning knobs for [`Scheduler::start`].
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Worker-pool size; 0 derives `min(2, budget)` (serving favors
    /// deep jobs over wide pools — the engine scales with threads, and
    /// fewer concurrent grids fight less over shared bandwidth).
    pub workers: usize,
    /// Engine threads granted to each job; 0 derives `budget / workers`.
    pub threads_per_job: usize,
    /// Maximum jobs waiting to run; beyond this, submissions get 429.
    pub queue_depth: usize,
    /// The thread budget shared by all concurrent jobs.
    pub budget: ThreadBudget,
    /// Native probes per `auto`-resolution miss (0 = model/sim only).
    pub refine_top: usize,
    /// Finished job records retained for `GET /jobs/:id` (oldest are
    /// pruned beyond this; results stay in the store regardless).
    pub max_records: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 0,
            threads_per_job: 0,
            queue_depth: 32,
            budget: ThreadBudget::host(),
            refine_top: 0,
            max_records: 4096,
        }
    }
}

/// Lifecycle of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
    /// The job's deadline expired — while queued (shed before
    /// dispatch) or mid-solve (halted at the next solver checkpoint).
    Timeout,
}

impl JobState {
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Timeout => "timeout",
        }
    }

    fn finished(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled | JobState::Timeout
        )
    }
}

/// One job's bookkeeping record.
#[derive(Clone, Debug)]
pub struct JobRecord {
    pub id: u64,
    pub scenario: String,
    /// Content key of the (future) artifact.
    pub key: String,
    pub engine_label: String,
    pub threads: usize,
    pub state: JobState,
    pub error: Option<String>,
    submitted: Instant,
    pub wait_secs: f64,
    pub run_secs: f64,
    spec: ScenarioSpec,
    /// This job's cancellation handle: carries the admission deadline
    /// (if any) and is tripped by `POST /jobs/:id/cancel`; the clone
    /// handed to the runner is polled inside the solver.
    cancel: CancelToken,
}

impl JobRecord {
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("job", Json::str(job_name(self.id))),
            ("scenario", Json::str(&self.scenario)),
            ("state", Json::str(self.state.as_str())),
            ("key", Json::str(&self.key)),
            ("engine", Json::str(&self.engine_label)),
            ("threads", Json::Int(self.threads as i64)),
            ("wait_secs", Json::Num(self.wait_secs)),
            ("run_secs", Json::Num(self.run_secs)),
        ];
        if self.state == JobState::Done {
            pairs.push(("result", Json::str(format!("/results/{}", self.key))));
        }
        match &self.error {
            Some(e) => pairs.push(("error", Json::str(e))),
            None => pairs.push(("error", Json::Null)),
        }
        Json::obj(pairs)
    }
}

/// Render / parse the public `j-<n>` job names.
pub fn job_name(id: u64) -> String {
    format!("j-{id}")
}

pub fn parse_job_name(name: &str) -> Option<u64> {
    name.strip_prefix("j-")?.parse().ok()
}

/// The outcome of an accepted submission.
#[derive(Clone, Debug, PartialEq)]
pub enum Submission {
    /// The artifact already exists; no job was created.
    Cached { key: String },
    /// An identical job is already queued/running; this submission
    /// rides along on it.
    Coalesced { job: u64, key: String },
    /// A new job was queued.
    Queued { job: u64, key: String },
}

impl Submission {
    pub fn key(&self) -> &str {
        match self {
            Submission::Cached { key }
            | Submission::Coalesced { key, .. }
            | Submission::Queued { key, .. } => key,
        }
    }
}

/// Why a submission was turned away.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// 400: the spec (or its engine demand) is unservable.
    Invalid(String),
    /// 429: the queue is at capacity.
    Overloaded { queue_depth: usize },
    /// 503: the daemon is draining.
    ShuttingDown,
    /// 500: tuning or another internal step failed.
    Internal(String),
}

/// How a fetched result can be unavailable.
#[derive(Clone, Debug, PartialEq)]
pub enum ResultError {
    UnknownJob,
    /// The job exists but has no artifact yet (state inside).
    NotReady(JobState),
    /// The job failed; message inside.
    JobFailed(String),
    /// The store lost the artifact (should not happen).
    Missing,
}

/// What `POST /jobs/:id/cancel` achieved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued: it is now terminally `cancelled`.
    Cancelled,
    /// The job is running: its token is tripped and the solver will
    /// halt at its next checkpoint (within one solver period).
    Cancelling,
}

/// Why `POST /jobs/:id/cancel` could not act.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelError {
    UnknownJob,
    /// Already in a terminal state (inside) — nothing left to cancel.
    AlreadyFinished(JobState),
}

struct SchedState {
    jobs: HashMap<u64, JobRecord>,
    queue: VecDeque<u64>,
    /// Content key -> queued/running job, for coalescing.
    active_by_key: HashMap<String, u64>,
    next_id: u64,
    draining: bool,
    running: usize,
}

/// The function that actually executes one admitted spec with a thread
/// allowance and this job's cancellation token. Production uses
/// [`solve_runner`]; tests inject stubs to control timing
/// deterministically.
pub type RunFn =
    dyn Fn(&ScenarioSpec, usize, &CancelToken) -> Result<Vec<JobOutcome>, String> + Send + Sync;

/// The production runner: one spec through the batch runner's code path
/// (validation, panic isolation, deterministic outcome) on a budget of
/// exactly `threads`, observing `cancel` at every solver checkpoint.
pub fn solve_runner(
    spec: &ScenarioSpec,
    threads: usize,
    cancel: &CancelToken,
) -> Result<Vec<JobOutcome>, String> {
    let opts = BatchOptions {
        workers: 1,
        threads: Some(threads),
        budget: ThreadBudget::new(threads),
        quiet: true,
        out_dir: None,
        cancel: Some(cancel.clone()),
        ..Default::default()
    };
    run_batch(std::slice::from_ref(spec), &opts).map(|r| r.outcomes)
}

pub struct Scheduler {
    pub workers: usize,
    pub threads_per_job: usize,
    pub queue_depth: usize,
    pub budget_total: usize,
    refine_top: usize,
    max_records: usize,
    machine: MachineSpec,
    fingerprint: String,
    state: Mutex<SchedState>,
    /// Signalled when work is queued or draining begins.
    work: Condvar,
    /// Signalled when a running job finishes.
    idle: Condvar,
    store: Arc<ResultStore>,
    tune: SharedTuneCache,
    stats: Arc<ServiceStats>,
    run: Box<RunFn>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl Scheduler {
    /// Resolve the configuration, spawn the worker pool, and hand back
    /// the shared handle. `workers x threads_per_job` is checked
    /// against the budget here, so the invariant holds by construction.
    pub fn start(
        cfg: SchedulerConfig,
        store: Arc<ResultStore>,
        tune: SharedTuneCache,
        stats: Arc<ServiceStats>,
        run: Box<RunFn>,
    ) -> Result<Arc<Scheduler>, String> {
        let total = cfg.budget.total();
        let workers = if cfg.workers == 0 {
            total.min(2)
        } else {
            cfg.workers.min(total)
        };
        let threads_per_job = if cfg.threads_per_job == 0 {
            (total / workers).max(1)
        } else {
            cfg.threads_per_job
        };
        if workers * threads_per_job > total {
            return Err(format!(
                "{workers} worker(s) x {threads_per_job} thread(s) exceeds the budget of {total}"
            ));
        }
        if cfg.queue_depth == 0 {
            return Err("queue depth must be at least 1".to_string());
        }
        let machine = ResolveOptions::default().machine;
        let scheduler = Arc::new(Scheduler {
            workers,
            threads_per_job,
            queue_depth: cfg.queue_depth,
            budget_total: total,
            refine_top: cfg.refine_top,
            max_records: cfg.max_records.max(1),
            fingerprint: host_fingerprint(&machine),
            machine,
            state: Mutex::new(SchedState {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                active_by_key: HashMap::new(),
                next_id: 1,
                draining: false,
                running: 0,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            store,
            tune,
            stats,
            run,
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = relock(scheduler.handles.lock());
        for w in 0..workers {
            let s = scheduler.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("em-service-worker-{w}"))
                    .spawn(move || s.worker_loop())
                    .map_err(|e| format!("cannot spawn worker: {e}"))?,
            );
        }
        drop(handles);
        Ok(scheduler)
    }

    /// The host/ISA fingerprint folded into every content key.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Resolve a spec's engine to the concrete declaration it will run
    /// under (through the shared tuning cache for `auto`).
    ///
    /// On a cold cache this runs a synchronous tuning search, which is
    /// why the event loop routes `POST /jobs` to its router pool while
    /// answering every other route inline on the loop thread.
    fn resolve_engine(&self, spec: &ScenarioSpec) -> Result<EngineDecl, SubmitError> {
        match spec.engine {
            EngineDecl::Auto { threads } => {
                let t = if threads == 0 {
                    self.threads_per_job
                } else {
                    threads
                };
                let ropts = ResolveOptions {
                    machine: self.machine,
                    refine_top: self.refine_top,
                    ..Default::default()
                };
                let key = TuneKey::for_host(&ropts.machine, spec.dims(), "mwd", t);
                let r = self
                    .tune
                    .resolve(&key, &ropts)
                    .map_err(SubmitError::Internal)?;
                ServiceStats::bump(if r.cache_hit {
                    &self.stats.tune_hits
                } else {
                    &self.stats.tune_misses
                });
                let cfg = r.config;
                Ok(EngineDecl::Mwd {
                    dw: cfg.dw,
                    bz: cfg.bz,
                    tg_x: cfg.tg.x,
                    tg_z: cfg.tg.z,
                    tg_c: cfg.tg.c,
                    groups: cfg.groups,
                })
            }
            other => Ok(other),
        }
    }

    /// Whether resolving this spec's engine is O(lookup) rather than a
    /// tuning search (non-`auto`, or the shared cache already has the
    /// key).
    fn resolution_is_cheap(&self, spec: &ScenarioSpec) -> bool {
        match spec.engine {
            EngineDecl::Auto { threads } => {
                let t = if threads == 0 {
                    self.threads_per_job
                } else {
                    threads
                };
                let key = TuneKey::for_host(&self.machine, spec.dims(), "mwd", t);
                self.tune.with(|c| c.get(&key).is_some())
            }
            _ => true,
        }
    }

    /// [`Self::submit_with_deadline`] without a deadline.
    pub fn submit(&self, spec: ScenarioSpec) -> Result<Submission, SubmitError> {
        self.submit_with_deadline(spec, None)
    }

    /// Admit one validated spec: dedupe against the store, coalesce
    /// against in-flight work, or queue a new job. A deadline (already
    /// admission-capped by the parser) starts counting *now* — queue
    /// wait spends it, an expired queued job is shed before dispatch,
    /// and an expired running job halts at its next solver checkpoint;
    /// either way it lands as the `timeout` terminal state.
    pub fn submit_with_deadline(
        &self,
        spec: ScenarioSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Submission, SubmitError> {
        // Fast-fail before paying engine resolution: a draining daemon
        // answers 503 immediately, and a full queue answers 429 without
        // running a tuning search on the handler thread — unless
        // resolution is a cheap cache lookup, in which case the request
        // may still turn out to be a store hit or coalesce (neither
        // needs a queue slot).
        {
            let st = relock(self.state.lock());
            if st.draining {
                return Err(SubmitError::ShuttingDown);
            }
            if st.queue.len() >= self.queue_depth && !self.resolution_is_cheap(&spec) {
                ServiceStats::bump(&self.stats.rejected_overload);
                return Err(SubmitError::Overloaded {
                    queue_depth: self.queue_depth,
                });
            }
        }
        let decl = self.resolve_engine(&spec)?;
        // A multi-process job (workers > 1) leases threads for *every*
        // worker slab at once, so admission budgets the product.
        let demand = decl.threads().saturating_mul(spec.workers.max(1));
        if demand > self.threads_per_job {
            return Err(SubmitError::Invalid(format!(
                "engine `{}` across {} worker(s) demands {} thread(s); this server grants at most {} per job",
                decl.label(),
                spec.workers.max(1),
                demand,
                self.threads_per_job
            )));
        }
        // The canonical identity: the resolved spec (declared engine
        // replaced by what will actually run), the engine label again
        // (cheap belt-and-braces), and the host/ISA fingerprint.
        let mut resolved = spec;
        resolved.engine = decl;
        let canonical = resolved.to_toml_string();
        let key = content_hash(&[&canonical, &decl.label(), &self.fingerprint]);

        if self.store.contains(&key) {
            ServiceStats::bump(&self.stats.store_hits);
            return Ok(Submission::Cached { key });
        }

        let mut st = relock(self.state.lock());
        if st.draining {
            return Err(SubmitError::ShuttingDown);
        }
        // Re-check the store under the state lock: a worker finishing
        // this exact key stores the artifact before clearing it from
        // `active_by_key` (both before flipping the record to Done), so
        // this recheck closes the window in which the unlocked check
        // above missed and the coalesce check below would too —
        // without it, a submission racing a completing identical job
        // would queue a full duplicate solve.
        if self.store.contains(&key) {
            ServiceStats::bump(&self.stats.store_hits);
            return Ok(Submission::Cached { key });
        }
        if let Some(&job) = st.active_by_key.get(&key) {
            ServiceStats::bump(&self.stats.coalesced);
            return Ok(Submission::Coalesced { job, key });
        }
        if st.queue.len() >= self.queue_depth {
            ServiceStats::bump(&self.stats.rejected_overload);
            return Err(SubmitError::Overloaded {
                queue_depth: self.queue_depth,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        let cancel = match deadline_ms {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::none(),
        };
        let record = JobRecord {
            id,
            scenario: resolved.name.clone(),
            key: key.clone(),
            engine_label: decl.label(),
            threads: demand,
            state: JobState::Queued,
            error: None,
            submitted: Instant::now(),
            wait_secs: 0.0,
            run_secs: 0.0,
            spec: resolved,
            cancel,
        };
        st.jobs.insert(id, record);
        st.queue.push_back(id);
        st.active_by_key.insert(key.clone(), id);
        Self::prune_records(&mut st, self.max_records);
        drop(st);
        self.work.notify_one();
        ServiceStats::bump(&self.stats.submitted);
        Ok(Submission::Queued { job: id, key })
    }

    /// Drop the oldest *finished* records beyond the retention cap.
    fn prune_records(st: &mut SchedState, max_records: usize) {
        if st.jobs.len() <= max_records {
            return;
        }
        let mut finished: Vec<u64> = st
            .jobs
            .values()
            .filter(|r| r.state.finished())
            .map(|r| r.id)
            .collect();
        finished.sort_unstable();
        let excess = st.jobs.len() - max_records;
        for id in finished.into_iter().take(excess) {
            st.jobs.remove(&id);
        }
    }

    /// Map an outcome / runner error to the job's terminal state by the
    /// halt-error prefix convention.
    fn terminal_for_error(e: String) -> (JobState, Option<String>) {
        let state = if e.starts_with(TIMEOUT_PREFIX) {
            JobState::Timeout
        } else if e.starts_with(CANCELLED_PREFIX) {
            JobState::Cancelled
        } else {
            JobState::Failed
        };
        (state, Some(e))
    }

    fn worker_loop(self: Arc<Scheduler>) {
        loop {
            let (id, spec, threads, key, cancel) = {
                let mut st = relock(self.state.lock());
                'claim: loop {
                    let id = loop {
                        if let Some(id) = st.queue.pop_front() {
                            break id;
                        }
                        if st.draining {
                            return;
                        }
                        st = relock(self.work.wait(st));
                    };
                    // A cancel or expiry can race this claim: the
                    // record may already be finished (lazy queue
                    // removal) or even pruned. Shed such ids instead of
                    // dispatching (or panicking) on them.
                    let Some(r) = st.jobs.get_mut(&id) else {
                        continue 'claim;
                    };
                    if r.state.finished() {
                        continue 'claim;
                    }
                    // Shed expired (or just-cancelled) queued jobs
                    // before spending a worker on them.
                    if let Some(err) = r.cancel.halt_error() {
                        let timeout = err.starts_with(TIMEOUT_PREFIX);
                        r.state = if timeout {
                            JobState::Timeout
                        } else {
                            JobState::Cancelled
                        };
                        r.error = Some(format!("{err} while queued"));
                        r.wait_secs = r.submitted.elapsed().as_secs_f64();
                        let key = r.key.clone();
                        if st.active_by_key.get(&key) == Some(&id) {
                            st.active_by_key.remove(&key);
                        }
                        ServiceStats::bump(if timeout {
                            &self.stats.timeout
                        } else {
                            &self.stats.cancelled
                        });
                        self.idle.notify_all();
                        continue 'claim;
                    }
                    r.state = JobState::Running;
                    r.wait_secs = r.submitted.elapsed().as_secs_f64();
                    let claimed = (
                        id,
                        r.spec.clone(),
                        r.threads,
                        r.key.clone(),
                        r.cancel.clone(),
                    );
                    st.running += 1;
                    break 'claim claimed;
                }
            };

            self.stats.lease_threads(threads);
            let t0 = Instant::now();
            // The production runner isolates solver panics per outcome;
            // this guard catches panics in injected test runners (and
            // any future runner) so a worker thread never dies silently.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                (self.run)(&spec, threads, &cancel)
            }))
            .unwrap_or_else(|_| Err("job runner panicked".to_string()));
            let run_secs = t0.elapsed().as_secs_f64();
            self.stats.release_threads(threads);

            // The artifact (including its disk write for backed stores)
            // is published *before* the state lock is taken: holding
            // the scheduler lock across file I/O would stall every API
            // request, and store-before-Done both preserves the "Done
            // implies stored" contract and lets submit()'s under-lock
            // store recheck close the dedupe race with this completion.
            let (state, error) = match result {
                Ok(outcomes) => match outcomes.iter().find_map(|o| o.error.clone()) {
                    Some(e) => Self::terminal_for_error(e),
                    None => match self.store.put(&key, artifact_bytes(&key, &outcomes)) {
                        Ok(()) => (JobState::Done, None),
                        Err(e) => (JobState::Failed, Some(e)),
                    },
                },
                Err(e) => Self::terminal_for_error(e),
            };
            let mut st = relock(self.state.lock());
            if let Some(r) = st.jobs.get_mut(&id) {
                r.state = state;
                r.error = error;
                r.run_secs = run_secs;
            }
            if st.active_by_key.get(&key) == Some(&id) {
                st.active_by_key.remove(&key);
            }
            st.running -= 1;
            drop(st);
            ServiceStats::bump(match state {
                JobState::Done => &self.stats.completed,
                JobState::Cancelled => &self.stats.cancelled,
                JobState::Timeout => &self.stats.timeout,
                _ => &self.stats.failed,
            });
            self.idle.notify_all();
        }
    }

    /// Cancel one specific job. A queued job flips to `cancelled` right
    /// here (its queue slot is shed lazily by the claim loop); a
    /// running job gets its token tripped and halts at the solver's
    /// next checkpoint. Finished jobs are left alone.
    pub fn cancel_job(&self, id: u64) -> Result<CancelOutcome, CancelError> {
        let mut st = relock(self.state.lock());
        let Some(r) = st.jobs.get_mut(&id) else {
            return Err(CancelError::UnknownJob);
        };
        match r.state {
            s if s.finished() => Err(CancelError::AlreadyFinished(s)),
            JobState::Running => {
                r.cancel.cancel();
                Ok(CancelOutcome::Cancelling)
            }
            _ => {
                // Trip the token too, so a claim racing this call sheds
                // the job even if it sees the record first.
                r.cancel.cancel();
                r.state = JobState::Cancelled;
                r.error = Some(format!(
                    "{CANCELLED_PREFIX} cancelled by request while queued"
                ));
                r.wait_secs = r.submitted.elapsed().as_secs_f64();
                let key = r.key.clone();
                if st.active_by_key.get(&key) == Some(&id) {
                    st.active_by_key.remove(&key);
                }
                ServiceStats::bump(&self.stats.cancelled);
                self.idle.notify_all();
                Ok(CancelOutcome::Cancelled)
            }
        }
    }

    /// Stop admitting, cancel queued jobs, drain running ones, and join
    /// the worker pool. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = relock(self.state.lock());
            st.draining = true;
            while let Some(id) = st.queue.pop_front() {
                // Skip ids whose record already finished (e.g. a
                // targeted cancel left them for lazy queue removal).
                if let Some(r) = st.jobs.get_mut(&id).filter(|r| !r.state.finished()) {
                    r.state = JobState::Cancelled;
                    r.error = Some("cancelled: daemon shut down before this job started".into());
                    ServiceStats::bump(&self.stats.cancelled);
                }
            }
            let SchedState {
                active_by_key,
                jobs,
                ..
            } = &mut *st;
            active_by_key.retain(|_, id| matches!(jobs.get(id), Some(r) if !r.state.finished()));
            self.work.notify_all();
            while st.running > 0 {
                st = relock(self.idle.wait(st));
            }
        }
        let handles: Vec<_> = relock(self.handles.lock()).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// A job's public status document.
    pub fn job_json(&self, id: u64) -> Option<Json> {
        relock(self.state.lock())
            .jobs
            .get(&id)
            .map(JobRecord::to_json)
    }

    /// A finished job's artifact bytes.
    pub fn result_bytes(&self, id: u64) -> Result<Arc<Vec<u8>>, ResultError> {
        let (state, key, error) = {
            let st = relock(self.state.lock());
            let Some(r) = st.jobs.get(&id) else {
                return Err(ResultError::UnknownJob);
            };
            (r.state, r.key.clone(), r.error.clone())
        };
        match state {
            JobState::Done => self.store.get(&key).ok_or(ResultError::Missing),
            JobState::Failed | JobState::Cancelled | JobState::Timeout => Err(
                ResultError::JobFailed(error.unwrap_or_else(|| "job failed".to_string())),
            ),
            other => Err(ResultError::NotReady(other)),
        }
    }

    /// `(queued, running, total records)` right now.
    pub fn queue_counts(&self) -> (usize, usize, usize) {
        let st = relock(self.state.lock());
        (st.queue.len(), st.running, st.jobs.len())
    }

    /// Block until no job is queued or running (test helper; returns
    /// false on timeout).
    pub fn wait_idle(&self, timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = relock(self.state.lock());
        while !st.queue.is_empty() || st.running > 0 {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .idle
                .wait_timeout(st, left)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
        true
    }
}

/// The canonical artifact document for one job's outcomes.
pub fn artifact_bytes(key: &str, outcomes: &[JobOutcome]) -> Vec<u8> {
    let doc = Json::obj(vec![
        ("key", Json::str(key)),
        (
            "outcomes",
            Json::Arr(outcomes.iter().map(JobOutcome::to_json_canonical).collect()),
        ),
    ]);
    doc.pretty().into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_names_roundtrip() {
        assert_eq!(job_name(7), "j-7");
        assert_eq!(parse_job_name("j-7"), Some(7));
        assert_eq!(parse_job_name("x-7"), None);
        assert_eq!(parse_job_name("j-"), None);
        assert_eq!(parse_job_name("j-1x"), None);
    }

    #[test]
    fn config_resolution_rejects_overcommit() {
        let cfg = SchedulerConfig {
            workers: 3,
            threads_per_job: 3,
            budget: ThreadBudget::new(4),
            ..Default::default()
        };
        let r = Scheduler::start(
            cfg,
            Arc::new(ResultStore::in_memory()),
            SharedTuneCache::in_memory(),
            Arc::new(ServiceStats::default()),
            Box::new(|_, _, _| Ok(Vec::new())),
        );
        let err = r.err().expect("overcommitted config is rejected");
        assert!(err.contains("exceeds the budget"), "{err}");
    }
}
