//! The epoll connection plane: a non-blocking event loop hand-rolled
//! on `std::os::fd` (this environment has no crates.io, so no `mio`).
//!
//! One thread owns every socket. Connections are edge-triggered
//! (`EPOLLIN | EPOLLRDHUP | EPOLLET`) state machines:
//!
//! ```text
//!   Reading ──complete request──▶ Routing ──response──▶ Writing
//!      ▲                                                  │
//!      └—————————— keep-alive (pipelined bytes kept) ——————┘
//! ```
//!
//! * **Reading** — drain the socket into a per-connection buffer and
//!   run the shared incremental parser ([`crate::http::parse_request`])
//!   over it. Pipelined requests queue in the buffer; one request is in
//!   flight per connection at a time, so responses come back in order.
//! * **Routing** — cheap requests (every route but `POST /jobs`) are
//!   routed *inline* on the loop thread: status lookups, stats, and
//!   cached-artifact reads are O(lock + lookup), and skipping the
//!   thread hand-off is what lets a pipelined keep-alive connection
//!   stream responses at memory speed. `POST /jobs` — whose admission
//!   may run a tuning search (`engine = "auto"` on a cold cache) — goes
//!   to the small router pool instead, which calls the same [`route`]
//!   as the blocking plane (solve work dispatches to the scheduler's
//!   workers from there) and posts the response back through the wake
//!   pipe.
//! * **Writing** — the rendered bytes flush through non-blocking
//!   writes, registering `EPOLLOUT` interest only while the socket is
//!   full (streaming for large artifacts: no thread blocks on a slow
//!   reader).
//!
//! The cycle is driven by [`Loop::pump`], a flat loop that steps one
//! connection's state machine until it blocks. Each step returns
//! "progressed or not" instead of calling the next step directly, so a
//! pipelined backlog of N buffered requests costs O(1) stack — the
//! alternative (parse → route → write → parse ... as mutual recursion)
//! would let a client that pipelines thousands of tiny requests drive
//! stack depth to N frames and crash the single-threaded plane.
//!
//! The listener is level-triggered and *deregistered* whenever the
//! connection count reaches the configured cap — accept backpressure
//! without a busy loop; the kernel backlog holds new arrivals until a
//! slot frees.
//!
//! Timeouts are a total per-request wall-clock budget, armed at the
//! first byte of each request (or at accept, for a connection that has
//! never spoken): expiry answers 408 and counts `conn_timeouts`,
//! exactly like the blocking plane, so slowloris trickles cannot hold
//! a slot. An *idle* keep-alive connection that has already been
//! served closes silently instead — it owes no response.
//!
//! Connection-level chaos faults inject here too: the drop-site draws
//! against `conn-{ordinal}` for the first response on a connection
//! (identical to the blocking plane) and `conn-{ordinal}.{n}` for
//! keep-alive follow-ups.

use crate::http::{parse_request, HttpError, Response};
use crate::server::{route, routed, Routed, ServeCtx, Server};
use crate::stats::ServiceStats;
use em_faults::ConnFault;
use em_obs::Counter;
use std::collections::HashMap;
use std::fs::File;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// Raw epoll/pipe syscalls through the C library, same idiom as the
// signal hooks in `crate::shutdown` — no `libc` crate in this
// environment. Values are the Linux ABI constants.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(pipefd: *mut i32, flags: i32) -> i32;
}

const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;
const O_NONBLOCK: i32 = 0x800;
const O_CLOEXEC: i32 = 0x80000;

/// `struct epoll_event`; packed on x86-64 (the kernel ABI there), the
/// natural C layout everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// Thin safe wrapper over one epoll instance.
struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    fn new() -> Result<Poller, String> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(format!(
                "epoll_create1 failed: {}",
                std::io::Error::last_os_error()
            ));
        }
        Ok(Poller {
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let evp = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        if unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, evp) } < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    fn modify(&self, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    fn delete(&self, fd: RawFd) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness; `Ok(0)` on timeout or `EINTR`.
    fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.epfd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = std::io::Error::last_os_error();
            if e.kind() == ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }
}

/// A non-blocking self-wake pipe: router threads write a byte to nudge
/// the loop out of `epoll_wait` when a response is ready.
fn wake_pipe() -> Result<(File, File), String> {
    let mut fds = [0i32; 2];
    if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
        return Err(format!("pipe2 failed: {}", std::io::Error::last_os_error()));
    }
    let read = unsafe { OwnedFd::from_raw_fd(fds[0]) };
    let write = unsafe { OwnedFd::from_raw_fd(fds[1]) };
    Ok((File::from(read), File::from(write)))
}

const TOKEN_WAKE: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// How long the loop lingers after the stop flag to flush in-flight
/// responses before closing whatever remains.
const DRAIN_BUDGET: Duration = Duration::from_secs(5);

/// Floor on the deadline a connection gets while its request sits in
/// `Routing`. Admission for `POST /jobs` can legitimately run a cold
/// tuning search, so this is far above `io_timeout` — but it must be
/// finite: if the router pool wedges, connections stuck in `Routing`
/// would otherwise hold their slots forever, and at `max_connections`
/// the disarmed listener would never re-arm (the daemon stops
/// accepting with no recovery path).
const ROUTING_BUDGET_FLOOR: Duration = Duration::from_secs(120);

enum ConnState {
    /// Accumulating bytes until the parser frames a request.
    Reading,
    /// A request is on the router pool; its response will arrive
    /// through the completion queue.
    Routing,
    /// Flushing `write_buf`.
    Writing,
}

struct Conn {
    stream: TcpStream,
    /// The chaos-identity ordinal (`conn-{ordinal}`), shared numbering
    /// with the blocking plane.
    ordinal: u64,
    state: ConnState,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    /// Latency series for the response being written.
    endpoint: &'static str,
    /// Deferred `results_served`-style bump, fired only when the last
    /// byte is out.
    on_written: Option<Arc<Counter>>,
    close_after_write: bool,
    /// Whether a request is currently consuming its wall-clock budget
    /// (true from accept until the first response, and from the first
    /// byte of each follow-up request).
    in_request: bool,
    /// Start of the current request, for the latency histograms.
    t0: Instant,
    /// When the budget (or the idle keep-alive grace) expires.
    deadline: Instant,
    /// Responses fully delivered on this connection.
    served: u64,
    /// `EPOLLRDHUP`/EOF seen: the peer sends nothing further.
    peer_closed: bool,
    /// `EPOLLOUT` interest currently registered.
    want_write: bool,
    /// Reading stopped at the buffer cap with socket data pending;
    /// resume after the in-flight response (edge-triggered epoll will
    /// not re-announce it).
    read_paused: bool,
}

/// A request handed to the router pool.
struct RouteJob {
    token: u64,
    req: crate::http::Request,
}

/// Whether a request routes inline on the loop thread. Everything is
/// O(lock + lookup) except `POST /jobs`, whose admission may run a
/// tuning search (`engine = "auto"` on a cold cache) that must not
/// stall the connection plane.
fn routes_inline(req: &crate::http::Request) -> bool {
    !(req.method == "POST" && req.path().split('/').filter(|s| !s.is_empty()).eq(["jobs"]))
}

/// A routed response on its way back to the loop.
struct Completion {
    token: u64,
    out: Routed,
}

pub(crate) fn run(server: &Server) -> Result<(), String> {
    let ctx = Arc::new(server.serve_ctx());
    let poller = Poller::new()?;
    let (wake_rx, wake_tx) = wake_pipe()?;
    poller
        .add(wake_rx.as_raw_fd(), TOKEN_WAKE, EPOLLIN)
        .map_err(|e| format!("cannot register the wake pipe: {e}"))?;
    poller
        .add(server.listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)
        .map_err(|e| format!("cannot register the listener: {e}"))?;

    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
    let (route_tx, route_rx) = mpsc::channel::<RouteJob>();
    let route_rx = Arc::new(Mutex::new(route_rx));
    // Routing is cheap (parse + scheduler enqueue + JSON rendering) but
    // can touch locks and disk, so it runs off-loop on a couple of
    // threads; solves still run on the scheduler's worker pool.
    let routers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(2, 4);
    let router_handles: Vec<_> = (0..routers)
        .map(|_| {
            let ctx = ctx.clone();
            let rx = route_rx.clone();
            let completions = completions.clone();
            let wake = wake_tx.try_clone().map_err(|e| e.to_string())?;
            Ok(std::thread::spawn(move || loop {
                let job = match rx.lock().unwrap().recv() {
                    Ok(job) => job,
                    Err(_) => return,
                };
                let out = route(&job.req, &ctx);
                completions.lock().unwrap().push(Completion {
                    token: job.token,
                    out,
                });
                // A full pipe already guarantees a pending wake-up.
                let _ = (&wake).write(&[1u8]);
            }))
        })
        .collect::<Result<_, String>>()?;

    let mut lp = Loop {
        server,
        ctx,
        poller,
        wake_rx,
        route_tx: Some(route_tx),
        completions,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        listener_armed: true,
        accept_backoff_until: None,
        draining: false,
    };
    let result = lp.serve();
    // Closing the channel ends the router threads once the backlog is
    // routed; their completions have no connections left and are
    // dropped.
    lp.route_tx = None;
    for h in router_handles {
        let _ = h.join();
    }
    result
}

struct Loop<'a> {
    server: &'a Server,
    ctx: Arc<ServeCtx>,
    poller: Poller,
    wake_rx: File,
    route_tx: Option<mpsc::Sender<RouteJob>>,
    completions: Arc<Mutex<Vec<Completion>>>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    listener_armed: bool,
    /// Set after a non-transient accept error; the listener stays
    /// disarmed until it passes so an error storm cannot spin the loop.
    accept_backoff_until: Option<Instant>,
    draining: bool,
}

impl Loop<'_> {
    fn serve(&mut self) -> Result<(), String> {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
        let mut drain_deadline = Instant::now();
        loop {
            if !self.draining && self.ctx.stop.load(Ordering::SeqCst) {
                self.begin_drain();
                drain_deadline = Instant::now() + DRAIN_BUDGET;
            }
            if self.draining && (self.conns.is_empty() || Instant::now() >= drain_deadline) {
                break;
            }
            // Bounded wait so the stop flag and the deadline sweep run
            // at least every 100 ms.
            let n = self
                .poller
                .wait(&mut events, 100)
                .map_err(|e| format!("epoll_wait failed: {e}"))?;
            for ev in events.iter().take(n) {
                // Copy out of the (packed) event before touching it.
                let (bits, token) = (ev.events, ev.data);
                match token {
                    TOKEN_WAKE => self.drain_wake_pipe(),
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_event(token, bits),
                }
            }
            self.deliver_completions();
            self.sweep_deadlines();
            self.maybe_rearm_listener();
        }
        Ok(())
    }

    /// Stop accepting and give in-flight exchanges a bounded window to
    /// finish. Connections that owe no response close immediately —
    /// including half-parsed ones; their clients see a clean close and
    /// retry against whatever replaces this daemon.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.disarm_listener();
        if !self.server.quiet {
            eprintln!("draining: waiting for in-flight responses and jobs ...");
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.state, ConnState::Reading))
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            self.close_conn(token);
        }
    }

    fn disarm_listener(&mut self) {
        if self.listener_armed {
            let _ = self.poller.delete(self.server.listener.as_raw_fd());
            self.listener_armed = false;
        }
    }

    fn maybe_rearm_listener(&mut self) {
        if self.draining || self.listener_armed || self.conns.len() >= self.server.max_connections {
            return;
        }
        if let Some(until) = self.accept_backoff_until {
            if Instant::now() < until {
                return;
            }
            self.accept_backoff_until = None;
        }
        if self
            .poller
            .add(self.server.listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)
            .is_ok()
        {
            self.listener_armed = true;
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_ready(&mut self) {
        while !self.draining {
            if self.conns.len() >= self.server.max_connections {
                // At the cap: deregister and let the kernel backlog
                // hold arrivals until a connection closes.
                self.disarm_listener();
                return;
            }
            match self.server.listener.accept() {
                Ok((stream, _peer)) => self.register_conn(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                // EINTR is not an accept failure: retry immediately
                // instead of disarming the listener and eating the
                // 100 ms backoff on every stray signal.
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Same stance as the blocking plane: transient
                    // accept failures (ECONNABORTED, EMFILE) must not
                    // tear the daemon down. Back the listener off
                    // briefly so an EMFILE storm cannot spin the loop.
                    if !self.server.quiet {
                        eprintln!("accept failed (continuing): {e}");
                    }
                    self.disarm_listener();
                    self.accept_backoff_until = Some(Instant::now() + Duration::from_millis(100));
                    return;
                }
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .add(stream.as_raw_fd(), token, EPOLLIN | EPOLLRDHUP | EPOLLET)
            .is_err()
        {
            return;
        }
        let now = Instant::now();
        self.conns.insert(
            token,
            Conn {
                stream,
                ordinal: self.server.conn_seq.fetch_add(1, Ordering::SeqCst),
                state: ConnState::Reading,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                written: 0,
                endpoint: "other",
                on_written: None,
                close_after_write: false,
                // A fresh connection is inside its first request's
                // budget from the moment it connects — a silent client
                // earns the same 408 the blocking plane gives it.
                in_request: true,
                t0: now,
                deadline: now + self.ctx.io_timeout,
                served: 0,
                peer_closed: false,
                want_write: false,
                read_paused: false,
            },
        );
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
        }
    }

    fn conn_event(&mut self, token: u64, bits: u32) {
        if !self.conns.contains_key(&token) {
            return;
        }
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(token);
            return;
        }
        if bits & EPOLLRDHUP != 0 {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.peer_closed = true;
            }
        }
        if bits & EPOLLIN != 0 && !self.fill_read_buf(token) {
            return;
        }
        self.pump(token);
    }

    /// Step this connection's state machine until it blocks: frame and
    /// route buffered requests, flush the staged response, repeat.
    /// Deliberately a flat loop — each step reports progress instead of
    /// calling the next step, so serving a pipelined backlog of N
    /// requests costs O(1) stack rather than N mutually recursive
    /// frames (which a hostile client could drive to a stack overflow).
    fn pump(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            let progressed = match conn.state {
                ConnState::Reading => self.try_parse(token),
                ConnState::Writing => self.continue_write(token),
                // The router pool owns the request; its completion
                // re-enters through `deliver_completions`.
                ConnState::Routing => false,
            };
            if !progressed {
                return;
            }
        }
    }

    /// Drain the socket into the connection's read buffer (required
    /// under edge-triggered epoll). Returns false if the connection was
    /// torn down.
    fn fill_read_buf(&mut self, token: u64) -> bool {
        // Sized so the worst-case wire form of one maximally-large
        // legal request always fits — a request that cannot finish
        // buffering can never frame, and would stall until its 408.
        // The wire form is the header block (≤ max_header_bytes), the
        // decoded body (≤ max_body_bytes), and for chunked bodies the
        // framing overhead: chunk-size/trailer lines draw on their own
        // `max_header_bytes` budget in the parser, and each chunk's
        // data carries a 2-byte CRLF the budget does not see. A size
        // line costs at least 2 budget bytes, so those CRLFs total at
        // most the line budget again — hence 3× the header limit of
        // slack over the body. Anything past the cap is pipelined
        // backlog that waits in the socket until this backlog drains.
        let cap = 3 * self.ctx.limits.max_header_bytes + self.ctx.limits.max_body_bytes;
        let mut chunk = [0u8; 8192];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            if conn.read_buf.len() >= cap {
                conn.read_paused = true;
                return true;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    conn.read_paused = false;
                    return true;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.read_paused = false;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    conn.read_paused = false;
                    return true;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return false;
                }
            }
        }
    }

    /// Try to frame one request out of the read buffer and route it
    /// (inline, or via the router pool). Runs only in `Reading` state:
    /// one request in flight per connection keeps responses in
    /// pipeline order. Returns whether the state machine progressed —
    /// a response was staged or the request left for the router pool —
    /// so [`Loop::pump`] knows to take another step.
    fn try_parse(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        if conn.read_buf.is_empty() {
            if conn.peer_closed {
                // EOF between requests: a clean close, not a request.
                self.close_conn(token);
            }
            return false;
        }
        if !conn.in_request {
            // First byte of a follow-up request arms its budget.
            conn.in_request = true;
            conn.t0 = Instant::now();
            conn.deadline = conn.t0 + self.ctx.io_timeout;
        }
        match parse_request(&conn.read_buf, &self.ctx.limits) {
            Ok(Some((req, consumed))) => {
                conn.read_buf.drain(..consumed);
                conn.state = ConnState::Routing;
                conn.close_after_write = !req.keep_alive;
                ServiceStats::bump(&self.ctx.stats.requests);
                if routes_inline(&req) {
                    let out = route(&req, &self.ctx);
                    self.queue_response(token, out);
                } else {
                    // Off to the router pool. Bound the wait: admission
                    // may run a cold tuning search, so the budget is
                    // generous — but a wedged pool must not hold this
                    // slot (and, at the cap, the listener) forever.
                    conn.deadline =
                        Instant::now() + (self.ctx.io_timeout * 6).max(ROUTING_BUDGET_FLOOR);
                    if let Some(tx) = &self.route_tx {
                        let _ = tx.send(RouteJob { token, req });
                    }
                }
                true
            }
            Ok(None) => {
                if conn.peer_closed {
                    // Half-close mid-request: the head (or body) can
                    // never complete. Answer 400 — the client's write
                    // side is gone but its read side may be listening.
                    ServiceStats::bump(&self.ctx.stats.requests);
                    ServiceStats::bump(&self.ctx.stats.rejected_bad);
                    conn.state = ConnState::Routing;
                    conn.close_after_write = true;
                    let out = routed(
                        "other",
                        Response::error(400, "connection closed mid-request"),
                    );
                    self.queue_response(token, out);
                    return true;
                }
                false
            }
            Err(e) => {
                ServiceStats::bump(&self.ctx.stats.requests);
                ServiceStats::bump(if matches!(e, HttpError::Timeout(_)) {
                    &self.ctx.stats.conn_timeouts
                } else {
                    &self.ctx.stats.rejected_bad
                });
                conn.state = ConnState::Routing;
                // The framing is untrustworthy after a parse error;
                // never keep the connection.
                conn.close_after_write = true;
                let out = routed("other", Response::error(e.status(), e.message()));
                self.queue_response(token, out);
                true
            }
        }
    }

    fn deliver_completions(&mut self) {
        let ready: Vec<Completion> = {
            let mut guard = self.completions.lock().unwrap();
            std::mem::take(&mut *guard)
        };
        for completion in ready {
            // The connection may have died while its request was being
            // routed; the response (and its deferred counters) is
            // simply dropped, same as a failed write on the blocking
            // plane.
            if self.conns.contains_key(&completion.token) {
                self.queue_response(completion.token, completion.out);
                self.pump(completion.token);
            }
        }
    }

    /// Render a response for this connection (applying the chaos
    /// drop-site) and stage it for flushing. Only stages — the caller
    /// (always [`Loop::pump`], directly or right after) drives the
    /// actual writes, keeping the serve cycle iterative.
    fn queue_response(&mut self, token: u64, out: Routed) {
        let draining = self.draining;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if draining {
            conn.close_after_write = true;
        }
        let mut bytes = out.response.render(!conn.close_after_write);
        conn.endpoint = out.endpoint;
        conn.on_written = out.on_written;
        if let Some(inj) = &self.ctx.faults {
            // First response on a connection draws the same identity
            // as the blocking plane; keep-alive follow-ups get their
            // own draw per response ordinal.
            let ident = if conn.served == 0 {
                format!("conn-{}", conn.ordinal)
            } else {
                format!("conn-{}.{}", conn.ordinal, conn.served)
            };
            if inj.conn_fault(&ident) == ConnFault::DropMid {
                bytes.truncate(bytes.len() / 2);
                conn.close_after_write = true;
                // A torn response never reached the client; the
                // deferred counter must not fire.
                conn.on_written = None;
            }
        }
        conn.write_buf = bytes;
        conn.written = 0;
        conn.state = ConnState::Writing;
        // The write gets its own budget (the blocking plane's write
        // timeout); the request budget may be nearly spent by now.
        conn.deadline = Instant::now() + self.ctx.io_timeout;
    }

    /// Flush as much of the write buffer as the socket accepts,
    /// registering `EPOLLOUT` interest only while it is full. Returns
    /// whether the state machine progressed: the response finished and
    /// the connection is back in `Reading` (possibly with pipelined
    /// bytes already buffered), so [`Loop::pump`] should step again.
    fn continue_write(&mut self, token: u64) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            if conn.written >= conn.write_buf.len() {
                return self.finish_response(token);
            }
            match conn.stream.write(&conn.write_buf[conn.written..]) {
                Ok(0) => {
                    self.close_conn(token);
                    return false;
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if !conn.want_write {
                        conn.want_write = true;
                        let _ = self.poller.modify(
                            conn.stream.as_raw_fd(),
                            token,
                            EPOLLIN | EPOLLRDHUP | EPOLLOUT | EPOLLET,
                        );
                    }
                    return false;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return false;
                }
            }
        }
    }

    /// The last byte of a response is out: settle its accounting and
    /// either close or return to `Reading` for the next (possibly
    /// already-buffered) request. Returns whether the connection
    /// survives in `Reading` — the signal that lets [`Loop::pump`]
    /// parse the next pipelined request without recursing.
    fn finish_response(&mut self, token: u64) -> bool {
        let draining = self.draining;
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        self.ctx
            .stats
            .latency(conn.endpoint)
            .observe(conn.t0.elapsed().as_secs_f64());
        if let Some(counter) = conn.on_written.take() {
            counter.inc();
        }
        conn.served += 1;
        conn.write_buf = Vec::new();
        conn.written = 0;
        if conn.close_after_write || draining {
            self.close_conn(token);
            return false;
        }
        if conn.want_write {
            conn.want_write = false;
            let _ = self.poller.modify(
                conn.stream.as_raw_fd(),
                token,
                EPOLLIN | EPOLLRDHUP | EPOLLET,
            );
        }
        conn.state = ConnState::Reading;
        conn.in_request = false;
        // Idle keep-alive grace: a connection that owes nothing closes
        // silently when this expires (re-armed as a request budget at
        // the next first byte).
        conn.deadline = Instant::now() + self.ctx.io_timeout;
        // A read paused at the buffer cap has no edge coming (edge-
        // triggered epoll already announced those bytes): resume it now
        // that the backlog shrank. Pipelined bytes may already hold the
        // next request — the pump's next step parses them.
        let resume_read = conn.read_paused;
        if resume_read && !self.fill_read_buf(token) {
            return false;
        }
        true
    }

    /// Enforce per-connection deadlines: 408 for an expired in-flight
    /// request (slowloris, silent connection), silent close for an
    /// idle keep-alive connection, teardown for a stalled writer or
    /// for a request wedged in the router pool past its budget.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| now >= c.deadline)
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            match conn.state {
                ConnState::Reading if conn.in_request => {
                    // The request's total wall-clock budget ran out
                    // before it framed: same 408 + `conn_timeouts`
                    // accounting as the blocking plane.
                    ServiceStats::bump(&self.ctx.stats.requests);
                    ServiceStats::bump(&self.ctx.stats.conn_timeouts);
                    conn.state = ConnState::Routing;
                    conn.close_after_write = true;
                    let out = routed(
                        "other",
                        Response::error(408, "request exceeded its wall-clock budget"),
                    );
                    self.queue_response(token, out);
                    self.pump(token);
                }
                ConnState::Reading => {
                    // Idle keep-alive connection: owes no response.
                    self.close_conn(token);
                }
                ConnState::Routing => {
                    // The router pool wedged past the generous routing
                    // budget (armed at dispatch in `try_parse`). Free
                    // the slot; tokens are never reused, so the late
                    // completion is dropped in `deliver_completions`.
                    ServiceStats::bump(&self.ctx.stats.conn_timeouts);
                    self.close_conn(token);
                }
                ConnState::Writing => {
                    // A reader stalled longer than the budget mid-
                    // response: drop it, like a blocking-plane write
                    // timeout.
                    self.close_conn(token);
                }
            }
        }
    }
}
