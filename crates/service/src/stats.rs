//! Service-wide counters behind `GET /stats` and `GET /metrics`.
//!
//! Every counter lives on an [`em_obs::Registry`], so one increment
//! feeds both the legacy `/stats` JSON document (field order preserved
//! byte-for-byte from the pre-registry daemon) and the Prometheus text
//! exposition at `/metrics`. The numbers feed dashboards and the
//! loadgen report, not control flow (admission decisions read the real
//! queue under its lock). Thread leases stay plain atomics — the
//! scheduler-invariant test reads `peak_threads_in_use` to prove the
//! worker pool never outgrew its [`mwd_core::ThreadBudget`] — and
//! `/metrics` publishes them as scrape-time gauges.

use em_json::Json;
use em_obs::{Counter, Histogram, Registry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Family name of the per-endpoint request-latency histogram.
pub const HTTP_LATENCY_METRIC: &str = "em_http_request_seconds";

/// Endpoint labels the latency histogram is pre-registered under, so a
/// scrape of a fresh daemon already lists the whole family. `route()`
/// normalizes every request onto one of these.
pub const ENDPOINTS: &[&str] = &[
    "/healthz",
    "/stats",
    "/metrics",
    "/jobs",
    "/jobs/:id",
    "/jobs/:id/result",
    "/jobs/:id/cancel",
    "/results/:key",
    "/shutdown",
    "other",
];

pub struct ServiceStats {
    registry: Arc<Registry>,
    /// HTTP requests received (any route, any outcome): counted once a
    /// request frames — or fails to frame — so keep-alive connections
    /// count per request, not per connection, and a connection that
    /// closes without sending a byte counts nothing.
    pub requests: Arc<Counter>,
    /// `POST /jobs` bodies that parsed + validated.
    pub submitted: Arc<Counter>,
    /// Submissions answered straight from the result store (no job).
    pub store_hits: Arc<Counter>,
    /// Submissions coalesced onto an already queued/running job.
    pub coalesced: Arc<Counter>,
    /// Jobs that ran to a stored result.
    pub completed: Arc<Counter>,
    /// Jobs that errored.
    pub failed: Arc<Counter>,
    /// Jobs cancelled — by shutdown, `POST /jobs/:id/cancel`, or a
    /// tripped stop flag mid-solve.
    pub cancelled: Arc<Counter>,
    /// Jobs whose deadline expired (shed while queued or halted
    /// mid-solve).
    pub timeout: Arc<Counter>,
    /// Submissions rejected with 429 (queue full).
    pub rejected_overload: Arc<Counter>,
    /// Submissions rejected with 400/413.
    pub rejected_bad: Arc<Counter>,
    /// `GET .../result` responses actually written to a client.
    pub results_served: Arc<Counter>,
    /// Requests answered 408 for exhausting the per-request wall-clock
    /// budget (silent, stalled, or trickling clients — slowloris).
    pub conn_timeouts: Arc<Counter>,
    /// `engine = "auto"` resolutions answered by the shared tune cache.
    pub tune_hits: Arc<Counter>,
    /// `engine = "auto"` resolutions that ran a tuning search.
    pub tune_misses: Arc<Counter>,
    /// Engine threads currently leased by running jobs.
    pub threads_in_use: AtomicUsize,
    /// High-water mark of `threads_in_use`.
    pub peak_threads_in_use: AtomicUsize,
}

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats::on_registry(Arc::new(Registry::new()))
    }
}

impl ServiceStats {
    /// Register every counter family on `registry`.
    pub fn on_registry(registry: Arc<Registry>) -> ServiceStats {
        let stats = ServiceStats {
            requests: registry.counter(
                "em_http_requests_total",
                "HTTP requests received (any route, any outcome).",
                &[],
            ),
            submitted: registry.counter(
                "em_jobs_submitted_total",
                "POST /jobs bodies that parsed, validated, and queued a new job.",
                &[],
            ),
            store_hits: registry.counter(
                "em_dedupe_hits_total",
                "Submissions answered without new work, by dedupe kind.",
                &[("kind", "store")],
            ),
            coalesced: registry.counter(
                "em_dedupe_hits_total",
                "Submissions answered without new work, by dedupe kind.",
                &[("kind", "coalesced")],
            ),
            completed: registry.counter(
                "em_jobs_finished_total",
                "Jobs that reached a terminal state, by outcome.",
                &[("outcome", "completed")],
            ),
            failed: registry.counter(
                "em_jobs_finished_total",
                "Jobs that reached a terminal state, by outcome.",
                &[("outcome", "failed")],
            ),
            cancelled: registry.counter(
                "em_jobs_finished_total",
                "Jobs that reached a terminal state, by outcome.",
                &[("outcome", "cancelled")],
            ),
            timeout: registry.counter(
                "em_jobs_finished_total",
                "Jobs that reached a terminal state, by outcome.",
                &[("outcome", "timeout")],
            ),
            rejected_overload: registry.counter(
                "em_admission_rejected_total",
                "Submissions turned away at admission, by reason.",
                &[("reason", "overload")],
            ),
            rejected_bad: registry.counter(
                "em_admission_rejected_total",
                "Submissions turned away at admission, by reason.",
                &[("reason", "bad_request")],
            ),
            results_served: registry.counter(
                "em_results_served_total",
                "Result documents successfully written to clients.",
                &[],
            ),
            conn_timeouts: registry.counter(
                "em_conn_timeouts_total",
                "Connections closed after hitting the socket read/write timeout.",
                &[],
            ),
            tune_hits: registry.counter(
                "em_tune_cache_requests_total",
                "auto-engine resolutions through the shared tune cache, by result.",
                &[("result", "hit")],
            ),
            tune_misses: registry.counter(
                "em_tune_cache_requests_total",
                "auto-engine resolutions through the shared tune cache, by result.",
                &[("result", "miss")],
            ),
            threads_in_use: AtomicUsize::new(0),
            peak_threads_in_use: AtomicUsize::new(0),
            registry,
        };
        for endpoint in ENDPOINTS {
            stats.latency(endpoint);
        }
        // Pre-register the dist halo families (a zero-valued
        // `worker="0"` series each) so a scrape of a fresh daemon
        // already lists them; multi-worker jobs add their own
        // per-worker series on the same names.
        stats.registry.counter(
            em_dist::HALO_EXCHANGES_METRIC,
            "Halo planes received and applied by dist workers",
            &[("worker", "0")],
        );
        stats.registry.histogram(
            em_dist::HALO_WAIT_METRIC,
            "Seconds dist workers spent blocked waiting for a halo plane",
            &[("worker", "0")],
        );
        stats
    }

    /// The registry all counters live on (rendered by `GET /metrics`).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    pub fn bump(counter: &Counter) {
        counter.inc();
    }

    /// The latency histogram series for one normalized endpoint.
    pub fn latency(&self, endpoint: &str) -> Arc<Histogram> {
        self.registry.histogram(
            HTTP_LATENCY_METRIC,
            "Wall time from request read to response written, per endpoint.",
            &[("endpoint", endpoint)],
        )
    }

    /// Lease `n` engine threads (called as a job starts); maintains the
    /// peak watermark.
    pub fn lease_threads(&self, n: usize) {
        let now = self.threads_in_use.fetch_add(n, Ordering::SeqCst) + n;
        self.peak_threads_in_use.fetch_max(now, Ordering::SeqCst);
    }

    /// Return `n` engine threads (called as a job finishes).
    pub fn release_threads(&self, n: usize) {
        self.threads_in_use.fetch_sub(n, Ordering::SeqCst);
    }

    /// Dedupe hit rate over everything that asked for work:
    /// `(store hits + coalesced) / (those + jobs actually submitted)`.
    pub fn dedupe_rate(&self) -> f64 {
        let hits = self.store_hits.get() + self.coalesced.get();
        let total = hits + self.submitted.get();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    pub fn to_json(&self) -> Json {
        let u = |c: &Counter| Json::Int(c.get() as i64);
        Json::obj(vec![
            ("requests", u(&self.requests)),
            ("submitted", u(&self.submitted)),
            ("store_hits", u(&self.store_hits)),
            ("coalesced", u(&self.coalesced)),
            ("completed", u(&self.completed)),
            ("failed", u(&self.failed)),
            ("cancelled", u(&self.cancelled)),
            ("rejected_overload", u(&self.rejected_overload)),
            ("rejected_bad", u(&self.rejected_bad)),
            ("results_served", u(&self.results_served)),
            ("dedupe_rate", Json::Num(self.dedupe_rate())),
            (
                "threads_in_use",
                Json::Int(self.threads_in_use.load(Ordering::SeqCst) as i64),
            ),
            (
                "peak_threads_in_use",
                Json::Int(self.peak_threads_in_use.load(Ordering::SeqCst) as i64),
            ),
            // New fields go at the end: consumers of the legacy
            // document index by name, but its field order is pinned by
            // the service-api tests.
            ("timeout", u(&self.timeout)),
            ("conn_timeouts", u(&self.conn_timeouts)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_leases_track_the_peak() {
        let s = ServiceStats::default();
        s.lease_threads(2);
        s.lease_threads(3);
        s.release_threads(2);
        s.lease_threads(1);
        assert_eq!(s.threads_in_use.load(Ordering::SeqCst), 4);
        assert_eq!(s.peak_threads_in_use.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn dedupe_rate_counts_both_hit_kinds() {
        let s = ServiceStats::default();
        assert_eq!(s.dedupe_rate(), 0.0);
        s.submitted.add(6);
        s.store_hits.add(3);
        s.coalesced.add(1);
        assert!((s.dedupe_rate() - 0.4).abs() < 1e-12);
        let j = s.to_json();
        assert_eq!(j.get("store_hits").unwrap().as_i64(), Some(3));
        assert_eq!(j.get("dedupe_rate").unwrap().as_f64(), Some(0.4));
    }

    #[test]
    fn counters_render_on_the_shared_registry() {
        let s = ServiceStats::default();
        ServiceStats::bump(&s.requests);
        ServiceStats::bump(&s.requests);
        s.store_hits.inc();
        s.latency("/stats").observe(0.001);
        let text = s.registry().render();
        assert!(text.contains("# TYPE em_http_requests_total counter"));
        assert!(text.contains("em_http_requests_total 2"));
        assert!(text.contains("em_dedupe_hits_total{kind=\"store\"} 1"));
        assert!(text.contains("em_dedupe_hits_total{kind=\"coalesced\"} 0"));
        assert!(text.contains("# TYPE em_http_request_seconds histogram"));
        assert!(text.contains("em_http_request_seconds_count{endpoint=\"/stats\"} 1"));
        // Pre-registered endpoints render even before any traffic.
        assert!(text.contains("em_http_request_seconds_count{endpoint=\"/jobs/:id/result\"} 0"));
    }
}
