//! Service-wide counters behind `GET /stats`.
//!
//! Everything is a relaxed atomic: the numbers feed dashboards and the
//! loadgen report, not control flow (admission decisions read the real
//! queue under its lock). One exception is `peak_threads_in_use`, which
//! the scheduler-invariant test reads to prove the worker pool never
//! outgrew its [`mwd_core::ThreadBudget`].

use em_json::Json;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

#[derive(Default)]
pub struct ServiceStats {
    /// HTTP requests accepted (any route, any outcome).
    pub requests: AtomicU64,
    /// `POST /jobs` bodies that parsed + validated.
    pub submitted: AtomicU64,
    /// Submissions answered straight from the result store (no job).
    pub store_hits: AtomicU64,
    /// Submissions coalesced onto an already queued/running job.
    pub coalesced: AtomicU64,
    /// Jobs that ran to a stored result.
    pub completed: AtomicU64,
    /// Jobs that errored.
    pub failed: AtomicU64,
    /// Jobs cancelled by shutdown before starting.
    pub cancelled: AtomicU64,
    /// Submissions rejected with 429 (queue full).
    pub rejected_overload: AtomicU64,
    /// Submissions rejected with 400/413.
    pub rejected_bad: AtomicU64,
    /// `GET .../result` responses served from the store.
    pub results_served: AtomicU64,
    /// Engine threads currently leased by running jobs.
    pub threads_in_use: AtomicUsize,
    /// High-water mark of `threads_in_use`.
    pub peak_threads_in_use: AtomicUsize,
}

impl ServiceStats {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Lease `n` engine threads (called as a job starts); maintains the
    /// peak watermark.
    pub fn lease_threads(&self, n: usize) {
        let now = self.threads_in_use.fetch_add(n, Ordering::SeqCst) + n;
        self.peak_threads_in_use.fetch_max(now, Ordering::SeqCst);
    }

    /// Return `n` engine threads (called as a job finishes).
    pub fn release_threads(&self, n: usize) {
        self.threads_in_use.fetch_sub(n, Ordering::SeqCst);
    }

    /// Dedupe hit rate over everything that asked for work:
    /// `(store hits + coalesced) / (those + jobs actually submitted)`.
    pub fn dedupe_rate(&self) -> f64 {
        let hits = self.store_hits.load(Ordering::Relaxed) + self.coalesced.load(Ordering::Relaxed);
        let total = hits + self.submitted.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    pub fn to_json(&self) -> Json {
        let u = |c: &AtomicU64| Json::Int(c.load(Ordering::Relaxed) as i64);
        Json::obj(vec![
            ("requests", u(&self.requests)),
            ("submitted", u(&self.submitted)),
            ("store_hits", u(&self.store_hits)),
            ("coalesced", u(&self.coalesced)),
            ("completed", u(&self.completed)),
            ("failed", u(&self.failed)),
            ("cancelled", u(&self.cancelled)),
            ("rejected_overload", u(&self.rejected_overload)),
            ("rejected_bad", u(&self.rejected_bad)),
            ("results_served", u(&self.results_served)),
            ("dedupe_rate", Json::Num(self.dedupe_rate())),
            (
                "threads_in_use",
                Json::Int(self.threads_in_use.load(Ordering::SeqCst) as i64),
            ),
            (
                "peak_threads_in_use",
                Json::Int(self.peak_threads_in_use.load(Ordering::SeqCst) as i64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_leases_track_the_peak() {
        let s = ServiceStats::default();
        s.lease_threads(2);
        s.lease_threads(3);
        s.release_threads(2);
        s.lease_threads(1);
        assert_eq!(s.threads_in_use.load(Ordering::SeqCst), 4);
        assert_eq!(s.peak_threads_in_use.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn dedupe_rate_counts_both_hit_kinds() {
        let s = ServiceStats::default();
        assert_eq!(s.dedupe_rate(), 0.0);
        s.submitted.store(6, Ordering::Relaxed);
        s.store_hits.store(3, Ordering::Relaxed);
        s.coalesced.store(1, Ordering::Relaxed);
        assert!((s.dedupe_rate() - 0.4).abs() < 1e-12);
        let j = s.to_json();
        assert_eq!(j.get("store_hits").unwrap().as_i64(), Some(3));
        assert_eq!(j.get("dedupe_rate").unwrap().as_f64(), Some(0.4));
    }
}
