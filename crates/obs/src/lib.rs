//! # em_obs — zero-dependency telemetry for the THIIM/MWD workspace
//!
//! Observability primitives shared by every layer from the MWD executor
//! up to the HTTP service, hand-rolled like the rest of the workspace
//! (no external crates; `em_json` is the only dependency, for the trace
//! exporter):
//!
//! - [`trace`]: structured spans recorded into lock-free per-thread ring
//!   buffers by a [`Recorder`] that is a no-op when disabled, plus a
//!   Chrome trace-event JSON exporter (Perfetto-loadable).
//! - [`metrics`]: atomic counters, gauges, and log2-bucket histograms,
//!   named in a [`Registry`] that renders Prometheus text exposition
//!   format for `GET /metrics`.
//! - [`git_revision`]: the current commit hash read from `.git` directly
//!   (no subprocess), for build provenance in reports and `/healthz`.
//!
//! The design rule is that instrumentation must never perturb physics:
//! a disabled recorder costs one branch per call site and touches no
//! shared state, so instrumented engines stay bit-identical to the
//! reference and benchmark numbers stay honest.

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use trace::{OpenSpan, PhaseTotal, Recorder, SpanRecord, ThreadLog, Trace};

use std::path::PathBuf;

/// The current git revision, read from `.git` directly (no subprocess):
/// follows a linked-worktree `gitdir:` file and one level of `ref:`
/// indirection; `unknown` outside a work tree. Searches upward from the
/// working directory (binaries run from the workspace root or a crate
/// subdirectory).
pub fn git_revision() -> String {
    for base in ["", "../", "../../"] {
        let Some(rev) = rev_from_git_dir(&PathBuf::from(format!("{base}.git"))) else {
            continue;
        };
        return rev;
    }
    "unknown".to_string()
}

fn rev_from_git_dir(git_dir: &std::path::Path) -> Option<String> {
    // In a linked worktree or submodule, `.git` is a file pointing at
    // the real git directory.
    let git_dir = if git_dir.is_file() {
        let content = std::fs::read_to_string(git_dir).ok()?;
        PathBuf::from(content.trim().strip_prefix("gitdir: ")?.trim())
    } else {
        git_dir.to_path_buf()
    };
    let head = std::fs::read_to_string(git_dir.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(r) = head.strip_prefix("ref: ") else {
        // Detached HEAD: the hash itself (sanity-check the shape so a
        // malformed HEAD degrades to "unknown" instead of garbage).
        return head
            .chars()
            .all(|c| c.is_ascii_hexdigit())
            .then(|| head.to_string());
    };
    if let Ok(rev) = std::fs::read_to_string(git_dir.join(r)) {
        return Some(rev.trim().to_string());
    }
    // Packed refs live in the common git dir (shared by worktrees).
    let common = match std::fs::read_to_string(git_dir.join("commondir")) {
        Ok(rel) => git_dir.join(rel.trim()),
        Err(_) => git_dir,
    };
    let packed = std::fs::read_to_string(common.join("packed-refs")).ok()?;
    for line in packed.lines() {
        if let Some(rev) = line.strip_suffix(r) {
            return Some(rev.trim().to_string());
        }
    }
    Some("unknown".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn git_revision_resolves_or_degrades() {
        let rev = super::git_revision();
        assert!(rev == "unknown" || rev.len() >= 7, "{rev}");
    }
}
