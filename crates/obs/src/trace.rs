//! Structured span recording with per-thread buffers and Chrome trace
//! export.
//!
//! A [`Recorder`] is a cheap cloneable handle. When disabled (the
//! default everywhere) every operation is a no-op behind a single
//! `Option` check, so instrumented hot paths stay bit-identical and pay
//! effectively nothing. When enabled, each participating thread obtains
//! a [`ThreadLog`] — an owned, lock-free ring buffer of finished spans —
//! and records `(span_id, parent, name, t_start, t_end, thread, kv)`
//! tuples without synchronization. The only locking happens once per
//! thread, when a dropped `ThreadLog` retires its buffer into the
//! recorder, and once at [`Recorder::drain`].
//!
//! The drained [`Trace`] exports Chrome trace-event JSON (loadable in
//! Perfetto or `chrome://tracing`) and per-phase aggregate timings.

use em_json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-thread span capacity; the oldest spans are overwritten
/// once a thread exceeds it (and counted in [`Trace::dropped`]).
pub const DEFAULT_THREAD_CAPACITY: usize = 1 << 16;

/// One finished span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique id, > 0 (0 means "no parent").
    pub id: u64,
    /// Enclosing span id, or 0 for a root span.
    pub parent: u64,
    pub name: &'static str,
    /// Recorder-assigned thread index.
    pub thread: u64,
    /// Start time in microseconds since the recorder was created.
    pub t_start_us: f64,
    /// End time in microseconds since the recorder was created.
    pub t_end_us: f64,
    pub kv: Vec<(&'static str, String)>,
}

struct ThreadBuf {
    tid: u64,
    spans: Vec<SpanRecord>,
    dropped: u64,
}

struct Inner {
    t0: Instant,
    next_id: AtomicU64,
    /// Registered thread names; a name's index is its tid, so repeated
    /// `thread("mwd g0.1", ..)` calls (one per engine invocation) share
    /// one timeline row in the exported trace.
    names: Mutex<Vec<String>>,
    cap: usize,
    retired: Mutex<Vec<ThreadBuf>>,
}

/// Shared recording handle; see the module docs.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// A recorder that records nothing; all operations are no-ops.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// An active recorder with the default per-thread capacity.
    pub fn enabled() -> Self {
        Recorder::with_capacity(DEFAULT_THREAD_CAPACITY)
    }

    pub fn with_capacity(cap: usize) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                t0: Instant::now(),
                next_id: AtomicU64::new(1),
                names: Mutex::new(Vec::new()),
                cap: cap.max(1),
                retired: Mutex::new(Vec::new()),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register this thread and get its local span buffer. Spans started
    /// on the returned log nest under `ambient_parent` (pass 0 for root
    /// spans) until an enclosing local span is open. Logs sharing a name
    /// share one trace timeline (stable tid) across invocations.
    pub fn thread(&self, name: &str, ambient_parent: u64) -> ThreadLog {
        match &self.inner {
            None => ThreadLog { active: None },
            Some(inner) => {
                let tid = {
                    let mut names = inner.names.lock().expect("recorder lock");
                    match names.iter().position(|n| n == name) {
                        Some(i) => i as u64,
                        None => {
                            names.push(name.to_string());
                            (names.len() - 1) as u64
                        }
                    }
                };
                ThreadLog {
                    active: Some(ActiveLog {
                        inner: inner.clone(),
                        tid,
                        spans: Vec::new(),
                        write: 0,
                        dropped: 0,
                        stack: vec![ambient_parent],
                    }),
                }
            }
        }
    }

    /// Collect every retired thread buffer into a [`Trace`]. Only spans
    /// from already-dropped `ThreadLog`s are visible; drop (or scope)
    /// all thread logs before draining.
    pub fn drain(&self) -> Trace {
        let mut trace = Trace::default();
        if let Some(inner) = &self.inner {
            {
                let names = inner.names.lock().expect("recorder lock");
                trace.threads = names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (i as u64, n.clone()))
                    .collect();
            }
            let mut retired = inner.retired.lock().expect("recorder lock");
            let mut bufs: Vec<ThreadBuf> = std::mem::take(&mut *retired);
            bufs.sort_by_key(|b| b.tid);
            for buf in bufs {
                trace.dropped += buf.dropped;
                trace.spans.extend(buf.spans);
            }
        }
        trace
    }
}

/// A span that has been started but not yet ended.
#[must_use = "end the span with ThreadLog::end or it will not be recorded"]
pub struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    t_start_us: f64,
}

impl OpenSpan {
    /// The span id (0 when recording is disabled) — pass as
    /// `ambient_parent` to nest spans of spawned threads under this one.
    pub fn id(&self) -> u64 {
        self.id
    }
}

struct ActiveLog {
    inner: Arc<Inner>,
    tid: u64,
    spans: Vec<SpanRecord>,
    /// Total records written (ring index = write % cap once full).
    write: usize,
    dropped: u64,
    /// stack[0] is the ambient parent; the rest are open local spans.
    stack: Vec<u64>,
}

/// Per-thread span buffer. Obtain via [`Recorder::thread`]; recording is
/// lock-free, and the buffer retires into the recorder on drop.
pub struct ThreadLog {
    active: Option<ActiveLog>,
}

impl ThreadLog {
    /// Start a span nested under the innermost open span (or the
    /// ambient parent).
    pub fn start(&mut self, name: &'static str) -> OpenSpan {
        match &mut self.active {
            None => OpenSpan {
                id: 0,
                parent: 0,
                name,
                t_start_us: 0.0,
            },
            Some(log) => {
                let id = log.inner.next_id.fetch_add(1, Ordering::Relaxed);
                let parent = *log.stack.last().expect("ambient parent always present");
                log.stack.push(id);
                OpenSpan {
                    id,
                    parent,
                    name,
                    t_start_us: log.now_us(),
                }
            }
        }
    }

    /// End a span with no attributes.
    pub fn end(&mut self, span: OpenSpan) {
        self.end_kv(span, Vec::new());
    }

    /// End a span, attaching `(key, value)` attributes.
    pub fn end_kv(&mut self, span: OpenSpan, kv: Vec<(&'static str, String)>) {
        if let Some(log) = &mut self.active {
            let t_end_us = log.now_us();
            // Tolerate out-of-order ends: close everything above it too.
            while let Some(&top) = log.stack.last() {
                if top == span.id || log.stack.len() == 1 {
                    break;
                }
                log.stack.pop();
            }
            if log.stack.len() > 1 {
                log.stack.pop();
            }
            log.push(SpanRecord {
                id: span.id,
                parent: span.parent,
                name: span.name,
                thread: log.tid,
                t_start_us: span.t_start_us,
                t_end_us,
                kv,
            });
        }
    }

    /// Record a zero-duration marker event.
    pub fn instant(&mut self, name: &'static str, kv: Vec<(&'static str, String)>) {
        if let Some(log) = &mut self.active {
            let id = log.inner.next_id.fetch_add(1, Ordering::Relaxed);
            let parent = *log.stack.last().expect("ambient parent always present");
            let now = log.now_us();
            log.push(SpanRecord {
                id,
                parent,
                name,
                thread: log.tid,
                t_start_us: now,
                t_end_us: now,
                kv,
            });
        }
    }
}

impl ActiveLog {
    fn now_us(&self) -> f64 {
        self.inner.t0.elapsed().as_secs_f64() * 1e6
    }

    fn push(&mut self, rec: SpanRecord) {
        if self.spans.len() < self.inner.cap {
            self.spans.push(rec);
        } else {
            self.spans[self.write % self.inner.cap] = rec;
            self.dropped += 1;
        }
        self.write += 1;
    }
}

impl Drop for ThreadLog {
    fn drop(&mut self) {
        if let Some(mut log) = self.active.take() {
            // Un-rotate the ring so spans come out oldest-first.
            if log.dropped > 0 {
                let pivot = log.write % log.inner.cap;
                log.spans.rotate_left(pivot);
            }
            let buf = ThreadBuf {
                tid: log.tid,
                spans: std::mem::take(&mut log.spans),
                dropped: log.dropped,
            };
            log.inner.retired.lock().expect("recorder lock").push(buf);
        }
    }
}

/// Aggregate duration of all spans sharing a name.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseTotal {
    pub name: &'static str,
    pub count: u64,
    pub total_us: f64,
}

/// Drained span data; see [`Recorder::drain`].
#[derive(Default)]
pub struct Trace {
    pub spans: Vec<SpanRecord>,
    /// `(tid, name)` for every registered thread, sorted by tid.
    pub threads: Vec<(u64, String)>,
    /// Spans lost to ring-buffer overwrites.
    pub dropped: u64,
}

impl Trace {
    /// Sum span durations by name, sorted by name for stable output.
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        let mut totals: Vec<PhaseTotal> = Vec::new();
        for s in &self.spans {
            let dur = s.t_end_us - s.t_start_us;
            match totals.iter_mut().find(|t| t.name == s.name) {
                Some(t) => {
                    t.count += 1;
                    t.total_us += dur;
                }
                None => totals.push(PhaseTotal {
                    name: s.name,
                    count: 1,
                    total_us: dur,
                }),
            }
        }
        totals.sort_by_key(|t| t.name);
        totals
    }

    /// Chrome trace-event JSON (the object form, loadable in Perfetto).
    pub fn to_chrome_json(&self) -> Json {
        let mut events: Vec<Json> = Vec::with_capacity(self.spans.len() + self.threads.len());
        for (tid, name) in &self.threads {
            events.push(Json::obj(vec![
                ("ph", Json::Str("M".into())),
                ("name", Json::Str("thread_name".into())),
                ("pid", Json::Int(1)),
                ("tid", Json::Int(*tid as i64)),
                ("args", Json::obj(vec![("name", Json::Str(name.clone()))])),
            ]));
        }
        for s in &self.spans {
            let mut args: Vec<(&str, Json)> = vec![
                ("span_id", Json::Int(s.id as i64)),
                ("parent", Json::Int(s.parent as i64)),
            ];
            for (k, v) in &s.kv {
                args.push((k, Json::Str(v.clone())));
            }
            events.push(Json::obj(vec![
                ("ph", Json::Str("X".into())),
                ("name", Json::Str(s.name.into())),
                ("pid", Json::Int(1)),
                ("tid", Json::Int(s.thread as i64)),
                ("ts", Json::Num(s.t_start_us)),
                ("dur", Json::Num(s.t_end_us - s.t_start_us)),
                ("args", Json::obj(args)),
            ]));
        }
        Json::obj(vec![
            ("displayTimeUnit", Json::Str("ms".into())),
            ("traceEvents", Json::Arr(events)),
        ])
    }

    /// Write the Chrome trace JSON to `path` (pretty-printed).
    pub fn write_chrome(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_chrome_json().pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        let mut tl = rec.thread("t", 0);
        let s = tl.start("work");
        assert_eq!(s.id(), 0);
        tl.end(s);
        drop(tl);
        let trace = rec.drain();
        assert!(trace.spans.is_empty() && trace.threads.is_empty());
    }

    #[test]
    fn spans_nest_and_parent_links_hold() {
        let rec = Recorder::enabled();
        let mut tl = rec.thread("worker", 0);
        let outer = tl.start("outer");
        let outer_id = outer.id();
        let inner = tl.start("inner");
        tl.end_kv(inner, vec![("tile", "3".into())]);
        tl.end(outer);
        drop(tl);
        let trace = rec.drain();
        assert_eq!(trace.spans.len(), 2);
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer_id);
        assert_eq!(outer.parent, 0);
        assert!(outer.t_start_us <= inner.t_start_us);
        assert!(inner.t_end_us <= outer.t_end_us);
        assert_eq!(inner.kv, vec![("tile", "3".to_string())]);
        assert_eq!(trace.threads, vec![(0, "worker".to_string())]);
    }

    #[test]
    fn ambient_parent_crosses_threads() {
        let rec = Recorder::enabled();
        let mut main = rec.thread("main", 0);
        let job = main.start("job");
        let job_id = job.id();
        std::thread::scope(|scope| {
            let rec = &rec;
            scope.spawn(move || {
                let mut tl = rec.thread("group", job_id);
                let s = tl.start("tile");
                tl.end(s);
            });
        });
        main.end(job);
        drop(main);
        let trace = rec.drain();
        let tile = trace.spans.iter().find(|s| s.name == "tile").unwrap();
        assert_eq!(tile.parent, job_id);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let rec = Recorder::with_capacity(4);
        let mut tl = rec.thread("t", 0);
        for _ in 0..7 {
            let s = tl.start("op");
            tl.end(s);
        }
        drop(tl);
        let trace = rec.drain();
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.dropped, 3);
        // Oldest-first order survives the rotation.
        for w in trace.spans.windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn chrome_export_is_valid_and_roundtrips() {
        let rec = Recorder::enabled();
        let mut tl = rec.thread("w0", 0);
        let s = tl.start("phase");
        tl.end(s);
        drop(tl);
        let trace = rec.drain();
        let json = trace.to_chrome_json();
        let text = json.pretty();
        let parsed = em_json::parse(&text).expect("chrome trace parses");
        let events = parsed.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(events.len(), 2); // thread_name metadata + one span
        let totals = trace.phase_totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].name, "phase");
        assert_eq!(totals[0].count, 1);
    }
}
