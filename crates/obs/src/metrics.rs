//! Metric primitives and the exposition registry.
//!
//! Three instrument kinds cover everything the workspace reports:
//! monotonic [`Counter`]s, last-value [`Gauge`]s, and fixed-bucket
//! [`Histogram`]s with power-of-two bucket bounds (latencies spread over
//! orders of magnitude, so log2 buckets give constant relative error).
//! A [`Registry`] names instruments and renders them in the Prometheus
//! text exposition format; instruments also work standalone (`loadgen`
//! aggregates client-side histograms without a registry).
//!
//! All instruments are internally atomic: `&self` methods, shareable via
//! `Arc`, and safe to update from any thread without locking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value gauge storing an `f64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram with log2 bucket bounds plus a `+Inf` bucket.
///
/// Bucket `i` counts observations `v <= bounds[i]`; the final slot counts
/// the overflow (`+Inf` bucket). The observation count is the sum of all
/// bucket slots by construction, so `count()` and the buckets can never
/// disagree (the property test in `tests/histogram_props.rs` pins this).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    /// Sum of observed values, f64 bits updated by CAS.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Buckets at `2^min_exp, 2^(min_exp+1), ..., 2^max_exp`, plus `+Inf`.
    pub fn log2(min_exp: i32, max_exp: i32) -> Self {
        assert!(min_exp <= max_exp, "empty bucket range");
        let bounds: Vec<f64> = (min_exp..=max_exp).map(|e| (e as f64).exp2()).collect();
        Histogram::with_bounds(bounds)
    }

    /// Default latency layout in seconds: 61 us .. 128 s.
    pub fn latency_seconds() -> Self {
        Histogram::log2(-14, 7)
    }

    /// Default latency layout in milliseconds: 0.25 ms .. 8 min.
    pub fn latency_millis() -> Self {
        Histogram::log2(-2, 19)
    }

    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: mergeable and queryable.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds (exclusive of the trailing `+Inf` slot).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` entries (last is `+Inf`).
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total number of observations (sum over all buckets).
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merge another snapshot in; panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "bucket layouts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// Quantile estimate (`q` in `[0, 1]`) by linear interpolation within
    /// the containing bucket. Returns 0 for an empty histogram; values in
    /// the `+Inf` bucket clamp to the largest finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank && c > 0 {
                if i >= self.bounds.len() {
                    return *self.bounds.last().expect("non-empty bounds");
                }
                let hi = self.bounds[i];
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let into = (rank - (cum - c)) as f64 / c as f64;
                return lo + (hi - lo) * into;
            }
        }
        *self.bounds.last().expect("non-empty bounds")
    }
}

/// Label set: ordered `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

fn labels_of(pairs: &[(&str, &str)]) -> Labels {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    name: String,
    help: String,
    series: Vec<(Labels, Instrument)>,
}

impl Family {
    fn kind(&self) -> &'static str {
        match self.series.first().map(|(_, m)| m) {
            Some(Instrument::Counter(_)) => "counter",
            Some(Instrument::Gauge(_)) => "gauge",
            Some(Instrument::Histogram(_)) => "histogram",
            None => "untyped",
        }
    }
}

/// Named metric registry rendering Prometheus text exposition format.
///
/// `counter`/`gauge`/`histogram` are get-or-create: the first call for a
/// `(name, labels)` pair registers the series, later calls return the
/// same instrument. Families render in registration order, so the
/// exposition output is deterministic.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            labels,
            |m| match m {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || Instrument::Counter(Arc::new(Counter::new())),
        )
    }

    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            labels,
            |m| match m {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || Instrument::Gauge(Arc::new(Gauge::new())),
        )
    }

    /// Histogram with the default latency-seconds bucket layout.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            labels,
            |m| match m {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || Instrument::Histogram(Arc::new(Histogram::latency_seconds())),
        )
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        downcast: impl Fn(&Instrument) -> Option<Arc<T>>,
        make: impl FnOnce() -> Instrument,
    ) -> Arc<T> {
        let labels = labels_of(labels);
        let mut families = self.families.lock().expect("registry lock");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some((_, m)) = family.series.iter().find(|(l, _)| *l == labels) {
            return downcast(m)
                .unwrap_or_else(|| panic!("metric `{name}` re-registered with a different kind"));
        }
        let instrument = make();
        let handle = downcast(&instrument).expect("fresh instrument kind matches");
        family.series.push((labels, instrument));
        handle
    }

    /// Render every family in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("registry lock");
        let mut out = String::new();
        for f in families.iter() {
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind()));
            for (labels, m) in &f.series {
                match m {
                    Instrument::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            f.name,
                            fmt_labels(labels, None),
                            c.get()
                        ));
                    }
                    Instrument::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            f.name,
                            fmt_labels(labels, None),
                            fmt_f64(g.get())
                        ));
                    }
                    Instrument::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (i, c) in snap.counts.iter().enumerate() {
                            cum += c;
                            let le = if i < snap.bounds.len() {
                                fmt_f64(snap.bounds[i])
                            } else {
                                "+Inf".to_string()
                            };
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                f.name,
                                fmt_labels(labels, Some(&le)),
                                cum
                            ));
                        }
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            f.name,
                            fmt_labels(labels, None),
                            fmt_f64(snap.sum)
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            f.name,
                            fmt_labels(labels, None),
                            cum
                        ));
                    }
                }
            }
        }
        out
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::log2(0, 3); // bounds 1, 2, 4, 8
        for v in [0.5, 1.5, 3.0, 3.5, 100.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![1, 1, 2, 0, 1]);
        assert_eq!(s.count(), 5);
        assert!((s.sum - 108.5).abs() < 1e-12);
        // Median falls in the (2, 4] bucket.
        let q = s.quantile(0.5);
        assert!((2.0..=4.0).contains(&q), "median {q}");
        // Overflow clamps to the top finite bound.
        assert_eq!(s.quantile(1.0), 8.0);
    }

    #[test]
    fn registry_renders_exposition_format() {
        let r = Registry::new();
        r.counter(
            "em_requests_total",
            "Total requests.",
            &[("route", "/jobs")],
        )
        .add(3);
        r.gauge("em_utilization", "Worker busy fraction.", &[])
            .set(0.5);
        r.histogram("em_latency_seconds", "Request latency.", &[])
            .observe(0.001);
        let text = r.render();
        assert!(text.contains("# TYPE em_requests_total counter"));
        assert!(text.contains("em_requests_total{route=\"/jobs\"} 3"));
        assert!(text.contains("# TYPE em_utilization gauge"));
        assert!(text.contains("em_utilization 0.5"));
        assert!(text.contains("# TYPE em_latency_seconds histogram"));
        assert!(text.contains("em_latency_seconds_count 1"));
        assert!(text.contains("le=\"+Inf\""));
        // Same (name, labels) returns the same underlying instrument.
        r.counter(
            "em_requests_total",
            "Total requests.",
            &[("route", "/jobs")],
        )
        .inc();
        assert!(r.render().contains("em_requests_total{route=\"/jobs\"} 4"));
    }
}
