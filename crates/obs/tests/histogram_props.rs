//! Property tests on the histogram: bucket counts always sum to the
//! number of observations, and snapshot merge is associative (so
//! per-thread histograms can be folded in any order).

use em_obs::Histogram;
use proptest::prelude::*;

/// Deterministic pseudo-observations spread across (and beyond) the
/// bucket range: exercises underflow, every bucket, and the +Inf slot.
fn observations(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Exponent in [-6, 9], mantissa in [1, 2).
            let e = ((state >> 33) % 16) as i32 - 6;
            let m = 1.0 + (state >> 11) as f64 / (1u64 << 53) as f64;
            m * (e as f64).exp2()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every observation lands in exactly one bucket: the per-bucket
    /// counts sum to the total, and the count survives merging.
    #[test]
    fn bucket_counts_sum_to_observations(
        seed in 0u64..u64::MAX,
        n in 0usize..400,
        min_exp in -8i32..0,
        span in 1i32..12,
    ) {
        let h = Histogram::log2(min_exp, min_exp + span);
        for v in observations(seed, n) {
            h.observe(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.counts.iter().sum::<u64>(), n as u64);
        prop_assert_eq!(s.count(), n as u64);
        prop_assert_eq!(s.counts.len(), s.bounds.len() + 1);
    }

    /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c), bucket-wise
    /// and in total count.
    #[test]
    fn merge_is_associative(
        sa in 0u64..u64::MAX,
        sb in 0u64..u64::MAX,
        sc in 0u64..u64::MAX,
        na in 0usize..120,
        nb in 0usize..120,
        nc in 0usize..120,
    ) {
        let snap = |seed: u64, n: usize| {
            let h = Histogram::log2(-4, 8);
            for v in observations(seed, n) {
                h.observe(v);
            }
            h.snapshot()
        };
        let (a, b, c) = (snap(sa, na), snap(sb, nb), snap(sc, nc));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(&left.counts, &right.counts);
        prop_assert_eq!(left.count(), (na + nb + nc) as u64);
        // Sums are f64 additions in different orders; allow rounding.
        prop_assert!((left.sum - right.sum).abs() <= 1e-9 * left.sum.abs().max(1.0));
    }

    /// Quantiles are monotone in q and bounded by the bucket range.
    #[test]
    fn quantiles_are_monotone(
        seed in 0u64..u64::MAX,
        n in 1usize..300,
    ) {
        let h = Histogram::log2(-4, 8);
        for v in observations(seed, n) {
            h.observe(v);
        }
        let s = h.snapshot();
        let qs: Vec<f64> = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| s.quantile(q))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {:?}", qs);
        }
        let top = *s.bounds.last().unwrap();
        for q in qs {
            prop_assert!((0.0..=top).contains(&q));
        }
    }
}
