//! Finite-Integration-style material averaging.
//!
//! The production code uses the Finite Integration Technique [12] to map
//! material data from an unstructured tetrahedral description onto the
//! structured staggered grid. The equivalent operation here: sub-cell
//! sampling of the analytic scene and averaging of the complex
//! permittivity over each cell volume, which treats curved interfaces
//! (spheres, textured layers) without staircasing the material data.

use crate::geometry::Scene;

/// Sub-samples per axis (s^3 points per cell).
pub const SUBSAMPLES: usize = 3;

/// Volume-averaged `(eps_r, eps_i)` for the unit cell at integer
/// coordinates `(x, y, z)`.
pub fn average_eps(scene: &Scene, lambda_nm: f64, x: usize, y: usize, z: usize) -> (f64, f64) {
    let s = SUBSAMPLES;
    let mut re = 0.0;
    let mut im = 0.0;
    for i in 0..s {
        for j in 0..s {
            for k in 0..s {
                let fx = x as f64 + (i as f64 + 0.5) / s as f64;
                let fy = y as f64 + (j as f64 + 0.5) / s as f64;
                let fz = z as f64 + (k as f64 + 0.5) / s as f64;
                let id = scene.material_at(fx, fy, fz);
                let (er, ei) = scene.material(id).eps(lambda_nm);
                re += er;
                im += ei;
            }
        }
    }
    let n = (s * s * s) as f64;
    (re / n, im / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Layer, Sphere};
    use crate::materials::Material;

    #[test]
    fn uniform_scene_averages_to_itself() {
        let s = Scene::uniform(Material::glass());
        let (re, im) = average_eps(&s, 550.0, 3, 4, 5);
        assert!((re - 2.25).abs() < 1e-12);
        assert_eq!(im, 0.0);
    }

    #[test]
    fn interface_cell_gets_intermediate_value() {
        // Glass below z=5.5, vacuum above: the z=5 cell is half-half.
        let mut s = Scene::vacuum();
        let g = s.add_material(Material::glass());
        s.layers.push(Layer::flat(g, 0.0, 5.5));
        let (re_bulk, _) = average_eps(&s, 550.0, 0, 0, 2);
        let (re_iface, _) = average_eps(&s, 550.0, 0, 0, 5);
        let (re_vac, _) = average_eps(&s, 550.0, 0, 0, 8);
        assert!((re_bulk - 2.25).abs() < 1e-12);
        assert_eq!(re_vac, 1.0);
        assert!(re_iface > 1.2 && re_iface < 2.1, "got {re_iface}");
        // 0.5 of the cell is glass: expected ~ (2.25 + 1.0)/2 within the
        // subsample quantization.
        assert!((re_iface - 1.625).abs() < 0.25);
    }

    #[test]
    fn sphere_fraction_scales_with_coverage() {
        let mut s = Scene::vacuum();
        let m = s.add_material(Material::Index {
            name: "hi",
            n: 3.0,
            k: 0.0,
        });
        s.spheres.push(Sphere {
            center: [0.5, 0.5, 0.5],
            radius: 10.0,
            material: m,
        });
        // Cell fully inside the big sphere.
        let (re, _) = average_eps(&s, 550.0, 0, 0, 0);
        assert!((re - 9.0).abs() < 1e-12);
        // Far cell untouched.
        let (re_far, _) = average_eps(&s, 550.0, 30, 30, 30);
        assert_eq!(re_far, 1.0);
    }
}
