//! Scene geometry: layered thin-film stacks with textured interfaces and
//! embedded nanoparticles (the Fig. 1 tandem cell).

use crate::materials::{Material, MaterialId};

/// Deterministic rough-surface height field: a few incommensurate
/// sinusoids with hashed phases, standing in for the AFM-measured etch
/// textures of the real device ("textured surfaces to increase the light
/// trapping ability", Fig. 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Texture {
    /// Peak amplitude in cells.
    pub amplitude: f64,
    /// Characteristic lateral period in cells.
    pub period: f64,
    /// Seed decorrelating different interfaces.
    pub seed: u64,
}

impl Texture {
    pub fn height(&self, x: f64, y: f64) -> f64 {
        if self.amplitude == 0.0 {
            return 0.0;
        }
        let p = std::f64::consts::TAU / self.period;
        let ph = |i: u64| {
            let mut h = self
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i);
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            (h >> 11) as f64 / (1u64 << 53) as f64 * std::f64::consts::TAU
        };
        let s = (p * x + ph(1)).sin()
            + (p * y + ph(2)).sin()
            + 0.5 * (1.7 * p * x + 0.9 * p * y + ph(3)).sin()
            + 0.5 * (0.8 * p * x - 1.6 * p * y + ph(4)).sin();
        self.amplitude * s / 3.0
    }
}

/// A horizontal layer `z in [z_lo, z_hi)`, with optional textured
/// interfaces displacing either face laterally. Conformal stacks share
/// one texture between a layer's top and the next layer's bottom, as the
/// etched films of the real device do.
#[derive(Clone, Debug)]
pub struct Layer {
    pub material: MaterialId,
    pub z_lo: f64,
    pub z_hi: f64,
    pub top_texture: Option<Texture>,
    pub bottom_texture: Option<Texture>,
}

impl Layer {
    pub fn flat(material: MaterialId, z_lo: f64, z_hi: f64) -> Layer {
        Layer {
            material,
            z_lo,
            z_hi,
            top_texture: None,
            bottom_texture: None,
        }
    }

    fn top_at(&self, x: f64, y: f64) -> f64 {
        self.z_hi + self.top_texture.map_or(0.0, |t| t.height(x, y))
    }

    fn bottom_at(&self, x: f64, y: f64) -> f64 {
        self.z_lo + self.bottom_texture.map_or(0.0, |t| t.height(x, y))
    }
}

/// A spherical inclusion (SiO2 nanoparticles at the back electrode).
#[derive(Clone, Copy, Debug)]
pub struct Sphere {
    pub center: [f64; 3],
    pub radius: f64,
    pub material: MaterialId,
}

impl Sphere {
    fn contains(&self, x: f64, y: f64, z: f64) -> bool {
        let dx = x - self.center[0];
        let dy = y - self.center[1];
        let dz = z - self.center[2];
        dx * dx + dy * dy + dz * dz <= self.radius * self.radius
    }
}

/// A full simulation scene.
#[derive(Clone, Debug)]
pub struct Scene {
    pub materials: Vec<Material>,
    pub background: MaterialId,
    /// Layers in increasing z; later layers win where they overlap.
    pub layers: Vec<Layer>,
    pub spheres: Vec<Sphere>,
}

impl Scene {
    /// Vacuum-only scene (the benchmark configuration).
    pub fn vacuum() -> Scene {
        Scene {
            materials: vec![Material::vacuum()],
            background: MaterialId(0),
            layers: Vec::new(),
            spheres: Vec::new(),
        }
    }

    /// Uniform scene of a single material.
    pub fn uniform(material: Material) -> Scene {
        Scene {
            materials: vec![material],
            background: MaterialId(0),
            layers: Vec::new(),
            spheres: Vec::new(),
        }
    }

    pub fn add_material(&mut self, m: Material) -> MaterialId {
        self.materials.push(m);
        MaterialId(self.materials.len() - 1)
    }

    /// Material at a continuous point. Spheres override layers; among
    /// layers the last one containing the point wins.
    pub fn material_at(&self, x: f64, y: f64, z: f64) -> MaterialId {
        for s in &self.spheres {
            if s.contains(x, y, z) {
                return s.material;
            }
        }
        let mut hit = self.background;
        for l in &self.layers {
            if z >= l.bottom_at(x, y) && z < l.top_at(x, y) {
                hit = l.material;
            }
        }
        hit
    }

    pub fn material(&self, id: MaterialId) -> &Material {
        &self.materials[id.0]
    }

    /// The Fig. 1 tandem thin-film cell, scaled to `nz` grid cells of
    /// height and `nx x ny` laterally: glass superstrate, front TCO,
    /// a-Si:H top junction (textured), uc-Si:H bottom junction
    /// (textured), back TCO, silver reflector with embedded SiO2
    /// nanoparticles. Light enters from high z.
    pub fn tandem_solar_cell(nx: usize, ny: usize, nz: usize) -> Scene {
        let mut scene = Scene::vacuum();
        let glass = scene.add_material(Material::glass());
        let tco = scene.add_material(Material::tco());
        let asi = scene.add_material(Material::a_si());
        let ucsi = scene.add_material(Material::uc_si());
        let ag = scene.add_material(Material::silver());
        let sio2 = scene.add_material(Material::silica());

        let h = nz as f64;
        let z = |f: f64| f * h;
        let tex = |amp: f64, seed: u64| Texture {
            amplitude: amp,
            period: (nx.min(ny) as f64 / 2.5).max(4.0),
            seed,
        };

        // Bottom-up: Ag back reflector, back TCO, uc-Si, a-Si, front TCO,
        // glass; vacuum above. Consecutive layers share their interface
        // texture (conformal films).
        let t_back = tex(h * 0.015, 11);
        let t_uc = tex(h * 0.02, 22);
        let t_a = tex(h * 0.02, 33);
        scene.layers.push(Layer::flat(ag, z(0.0), z(0.12)));
        scene.layers.push(Layer {
            material: tco,
            z_lo: z(0.12),
            z_hi: z(0.20),
            top_texture: Some(t_back),
            bottom_texture: None,
        });
        scene.layers.push(Layer {
            material: ucsi,
            z_lo: z(0.20),
            z_hi: z(0.48),
            top_texture: Some(t_uc),
            bottom_texture: Some(t_back),
        });
        scene.layers.push(Layer {
            material: asi,
            z_lo: z(0.48),
            z_hi: z(0.62),
            top_texture: Some(t_a),
            bottom_texture: Some(t_uc),
        });
        scene.layers.push(Layer {
            material: tco,
            z_lo: z(0.62),
            z_hi: z(0.70),
            top_texture: None,
            bottom_texture: Some(t_a),
        });
        scene.layers.push(Layer::flat(glass, z(0.70), z(0.82)));

        // SiO2 nanoparticles scattered on the back reflector.
        let r = (nx.min(ny) as f64 * 0.06).max(1.2);
        let mut sx = 0.31f64;
        let mut sy = 0.17f64;
        for _ in 0..((nx * ny) / 144).clamp(2, 24) {
            sx = (sx * 29.17).fract();
            sy = (sy * 31.41).fract();
            scene.spheres.push(Sphere {
                center: [sx * nx as f64, sy * ny as f64, z(0.12)],
                radius: r,
                material: sio2,
            });
        }
        scene
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn texture_is_deterministic_and_bounded() {
        let t = Texture {
            amplitude: 2.0,
            period: 10.0,
            seed: 5,
        };
        let a = t.height(3.2, 4.7);
        let b = t.height(3.2, 4.7);
        assert_eq!(a, b);
        for i in 0..50 {
            let h = t.height(i as f64 * 0.7, i as f64 * 1.3);
            assert!(h.abs() <= 2.0, "height {h} exceeds amplitude");
        }
        let flat = Texture {
            amplitude: 0.0,
            period: 10.0,
            seed: 5,
        };
        assert_eq!(flat.height(1.0, 2.0), 0.0);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = Texture {
            amplitude: 1.0,
            period: 8.0,
            seed: 1,
        };
        let b = Texture {
            amplitude: 1.0,
            period: 8.0,
            seed: 2,
        };
        let same =
            (0..20).filter(|&i| (a.height(i as f64, 0.0) - b.height(i as f64, 0.0)).abs() < 1e-12);
        assert!(same.count() < 3);
    }

    #[test]
    fn layers_stack_and_background_fills() {
        let mut s = Scene::vacuum();
        let m1 = s.add_material(Material::glass());
        s.layers.push(Layer::flat(m1, 2.0, 5.0));
        assert_eq!(s.material_at(0.0, 0.0, 0.5), MaterialId(0));
        assert_eq!(s.material_at(0.0, 0.0, 3.0), m1);
        assert_eq!(s.material_at(0.0, 0.0, 5.5), MaterialId(0));
    }

    #[test]
    fn spheres_override_layers() {
        let mut s = Scene::vacuum();
        let m1 = s.add_material(Material::glass());
        let m2 = s.add_material(Material::silica());
        s.layers.push(Layer::flat(m1, 0.0, 10.0));
        s.spheres.push(Sphere {
            center: [5.0, 5.0, 5.0],
            radius: 2.0,
            material: m2,
        });
        assert_eq!(s.material_at(5.0, 5.0, 5.0), m2);
        assert_eq!(s.material_at(5.0, 5.0, 8.5), m1);
    }

    #[test]
    fn tandem_cell_has_all_fig1_ingredients() {
        let s = Scene::tandem_solar_cell(24, 24, 48);
        let names: Vec<&str> = s.materials.iter().map(|m| m.name()).collect();
        for want in ["vacuum", "glass", "TCO", "a-Si:H", "uc-Si:H", "Ag", "SiO2"] {
            assert!(names.contains(&want), "missing {want}");
        }
        assert!(!s.spheres.is_empty(), "nanoparticles present");
        assert!(
            s.layers.iter().any(|l| l.top_texture.is_some()),
            "textured interfaces"
        );
        // Probe: silver near the bottom, vacuum on top.
        let ag_id = s.material_at(12.0, 12.0, 1.0);
        assert_eq!(s.material(ag_id).name(), "Ag");
        let top = s.material_at(12.0, 12.0, 47.0);
        assert_eq!(s.material(top).name(), "vacuum");
    }

    #[test]
    fn textured_interface_varies_laterally() {
        let s = Scene::tandem_solar_cell(32, 32, 64);
        // Near the a-Si / TCO interface the material must differ across
        // (x, y) at some z level thanks to the conformal texture.
        let found = (0..16).any(|step| {
            let zprobe = 0.62 * 64.0 - 2.0 + step as f64 * 0.25;
            let mut kinds = std::collections::HashSet::new();
            for i in 0..32 {
                for j in 0..32 {
                    kinds.insert(s.material_at(i as f64, j as f64, zprobe));
                }
            }
            kinds.len() >= 2
        });
        assert!(found, "interface shows no texture");
    }

    #[test]
    fn conformal_stack_has_no_vacuum_gaps_inside() {
        // Between the silver bottom and the glass top, no probe point may
        // see the vacuum background: the textured faces must meet.
        let s = Scene::tandem_solar_cell(24, 24, 64);
        for i in 0..24 {
            for j in 0..24 {
                for zstep in 4..44 {
                    let z = zstep as f64;
                    let id = s.material_at(i as f64 + 0.5, j as f64 + 0.5, z);
                    assert_ne!(s.material(id).name(), "vacuum", "gap at ({i},{j},{z})");
                }
            }
        }
    }
}
