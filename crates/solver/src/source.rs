//! Time-harmonic plane-wave source description.

use em_field::{Axis, Cplx};

/// A uniform transverse source sheet at one z plane, driving the chosen
/// electric polarization each time step (the steady forcing of the
/// time-harmonic iteration; the PML absorbs both outgoing directions).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SourceSpec {
    pub z_plane: usize,
    pub amplitude: Cplx,
    /// `Axis::X` or `Axis::Y`.
    pub polarization: Axis,
}

impl SourceSpec {
    pub fn x_polarized(z_plane: usize, amplitude: f64) -> Self {
        SourceSpec {
            z_plane,
            amplitude: Cplx::real(amplitude),
            polarization: Axis::X,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_defaults() {
        let s = SourceSpec::x_polarized(10, 1.5);
        assert_eq!(s.z_plane, 10);
        assert_eq!(s.polarization, Axis::X);
        assert_eq!(s.amplitude, Cplx::real(1.5));
    }
}
