//! # thiim-solver — the solar-cell optics application
//!
//! The Time-Harmonic Inverse Iteration Method (THIIM) solver for
//! Maxwell's equations with Finite-Difference Frequency-Domain
//! discretization, as used by the paper's production code for thin-film
//! photovoltaics (Sec. I):
//!
//! - [`materials`]: complex optical constants (including silver with
//!   negative real permittivity, driving the back-iteration of Eq. 5);
//! - [`geometry`]: layered cell stacks with textured interfaces and
//!   nanoparticles (Fig. 1);
//! - [`fit`]: Finite-Integration-style sub-cell material averaging onto
//!   the staggered grid;
//! - [`pml`]: Berenger split-field perfectly matched layers (Eqs. 6-7);
//! - [`coeffs`]: assembly of the 28 coefficient arrays from physics;
//! - [`source`]: time-harmonic plane-wave drive;
//! - [`solver`]: the iteration driver with convergence monitoring,
//!   runnable on any engine (naive / spatial / MWD);
//! - [`builder`]: fluent one-stop construction of solver configs, shared
//!   by the examples, the scenario library and the benches;
//! - [`analysis`]: Poynting flux and per-layer absorption.
//!
//! Units are normalized: cell size = 1, vacuum light speed = 1,
//! eps0 = mu0 = 1. Wavelengths are given in cells.

pub mod analysis;
pub mod builder;
pub mod coeffs;
pub mod fit;
pub mod geometry;
pub mod materials;
pub mod pml;
pub mod solver;
pub mod source;

pub use builder::SolverBuilder;
pub use coeffs::{build_coefficients, CoeffOptions};
pub use geometry::{Layer, Scene, Sphere};
pub use materials::{Material, MaterialId};
pub use pml::PmlSpec;
pub use solver::{ConvergenceReport, Engine, SolverConfig, ThiimSolver};
pub use source::SourceSpec;
