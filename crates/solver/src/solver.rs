//! The THIIM iteration driver.
//!
//! THIIM reaches the time-harmonic solution by iterating the FDFD time
//! stepping until the complex field amplitudes stop changing; the paper's
//! production runs iterate the kernel exactly as benchmarked here. The
//! driver is engine-agnostic: the same state steps through the naive
//! reference, the spatially blocked baseline, or the MWD engine (which is
//! bit-identical to naive by construction).

use crate::coeffs::{build_coefficients, CoeffOptions};
use crate::geometry::Scene;
use crate::pml::PmlSpec;
use crate::source::SourceSpec;
use em_field::{norms, FieldSet, GridDims, State};
use em_kernels::boundary::{step_naive_with_boundary, Boundary};
use em_kernels::{step_spatial_mt, SpatialConfig};
use mwd_core::{CancelToken, MwdConfig};

/// Execution engine selection.
#[derive(Clone, Debug)]
pub enum Engine {
    /// Reference sweep, Dirichlet boundaries.
    Naive,
    /// Reference sweep with periodic horizontal boundaries (production
    /// configuration; temporally blocked engines are Dirichlet-only,
    /// matching the paper's benchmark scope).
    NaivePeriodicXY,
    /// Spatially blocked baseline on `threads` threads.
    Spatial { cfg: SpatialConfig, threads: usize },
    /// Multicore wavefront diamond engine.
    Mwd(MwdConfig),
    /// MWD with loop-peeled periodic x boundaries (the paper's outlook
    /// feature): horizontal periodicity in the tiled engine itself.
    MwdPeriodicX(MwdConfig),
}

/// Problem description.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    pub dims: GridDims,
    pub scene: Scene,
    /// Vacuum wavelength in cells.
    pub lambda_cells: f64,
    /// Vacuum wavelength in nm (material dispersion lookup).
    pub lambda_nm: f64,
    pub cfl: f64,
    pub pml: Option<PmlSpec>,
    pub source: Option<SourceSpec>,
}

impl SolverConfig {
    pub fn new(dims: GridDims, scene: Scene, lambda_cells: f64, lambda_nm: f64) -> Self {
        SolverConfig {
            dims,
            scene,
            lambda_cells,
            lambda_nm,
            cfl: 0.95,
            pml: None,
            source: None,
        }
    }
}

/// Convergence information from [`ThiimSolver::run_to_convergence`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConvergenceReport {
    pub periods: usize,
    pub steps: usize,
    pub rel_change: f64,
    pub converged: bool,
}

/// The solver: state + physics parameters.
pub struct ThiimSolver {
    pub state: State,
    pub config: SolverConfig,
    pub omega: f64,
    pub tau: f64,
    /// Cells using the Eq. 5 back iteration.
    pub back_iteration_cells: usize,
    steps_done: usize,
    /// Span recorder for the MWD engines; disabled (free) by default.
    recorder: em_obs::Recorder,
    /// Ambient parent span id for executor spans (0 = root).
    trace_parent: u64,
}

impl ThiimSolver {
    pub fn new(config: SolverConfig) -> Self {
        let mut state = State::zeros(config.dims);
        let mut opt = CoeffOptions::new(config.lambda_cells, config.lambda_nm);
        opt.cfl = config.cfl;
        opt.pml = config.pml;
        opt.source = config.source;
        let back = build_coefficients(&mut state, &config.scene, &opt);
        ThiimSolver {
            state,
            omega: opt.omega(),
            tau: opt.tau(),
            back_iteration_cells: back,
            config,
            steps_done: 0,
            recorder: em_obs::Recorder::disabled(),
            trace_parent: 0,
        }
    }

    /// Record executor phase spans into `rec`, nested under `parent`
    /// (0 for root spans). The default disabled recorder makes every
    /// instrumentation point a no-op.
    pub fn set_recorder(&mut self, rec: em_obs::Recorder, parent: u64) {
        self.recorder = rec;
        self.trace_parent = parent;
    }

    /// Time steps per optical period.
    pub fn steps_per_period(&self) -> usize {
        (std::f64::consts::TAU / (self.omega * self.tau)).round() as usize
    }

    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// Advance `n` time steps on the chosen engine.
    pub fn step_n(&mut self, engine: &Engine, n: usize) -> Result<(), String> {
        self.step_n_cancel(engine, n, &CancelToken::none())
    }

    /// [`Self::step_n`] observing a [`CancelToken`]. The MWD engines
    /// check at every tile claim; the sequential engines check once
    /// per time step. On a halt the fields are mid-update and must be
    /// discarded along with the returned prefixed error.
    pub fn step_n_cancel(
        &mut self,
        engine: &Engine,
        n: usize,
        cancel: &CancelToken,
    ) -> Result<(), String> {
        match engine {
            Engine::Naive => {
                for _ in 0..n {
                    if let Some(err) = cancel.halt_error() {
                        return Err(err);
                    }
                    step_naive_with_boundary(&mut self.state, Boundary::Dirichlet);
                }
            }
            Engine::NaivePeriodicXY => {
                for _ in 0..n {
                    if let Some(err) = cancel.halt_error() {
                        return Err(err);
                    }
                    step_naive_with_boundary(&mut self.state, Boundary::PeriodicXY);
                }
            }
            Engine::Spatial { cfg, threads } => {
                for _ in 0..n {
                    if let Some(err) = cancel.halt_error() {
                        return Err(err);
                    }
                    step_spatial_mt(&mut self.state, *cfg, *threads);
                }
            }
            Engine::Mwd(cfg) => {
                mwd_core::run_mwd_bc_rec_cancel(
                    &mut self.state,
                    cfg,
                    n,
                    mwd_core::MwdBoundary::Dirichlet,
                    &self.recorder,
                    self.trace_parent,
                    cancel,
                )?;
            }
            Engine::MwdPeriodicX(cfg) => {
                mwd_core::run_mwd_bc_rec_cancel(
                    &mut self.state,
                    cfg,
                    n,
                    mwd_core::MwdBoundary::PeriodicX,
                    &self.recorder,
                    self.trace_parent,
                    cancel,
                )?;
            }
        }
        self.steps_done += n;
        Ok(())
    }

    /// Iterate period by period until the relative field change per
    /// period drops below `tol`, or `max_periods` elapse.
    pub fn run_to_convergence(
        &mut self,
        engine: &Engine,
        tol: f64,
        max_periods: usize,
    ) -> Result<ConvergenceReport, String> {
        self.run_to_convergence_cancel(engine, tol, max_periods, &CancelToken::none())
    }

    /// [`Self::run_to_convergence`] observing a [`CancelToken`]: the
    /// token is checked at least once per period (and within the
    /// period by the engines themselves), so a cancelled or expired
    /// job halts within one solver period of the event — returning the
    /// token's prefixed halt error instead of a report.
    pub fn run_to_convergence_cancel(
        &mut self,
        engine: &Engine,
        tol: f64,
        max_periods: usize,
        cancel: &CancelToken,
    ) -> Result<ConvergenceReport, String> {
        let spp = self.steps_per_period();
        let mut prev: Option<FieldSet> = None;
        let mut rel = f64::INFINITY;
        for period in 1..=max_periods {
            self.step_n_cancel(engine, spp, cancel)?;
            if let Some(p) = &prev {
                rel = norms::relative_change(&self.state.fields, p);
                if rel < tol {
                    return Ok(ConvergenceReport {
                        periods: period,
                        steps: self.steps_done,
                        rel_change: rel,
                        converged: true,
                    });
                }
            }
            prev = Some(self.state.fields.clone());
        }
        Ok(ConvergenceReport {
            periods: max_periods,
            steps: self.steps_done,
            rel_change: rel,
            converged: false,
        })
    }

    pub fn fields(&self) -> &FieldSet {
        &self.state.fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::materials::Material;
    use em_field::Cplx;

    fn vacuum_wave_config(nz: usize, lambda: f64) -> SolverConfig {
        let dims = GridDims::new(4, 4, nz);
        let mut cfg = SolverConfig::new(dims, Scene::vacuum(), lambda, 550.0);
        cfg.pml = Some(PmlSpec::new(8));
        cfg.source = Some(SourceSpec::x_polarized(nz / 2, 1.0));
        cfg
    }

    #[test]
    fn steps_per_period_matches_omega_tau() {
        let s = ThiimSolver::new(vacuum_wave_config(32, 12.0));
        let spp = s.steps_per_period();
        let period = std::f64::consts::TAU / s.omega;
        assert!((spp as f64 * s.tau - period).abs() < s.tau);
    }

    #[test]
    fn expired_token_halts_before_stepping_with_timeout_error() {
        let mut s = ThiimSolver::new(vacuum_wave_config(32, 12.0));
        let token = CancelToken::with_deadline(std::time::Duration::from_millis(0));
        let err = s
            .run_to_convergence_cancel(&Engine::NaivePeriodicXY, 1e-2, 50, &token)
            .unwrap_err();
        assert!(
            err.starts_with(mwd_core::cancel::TIMEOUT_PREFIX),
            "want timeout prefix, got: {err}"
        );
        assert_eq!(s.steps_done(), 0, "expired token must not advance fields");
    }

    #[test]
    fn cancelled_token_halts_the_mwd_engine_with_cancelled_error() {
        let mut s = ThiimSolver::new(vacuum_wave_config(32, 12.0));
        let token = CancelToken::none();
        token.cancel();
        let cfg = MwdConfig {
            dw: 4,
            bz: 2,
            tg: mwd_core::TgShape { x: 1, z: 1, c: 3 },
            groups: 2,
        };
        let err = s
            .run_to_convergence_cancel(&Engine::Mwd(cfg), 1e-2, 50, &token)
            .unwrap_err();
        assert!(
            err.starts_with(mwd_core::cancel::CANCELLED_PREFIX),
            "want cancelled prefix, got: {err}"
        );
    }

    #[test]
    fn vacuum_plane_wave_reaches_steady_state_with_correct_wavelength() {
        let lambda = 12.0;
        let nz = 64;
        let mut s = ThiimSolver::new(vacuum_wave_config(nz, lambda));
        // Weakly damped cavity modes make the last decade of convergence
        // slow; a 1% residual is far below the 5% wavelength tolerance
        // measured below.
        let r = s
            .run_to_convergence(&Engine::NaivePeriodicXY, 1e-2, 150)
            .expect("engine runs");
        assert!(r.converged, "no steady state: rel_change {}", r.rel_change);

        // Phase advance per cell in the travelling region below the
        // source: |arg(E(z+1)/E(z))| ~ 2 pi / lambda_numerical.
        let mut ks = vec![];
        for z in 14..24 {
            let a = analysis::ex_at_center(s.fields(), z);
            let b = analysis::ex_at_center(s.fields(), z + 1);
            assert!(a.abs() > 1e-9 && b.abs() > 1e-9, "wave must reach z={z}");
            let dphi = (b / a).arg().abs();
            ks.push(dphi);
        }
        let k_mean = ks.iter().sum::<f64>() / ks.len() as f64;
        let lambda_num = std::f64::consts::TAU / k_mean;
        assert!(
            (lambda_num - lambda).abs() / lambda < 0.05,
            "numerical wavelength {lambda_num} vs vacuum {lambda}"
        );
    }

    #[test]
    fn pml_yields_travelling_wave_not_standing_wave() {
        // Strong boundary reflections would imprint a standing-wave
        // pattern on |E|(z); with working PML the mid-region amplitude
        // ripple stays small.
        let mut s = ThiimSolver::new(vacuum_wave_config(64, 12.0));
        s.run_to_convergence(&Engine::NaivePeriodicXY, 5e-3, 60)
            .unwrap();
        let prof = analysis::intensity_profile_z(s.fields());
        let window = &prof[12..26]; // below the source, above the PML
        let max = window.iter().cloned().fold(0.0, f64::max);
        let min = window.iter().cloned().fold(f64::INFINITY, f64::min);
        // Intensity SWR (max/min) = ((1+R)/(1-R))^2; R=0.2 gives 2.25.
        assert!(
            max / min < 2.3,
            "standing-wave ratio too high: {max}/{min} = {}",
            max / min
        );
    }

    #[test]
    fn energy_flows_away_from_the_source() {
        let mut s = ThiimSolver::new(vacuum_wave_config(64, 12.0));
        s.run_to_convergence(&Engine::NaivePeriodicXY, 5e-3, 60)
            .unwrap();
        let below = analysis::poynting_z(s.fields(), 16);
        let above = analysis::poynting_z(s.fields(), 48);
        assert!(
            below < 0.0,
            "below the source flux must point to -z, got {below}"
        );
        assert!(
            above > 0.0,
            "above the source flux must point to +z, got {above}"
        );
    }

    #[test]
    fn back_iteration_keeps_silver_stable_where_forward_diverges() {
        let dims = GridDims::new(3, 3, 24);
        let mut scene = Scene::vacuum();
        let ag = scene.add_material(Material::silver());
        scene
            .layers
            .push(crate::geometry::Layer::flat(ag, 0.0, 8.0));
        let mut cfg = SolverConfig::new(dims, scene, 10.0, 550.0);
        cfg.pml = Some(PmlSpec::new(4));
        cfg.source = Some(SourceSpec::x_polarized(16, 1.0));

        // Stable path.
        let mut stable = ThiimSolver::new(cfg.clone());
        assert!(stable.back_iteration_cells > 0);
        stable.step_n(&Engine::NaivePeriodicXY, 200).unwrap();
        let e_stable = stable.state.fields.energy();
        assert!(
            e_stable.is_finite() && e_stable < 1e8,
            "stable energy {e_stable}"
        );

        // Forced forward iteration must blow up.
        let mut state = State::zeros(dims);
        let mut opt = CoeffOptions::new(cfg.lambda_cells, cfg.lambda_nm);
        opt.pml = cfg.pml;
        opt.source = cfg.source;
        opt.force_forward_iteration = true;
        build_coefficients(&mut state, &cfg.scene, &opt);
        for _ in 0..200 {
            em_kernels::boundary::step_naive_with_boundary(
                &mut state,
                em_kernels::boundary::Boundary::PeriodicXY,
            );
        }
        let e_fwd = state.fields.energy();
        assert!(
            !e_fwd.is_finite() || e_fwd > 1e3 * e_stable.max(1.0),
            "forward iteration should diverge: {e_fwd} vs {e_stable}"
        );
    }

    #[test]
    fn mwd_engine_is_bitwise_equal_to_naive_for_the_physics_state() {
        let dims = GridDims::new(4, 8, 16);
        let mut scene = Scene::vacuum();
        let g = scene.add_material(Material::glass());
        scene
            .layers
            .push(crate::geometry::Layer::flat(g, 4.0, 10.0));
        let mut cfg = SolverConfig::new(dims, scene, 8.0, 550.0);
        cfg.pml = Some(PmlSpec::new(3));
        cfg.source = Some(SourceSpec::x_polarized(12, 1.0));

        let mut a = ThiimSolver::new(cfg.clone());
        let mut b = ThiimSolver::new(cfg);
        // Seed both with identical nontrivial fields.
        a.state.fields.fill_deterministic(99);
        b.state.fields.fill_deterministic(99);
        a.step_n(&Engine::Naive, 6).unwrap();
        let mwd = MwdConfig {
            dw: 4,
            bz: 2,
            tg: mwd_core::TgShape { x: 1, z: 1, c: 3 },
            groups: 2,
        };
        b.step_n(&Engine::Mwd(mwd), 6).unwrap();
        assert!(
            a.fields().bit_eq(b.fields()),
            "MWD must reproduce naive bits on the physics problem: {:?}",
            norms::first_mismatch(a.fields(), b.fields())
        );
    }

    #[test]
    fn tandem_cell_absorbs_in_the_junctions() {
        let dims = GridDims::new(12, 12, 48);
        let scene = Scene::tandem_solar_cell(12, 12, 48);
        let mut cfg = SolverConfig::new(dims, scene.clone(), 10.0, 500.0);
        cfg.pml = Some(PmlSpec::new(6));
        cfg.source = Some(SourceSpec::x_polarized(42, 1.0));
        let mut s = ThiimSolver::new(cfg);
        assert!(
            s.back_iteration_cells > 0,
            "the Ag back contact needs Eq. 5"
        );
        s.step_n(&Engine::NaivePeriodicXY, 6 * s.steps_per_period())
            .unwrap();
        // Absorption in the silicon junctions (z in [0.20, 0.62)*48).
        let junctions = analysis::absorption_in_slab(s.fields(), &scene, 500.0, s.omega, 10, 30);
        assert!(junctions > 0.0, "junction absorption must be positive");
        // Vacuum region above the glass absorbs nothing.
        let vacuum_region =
            analysis::absorption_in_slab(s.fields(), &scene, 500.0, s.omega, 44, 48);
        assert_eq!(vacuum_region, 0.0);
    }

    #[test]
    fn periodic_x_mwd_engine_preserves_x_uniformity() {
        // With laterally uniform physics, the peeled periodic-x MWD
        // engine must keep the fields exactly x-uniform — no Dirichlet
        // edge artifacts along x.
        let dims = GridDims::new(6, 6, 32);
        let mut cfg = SolverConfig::new(dims, Scene::vacuum(), 8.0, 550.0);
        cfg.pml = Some(PmlSpec::new(6));
        cfg.source = Some(SourceSpec::x_polarized(24, 1.0));
        let mut s = ThiimSolver::new(cfg);
        let mwd = MwdConfig {
            dw: 4,
            bz: 2,
            tg: mwd_core::TgShape { x: 1, z: 1, c: 2 },
            groups: 2,
        };
        s.step_n(&Engine::MwdPeriodicX(mwd), 40).unwrap();
        assert!(s.state.fields.energy() > 0.0);
        for comp in em_field::Component::ALL {
            let arr = s.state.fields.comp(comp);
            for z in 0..dims.nz as isize {
                for y in 0..dims.ny as isize {
                    let v0 = arr.get(0, y, z);
                    for x in 1..dims.nx as isize {
                        let v = arr.get(x, y, z);
                        assert!(
                            (v - v0).abs() <= 1e-12 * (1.0 + v0.abs()),
                            "{comp} at ({x},{y},{z}) breaks x-uniformity"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn convergence_report_counts_steps() {
        let mut s = ThiimSolver::new(vacuum_wave_config(32, 8.0));
        let r = s.run_to_convergence(&Engine::Naive, 1e-30, 3).unwrap();
        assert!(!r.converged, "impossible tolerance can't converge");
        assert_eq!(r.periods, 3);
        assert_eq!(r.steps, 3 * s.steps_per_period());
        assert_eq!(s.steps_done(), r.steps);
        let _ = Cplx::ZERO;
    }
}
