//! Berenger split-field perfectly matched layers along z.
//!
//! The solar-cell setups use PML vertically and periodic boundaries
//! horizontally (Sec. I). Each split component's PML conductivity acts
//! along its *derivative* axis; since only z carries PML here, exactly
//! the z-derivative components (the Listing-1 quartet) acquire PML loss,
//! graded polynomially into the layer.

/// PML description (applied at both z ends).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PmlSpec {
    /// Thickness in cells at each z boundary.
    pub thickness: usize,
    /// Polynomial grading order (3-4 typical).
    pub order: f64,
    /// Peak conductivity in normalized units (eps0 = c = cell = 1).
    pub sigma_max: f64,
}

impl PmlSpec {
    /// A reasonable default: 8-cell, cubic grading, near-optimal peak
    /// `sigma_max ~ 0.8 * (order + 1)` for unit impedance and spacing.
    pub fn new(thickness: usize) -> Self {
        let order = 3.0;
        PmlSpec {
            thickness,
            order,
            sigma_max: 0.8 * (order + 1.0),
        }
    }

    /// Conductivity at cell `z` of an `nz`-cell grid (0 outside the
    /// absorbing regions).
    pub fn sigma_z(&self, z: usize, nz: usize) -> f64 {
        if self.thickness == 0 {
            return 0.0;
        }
        let t = self.thickness as f64;
        // Depth into the layer, measured at the cell center.
        let depth = if z < self.thickness {
            self.thickness as f64 - (z as f64 + 0.5)
        } else if z >= nz - self.thickness {
            (z as f64 + 0.5) - (nz - self.thickness) as f64
        } else {
            return 0.0;
        };
        self.sigma_max * (depth / t).powf(self.order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_in_the_interior() {
        let p = PmlSpec::new(8);
        for z in 8..56 {
            assert_eq!(p.sigma_z(z, 64), 0.0, "z={z}");
        }
    }

    #[test]
    fn grades_monotonically_toward_the_boundary() {
        let p = PmlSpec::new(8);
        let nz = 64;
        for z in 1..8 {
            assert!(
                p.sigma_z(z - 1, nz) > p.sigma_z(z, nz),
                "low side must grade up toward z=0"
            );
        }
        for z in 57..64 {
            assert!(
                p.sigma_z(z, nz) > p.sigma_z(z - 1, nz),
                "high side grades up"
            );
        }
    }

    #[test]
    fn symmetric_profile() {
        let p = PmlSpec::new(6);
        let nz = 40;
        for d in 0..6 {
            let lo = p.sigma_z(d, nz);
            let hi = p.sigma_z(nz - 1 - d, nz);
            assert!((lo - hi).abs() < 1e-12, "d={d}: {lo} vs {hi}");
        }
    }

    #[test]
    fn peak_at_outermost_cell() {
        let p = PmlSpec::new(8);
        let peak = p.sigma_z(0, 64);
        assert!(peak > 0.9 * p.sigma_max * (7.5f64 / 8.0).powf(3.0));
        assert!(peak <= p.sigma_max);
    }

    #[test]
    fn zero_thickness_is_no_pml() {
        let p = PmlSpec {
            thickness: 0,
            order: 3.0,
            sigma_max: 1.0,
        };
        for z in 0..16 {
            assert_eq!(p.sigma_z(z, 16), 0.0);
        }
    }
}
