//! Field diagnostics: Poynting flux, absorption, energy.

use crate::fit::average_eps;
use crate::geometry::Scene;
use em_field::{Axis, Cplx, FieldKind, FieldSet};

/// Time-averaged Poynting flux through the z-plane `z` (positive = +z):
/// `S_z = 1/2 Re( Ex Hy* - Ey Hx* )` summed over the plane.
pub fn poynting_z(fields: &FieldSet, z: usize) -> f64 {
    let d = fields.dims();
    let zi = z as isize;
    let mut s = 0.0;
    for y in 0..d.ny as isize {
        for x in 0..d.nx as isize {
            let ex = fields.total(FieldKind::E, Axis::X, x, y, zi);
            let ey = fields.total(FieldKind::E, Axis::Y, x, y, zi);
            let hx = fields.total(FieldKind::H, Axis::X, x, y, zi);
            let hy = fields.total(FieldKind::H, Axis::Y, x, y, zi);
            s += 0.5 * ((ex * hy.conj()).re - (ey * hx.conj()).re);
        }
    }
    s
}

/// Time-averaged absorbed power in the slab `z0..z1`:
/// `P = 1/2 sum sigma(cell) |E(cell)|^2` with `sigma = omega * eps_i`.
pub fn absorption_in_slab(
    fields: &FieldSet,
    scene: &Scene,
    lambda_nm: f64,
    omega: f64,
    z0: usize,
    z1: usize,
) -> f64 {
    let d = fields.dims();
    let mut p = 0.0;
    for z in z0..z1.min(d.nz) {
        for y in 0..d.ny {
            for x in 0..d.nx {
                let (_, ei) = average_eps(scene, lambda_nm, x, y, z);
                if ei == 0.0 {
                    continue;
                }
                let sigma = omega * ei;
                let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                let e2 = fields.total(FieldKind::E, Axis::X, xi, yi, zi).norm_sqr()
                    + fields.total(FieldKind::E, Axis::Y, xi, yi, zi).norm_sqr()
                    + fields.total(FieldKind::E, Axis::Z, xi, yi, zi).norm_sqr();
                p += 0.5 * sigma * e2;
            }
        }
    }
    p
}

/// |E|^2 profile along z (plane-summed), for wavelength measurements and
/// standing-wave diagnostics.
pub fn intensity_profile_z(fields: &FieldSet) -> Vec<f64> {
    let d = fields.dims();
    (0..d.nz)
        .map(|z| {
            let mut s = 0.0;
            for y in 0..d.ny as isize {
                for x in 0..d.nx as isize {
                    for ax in [Axis::X, Axis::Y, Axis::Z] {
                        s += fields.total(FieldKind::E, ax, x, y, z as isize).norm_sqr();
                    }
                }
            }
            s
        })
        .collect()
}

/// Complex Ex at the lateral center of plane `z` — phase probe for
/// dispersion measurements.
pub fn ex_at_center(fields: &FieldSet, z: usize) -> Cplx {
    let d = fields.dims();
    fields.total(
        FieldKind::E,
        Axis::X,
        (d.nx / 2) as isize,
        (d.ny / 2) as isize,
        z as isize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_field::{Component, GridDims};

    #[test]
    fn poynting_of_crossed_unit_fields() {
        let d = GridDims::new(2, 2, 3);
        let mut f = FieldSet::zeros(d);
        // Ex = 1, Hy = 1 everywhere on plane z=1 => S_z = 0.5 per cell.
        for y in 0..2 {
            for x in 0..2 {
                f.comp_mut(Component::Exy).set(x, y, 1, Cplx::ONE);
                f.comp_mut(Component::Hyx).set(x, y, 1, Cplx::ONE);
            }
        }
        assert!((poynting_z(&f, 1) - 2.0).abs() < 1e-12);
        assert_eq!(poynting_z(&f, 0), 0.0);
    }

    #[test]
    fn counter_propagating_fields_cancel() {
        let d = GridDims::new(1, 1, 1);
        let mut f = FieldSet::zeros(d);
        f.comp_mut(Component::Exy).set(0, 0, 0, Cplx::ONE);
        f.comp_mut(Component::Hyx).set(0, 0, 0, Cplx::ONE);
        f.comp_mut(Component::Eyx).set(0, 0, 0, Cplx::ONE);
        f.comp_mut(Component::Hxy).set(0, 0, 0, Cplx::ONE);
        // Ex*Hy - Ey*Hx = 1 - 1 = 0.
        assert_eq!(poynting_z(&f, 0), 0.0);
    }

    #[test]
    fn absorption_zero_in_vacuum() {
        let d = GridDims::cubic(3);
        let mut f = FieldSet::zeros(d);
        f.fill_deterministic(3);
        let scene = Scene::vacuum();
        assert_eq!(absorption_in_slab(&f, &scene, 550.0, 0.5, 0, 3), 0.0);
    }

    #[test]
    fn absorption_positive_in_lossy_material() {
        let d = GridDims::cubic(3);
        let mut f = FieldSet::zeros(d);
        f.comp_mut(Component::Exy).set(1, 1, 1, Cplx::new(2.0, 0.0));
        let scene = Scene::uniform(crate::materials::Material::a_si());
        let p = absorption_in_slab(&f, &scene, 450.0, 0.5, 0, 3);
        assert!(p > 0.0);
        // More field => more absorption, quadratically.
        f.comp_mut(Component::Exy).set(1, 1, 1, Cplx::new(4.0, 0.0));
        let p2 = absorption_in_slab(&f, &scene, 450.0, 0.5, 0, 3);
        assert!((p2 / p - 4.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_profile_localizes_energy() {
        let d = GridDims::new(2, 2, 5);
        let mut f = FieldSet::zeros(d);
        f.comp_mut(Component::Ezx).set(0, 0, 3, Cplx::new(0.0, 2.0));
        let prof = intensity_profile_z(&f);
        assert_eq!(prof.len(), 5);
        assert_eq!(prof[3], 4.0);
        assert!(prof
            .iter()
            .enumerate()
            .all(|(z, &v)| v == if z == 3 { 4.0 } else { 0.0 }));
    }
}
