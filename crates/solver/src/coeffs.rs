//! Assembly of the 28 coefficient arrays from the physics.
//!
//! Starting from the time-discretized THIIM equations (paper Eqs. 3-5),
//! solving each for the new field value yields per-cell complex factors:
//!
//! H update (Eq. 4), with PML-matched magnetic conductivity `sigma*`:
//! ```text
//! H^{n+1/2} (e^{iwt/2} + t s*/mu) = e^{-iwt/2} H^{n-1/2} - (t/mu) curl E + t S_H
//!   => tH = e^{-iwt/2} / D_H,  cH = (t/mu) / D_H,   D_H = e^{iwt/2} + t s*/mu
//! ```
//!
//! E update, regular iteration (Eq. 3), for `Re(eps) > 0`:
//! ```text
//! E^{n+1} (e^{iwt} + t s/eps) = E^n + (t/eps) e^{iwt/2} curl H + t S_E
//!   => tE = 1 / D_E,  cE = (t/eps) e^{iwt/2} / D_E,  D_E = e^{iwt} + t s/eps
//! ```
//!
//! E update, *back iteration* (Eq. 5), for `Re(eps) < 0` (silver):
//! ```text
//! e^{iwt} E^n - E^{n+1} = (t/eps) e^{iwt/2} curl H - (t s/eps) E^{n+1} + t S_E
//!   => tE = -e^{iwt} / D_B,  cE = (t/eps) e^{iwt/2} / D_B,  D_B = t s/eps - 1
//! ```
//!
//! With `s >= 0` and `eps < 0`, `|D_B| >= 1` so `|tE| <= 1`: the back
//! iteration is unconditionally stable where the regular one diverges —
//! the reason THIIM can handle metallic back contacts directly. The
//! kernels consume these factors verbatim (Listings 1-2 shape), so the
//! physics lives entirely in this builder.

use crate::fit::average_eps;
use crate::geometry::Scene;
use crate::pml::PmlSpec;
use crate::source::SourceSpec;
use em_field::{Axis, Component, Cplx, State};

/// Physics parameters for coefficient assembly.
#[derive(Clone, Debug)]
pub struct CoeffOptions {
    /// Vacuum wavelength in grid cells (sets omega = 2*pi/lambda, c = 1).
    pub lambda_cells: f64,
    /// Vacuum wavelength in nm (material table lookup only).
    pub lambda_nm: f64,
    /// CFL safety factor; time step is `cfl / sqrt(3)` (3-D Yee limit).
    pub cfl: f64,
    pub pml: Option<PmlSpec>,
    pub source: Option<SourceSpec>,
    /// Test hook: disable the back iteration to demonstrate the
    /// instability of the regular iteration on negative permittivity.
    pub force_forward_iteration: bool,
}

impl CoeffOptions {
    pub fn new(lambda_cells: f64, lambda_nm: f64) -> Self {
        CoeffOptions {
            lambda_cells,
            lambda_nm,
            cfl: 0.95,
            pml: None,
            source: None,
            force_forward_iteration: false,
        }
    }

    pub fn omega(&self) -> f64 {
        std::f64::consts::TAU / self.lambda_cells
    }

    pub fn tau(&self) -> f64 {
        self.cfl / 3.0f64.sqrt()
    }
}

/// Fill `state.coeffs` (and the source arrays) for `scene`.
/// Returns the number of back-iteration cells (Re(eps) < 0).
pub fn build_coefficients(state: &mut State, scene: &Scene, opt: &CoeffOptions) -> usize {
    let dims = state.dims();
    let omega = opt.omega();
    let tau = opt.tau();
    let eiwt = Cplx::cis(omega * tau);
    let eiwt2 = Cplx::cis(omega * tau / 2.0);
    let emiwt2 = Cplx::cis(-omega * tau / 2.0);
    let mut back_cells = 0usize;

    for z in 0..dims.nz {
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                let (er, ei) = average_eps(scene, opt.lambda_nm, x, y, z);
                let sigma_mat = omega * ei;
                let sigma_pml = opt.pml.map_or(0.0, |p| p.sigma_z(z, dims.nz));

                let mut is_back = false;
                for comp in Component::ALL {
                    // PML loss acts along the component's derivative axis;
                    // only z carries PML here.
                    let pml_here = if comp.deriv_axis() == Axis::Z {
                        sigma_pml
                    } else {
                        0.0
                    };
                    let (t, c) = match comp.field_kind() {
                        em_field::FieldKind::H => {
                            // Matched magnetic conductivity: sigma*/mu =
                            // sigma_pml/eps0 (normalized: both 1).
                            let d_h = eiwt2 + Cplx::real(tau * pml_here);
                            (emiwt2 / d_h, Cplx::real(tau) / d_h)
                        }
                        em_field::FieldKind::E => {
                            let sigma = sigma_mat + pml_here;
                            if er > 0.0 || opt.force_forward_iteration {
                                let d_e = eiwt + Cplx::real(tau * sigma / er);
                                (Cplx::ONE / d_e, (eiwt2 * (tau / er)) / d_e)
                            } else {
                                // Back iteration (Eq. 5).
                                is_back = true;
                                let d_b = Cplx::real(tau * sigma / er - 1.0);
                                (-eiwt / d_b, (eiwt2 * (tau / er)) / d_b)
                            }
                        }
                    };
                    let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                    state.coeffs.t_mut(comp).set(xi, yi, zi, t);
                    state.coeffs.c_mut(comp).set(xi, yi, zi, c);
                }
                if is_back {
                    back_cells += 1;
                }
            }
        }
    }

    if let Some(src) = &opt.source {
        apply_source(state, scene, opt, src);
    }
    back_cells
}

/// Install the time-harmonic plane-wave drive: a uniform source sheet at
/// `src.z_plane` in the chosen E polarization. The source slot of the
/// update equals `tau * S / D`, so the denominator of the host cell is
/// reproduced here.
fn apply_source(state: &mut State, scene: &Scene, opt: &CoeffOptions, src: &SourceSpec) {
    let dims = state.dims();
    let omega = opt.omega();
    let tau = opt.tau();
    let eiwt = Cplx::cis(omega * tau);
    let z = src.z_plane.min(dims.nz - 1);
    let arr = match src.polarization {
        Axis::X => em_field::SourceArray::SrcEx,
        Axis::Y => em_field::SourceArray::SrcEy,
        Axis::Z => panic!("plane-wave source must be transverse (X or Y)"),
    };
    for y in 0..dims.ny {
        for x in 0..dims.nx {
            let (er, ei) = average_eps(scene, opt.lambda_nm, x, y, z);
            let sigma = omega * ei + opt.pml.map_or(0.0, |p| p.sigma_z(z, dims.nz));
            let d = if er > 0.0 || opt.force_forward_iteration {
                eiwt + Cplx::real(tau * sigma / er)
            } else {
                Cplx::real(tau * sigma / er - 1.0)
            };
            let value = (src.amplitude * tau) / d;
            state
                .coeffs
                .src_mut(arr)
                .set(x as isize, y as isize, z as isize, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::Material;
    use em_field::GridDims;

    fn vacuum_state(n: usize) -> (State, Scene, CoeffOptions) {
        let state = State::zeros(GridDims::cubic(n));
        let scene = Scene::vacuum();
        let opt = CoeffOptions::new(12.0, 550.0);
        (state, scene, opt)
    }

    #[test]
    fn vacuum_coefficients_are_unit_modulus_transfer() {
        let (mut state, scene, opt) = vacuum_state(4);
        let back = build_coefficients(&mut state, &scene, &opt);
        assert_eq!(back, 0);
        for comp in Component::ALL {
            let t = state.coeffs.t(comp).get(1, 1, 1);
            assert!((t.abs() - 1.0).abs() < 1e-12, "{comp}: |t| = {}", t.abs());
            let c = state.coeffs.c(comp).get(1, 1, 1);
            assert!(
                (c.abs() - opt.tau()).abs() < 1e-12,
                "{comp}: |c| = {}",
                c.abs()
            );
        }
    }

    #[test]
    fn all_transfer_factors_are_stable() {
        // |t| <= 1 everywhere for any material mix, including silver.
        let mut scene = Scene::vacuum();
        let ag = scene.add_material(Material::silver());
        let asi = scene.add_material(Material::a_si());
        scene
            .layers
            .push(crate::geometry::Layer::flat(ag, 0.0, 3.0));
        scene
            .layers
            .push(crate::geometry::Layer::flat(asi, 3.0, 6.0));
        let mut state = State::zeros(GridDims::new(4, 4, 8));
        let mut opt = CoeffOptions::new(12.0, 550.0);
        opt.pml = Some(PmlSpec::new(2));
        let back = build_coefficients(&mut state, &scene, &opt);
        assert!(back > 0, "silver cells must use back iteration");
        for comp in Component::ALL {
            for (_, t) in state.coeffs.t(comp).iter_interior() {
                assert!(t.abs() <= 1.0 + 1e-9, "{comp}: |t| = {}", t.abs());
            }
        }
    }

    #[test]
    fn forward_iteration_on_silver_is_unstable() {
        // The defining contrast: forcing the regular iteration on
        // Re(eps) < 0 yields |t| > 1 (divergent mode).
        let scene = Scene::uniform(Material::silver());
        let mut state = State::zeros(GridDims::cubic(3));
        let mut opt = CoeffOptions::new(12.0, 550.0);
        opt.force_forward_iteration = true;
        build_coefficients(&mut state, &scene, &opt);
        let t = state.coeffs.t(Component::Exy).get(1, 1, 1);
        assert!(
            t.abs() > 1.0,
            "forward |t| = {} must exceed 1 on silver",
            t.abs()
        );
    }

    #[test]
    fn pml_cells_are_lossy_only_in_z_derivative_components() {
        let (mut state, scene, mut opt) = vacuum_state(8);
        opt.pml = Some(PmlSpec::new(3));
        build_coefficients(&mut state, &scene, &opt);
        // z-derivative component inside the PML: |t| < 1 (absorbing).
        let t_zderiv = state.coeffs.t(Component::Exy).get(4, 4, 0);
        assert!(t_zderiv.abs() < 0.999, "|t| = {}", t_zderiv.abs());
        // x-derivative component is untouched by z-PML.
        let t_xderiv = state.coeffs.t(Component::Ezy).get(4, 4, 0);
        assert!((t_xderiv.abs() - 1.0).abs() < 1e-12);
        // Interior cells untouched.
        let t_mid = state.coeffs.t(Component::Exy).get(4, 4, 4);
        assert!((t_mid.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn source_sheet_is_installed_at_the_plane() {
        let (mut state, scene, mut opt) = vacuum_state(6);
        opt.source = Some(SourceSpec {
            z_plane: 3,
            amplitude: Cplx::real(2.0),
            polarization: Axis::X,
        });
        build_coefficients(&mut state, &scene, &opt);
        let src = state.coeffs.src(em_field::SourceArray::SrcEx);
        assert!(src.get(2, 2, 3).abs() > 0.0);
        assert_eq!(src.get(2, 2, 2), Cplx::ZERO);
        assert_eq!(
            state.coeffs.src(em_field::SourceArray::SrcEy).get(2, 2, 3),
            Cplx::ZERO
        );
    }
}
