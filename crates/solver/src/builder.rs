//! Fluent construction of [`SolverConfig`] / [`ThiimSolver`].
//!
//! Every workload — the examples, the scenario library, the benches —
//! used to assemble a `SolverConfig` by hand, mutating `pml` and
//! `source` after construction. [`SolverBuilder`] is that setup code
//! extracted once: it produces exactly the `SolverConfig` the manual
//! path produced (same defaults, same field values), so solvers built
//! through it are bit-identical to the pre-builder ones.

use crate::geometry::Scene;
use crate::pml::PmlSpec;
use crate::solver::{SolverConfig, ThiimSolver};
use crate::source::SourceSpec;
use em_field::GridDims;

/// Builder for a THIIM problem description.
#[derive(Clone, Debug)]
pub struct SolverBuilder {
    config: SolverConfig,
}

impl SolverBuilder {
    /// Start from a grid: vacuum scene, 10-cell / 550 nm wavelength, the
    /// [`SolverConfig::new`] CFL default, no PML, no source.
    pub fn new(dims: GridDims) -> Self {
        SolverBuilder {
            config: SolverConfig::new(dims, Scene::vacuum(), 10.0, 550.0),
        }
    }

    /// Replace the scene.
    pub fn scene(mut self, scene: Scene) -> Self {
        self.config.scene = scene;
        self
    }

    /// Vacuum wavelength in cells (grid resolution) and nm (dispersion).
    pub fn wavelength(mut self, lambda_cells: f64, lambda_nm: f64) -> Self {
        self.config.lambda_cells = lambda_cells;
        self.config.lambda_nm = lambda_nm;
        self
    }

    /// CFL safety factor.
    pub fn cfl(mut self, cfl: f64) -> Self {
        self.config.cfl = cfl;
        self
    }

    /// Attach a PML description.
    pub fn pml(mut self, pml: PmlSpec) -> Self {
        self.config.pml = Some(pml);
        self
    }

    /// Default PML of the given thickness at both z ends.
    pub fn pml_thickness(self, thickness: usize) -> Self {
        self.pml(PmlSpec::new(thickness))
    }

    /// Attach a source description.
    pub fn source(mut self, source: SourceSpec) -> Self {
        self.config.source = Some(source);
        self
    }

    /// x-polarized unit-phase source sheet at one z plane.
    pub fn source_plane(self, z_plane: usize, amplitude: f64) -> Self {
        self.source(SourceSpec::x_polarized(z_plane, amplitude))
    }

    /// The assembled problem description.
    pub fn config(self) -> SolverConfig {
        self.config
    }

    /// Build the solver (assembles the 28 coefficient arrays).
    pub fn build(self) -> ThiimSolver {
        ThiimSolver::new(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Engine;

    #[test]
    fn builder_matches_manual_config() {
        let dims = GridDims::new(4, 4, 32);
        let scene = Scene::tandem_solar_cell(4, 4, 32);

        let mut manual = SolverConfig::new(dims, scene.clone(), 11.0, 550.0);
        manual.pml = Some(PmlSpec::new(6));
        manual.source = Some(SourceSpec::x_polarized(26, 1.0));

        let built = SolverBuilder::new(dims)
            .scene(scene)
            .wavelength(11.0, 550.0)
            .pml_thickness(6)
            .source_plane(26, 1.0)
            .config();

        assert_eq!(built.dims, manual.dims);
        assert_eq!(built.lambda_cells, manual.lambda_cells);
        assert_eq!(built.lambda_nm, manual.lambda_nm);
        assert_eq!(built.cfl, manual.cfl);
        assert_eq!(built.pml, manual.pml);
        assert_eq!(built.source, manual.source);
    }

    #[test]
    fn built_solver_is_bit_identical_to_manual_one() {
        let dims = GridDims::new(4, 4, 24);
        let mut manual_cfg = SolverConfig::new(dims, Scene::vacuum(), 8.0, 550.0);
        manual_cfg.pml = Some(PmlSpec::new(4));
        manual_cfg.source = Some(SourceSpec::x_polarized(18, 1.0));
        let mut manual = ThiimSolver::new(manual_cfg);

        let mut built = SolverBuilder::new(dims)
            .wavelength(8.0, 550.0)
            .pml_thickness(4)
            .source_plane(18, 1.0)
            .build();

        manual.step_n(&Engine::NaivePeriodicXY, 20).unwrap();
        built.step_n(&Engine::NaivePeriodicXY, 20).unwrap();
        assert!(manual.fields().bit_eq(built.fields()));
    }

    #[test]
    fn defaults_are_vacuum_without_boundary_machinery() {
        let cfg = SolverBuilder::new(GridDims::cubic(8)).config();
        assert_eq!(cfg.scene.materials.len(), 1);
        assert!(cfg.pml.is_none());
        assert!(cfg.source.is_none());
    }
}
