//! Optical material models.
//!
//! The production code takes measured refractive-index tables; those are
//! proprietary to the experiments, so this reproduction ships synthetic
//! tables with the correct qualitative structure (documented in
//! DESIGN.md): silver keeps `Re(eps) < 0` across the visible spectrum
//! (forcing the THIIM back-iteration), the silicon layers absorb blue
//! much more strongly than red, and the oxides are nearly lossless.
//!
//! Convention: complex permittivity is reported as `(eps_r, eps_i)` with
//! `eps_i >= 0` meaning absorption; the solver folds `eps_i` into an
//! equivalent conductivity `sigma = omega * eps_i`.

/// Index into a scene's material list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MaterialId(pub usize);

/// A (possibly dispersive) optical material.
#[derive(Clone, Debug, PartialEq)]
pub enum Material {
    /// Constant complex refractive index `n + ik`.
    Index { name: &'static str, n: f64, k: f64 },
    /// Tabulated `(wavelength_nm, n, k)`, linearly interpolated and
    /// clamped at the ends. Rows must be sorted by wavelength.
    Table {
        name: &'static str,
        rows: &'static [(f64, f64, f64)],
    },
    /// Drude metal: `eps(w) = eps_inf - wp^2 / (w^2 + i g w)` with the
    /// frequencies expressed in nm-equivalent vacuum wavelengths
    /// (`w = 2 pi c / lambda`, c in nm units).
    Drude {
        name: &'static str,
        eps_inf: f64,
        lambda_p_nm: f64,
        gamma_over_w_p: f64,
    },
    /// Drude–Lorentz fit: the Drude free-electron term plus a sum of
    /// bound-electron Lorentz oscillators, each given as
    /// `(f, lambda0_nm, gamma_over_w0)` — oscillator strength, resonance
    /// vacuum wavelength, and damping relative to the resonance
    /// frequency. `lambda_p_nm = 0.0` disables the Drude term (pure
    /// Lorentz dielectric, e.g. crystalline silicon).
    DrudeLorentz {
        name: &'static str,
        eps_inf: f64,
        lambda_p_nm: f64,
        gamma_over_w_p: f64,
        osc: &'static [(f64, f64, f64)],
    },
}

impl Material {
    pub fn name(&self) -> &'static str {
        match self {
            Material::Index { name, .. }
            | Material::Table { name, .. }
            | Material::Drude { name, .. }
            | Material::DrudeLorentz { name, .. } => name,
        }
    }

    /// Complex permittivity at vacuum wavelength `lambda_nm`, as
    /// `(eps_r, eps_i)` with `eps_i >= 0` for absorption.
    pub fn eps(&self, lambda_nm: f64) -> (f64, f64) {
        match self {
            Material::Index { n, k, .. } => nk_to_eps(*n, *k),
            Material::Table { rows, .. } => {
                let (n, k) = interp(rows, lambda_nm);
                nk_to_eps(n, k)
            }
            Material::Drude {
                eps_inf,
                lambda_p_nm,
                gamma_over_w_p,
                ..
            } => {
                // Work in units of the plasma frequency.
                let w = lambda_p_nm / lambda_nm; // omega / omega_p
                let g = gamma_over_w_p;
                // eps = eps_inf - 1 / (w^2 + i g w)
                let d = w * w * w * w + g * g * w * w;
                let re = eps_inf - (w * w) / d;
                let im = (g * w) / d;
                (re, im)
            }
            Material::DrudeLorentz {
                eps_inf,
                lambda_p_nm,
                gamma_over_w_p,
                osc,
                ..
            } => {
                let mut re = *eps_inf;
                let mut im = 0.0;
                if *lambda_p_nm > 0.0 {
                    let (dre, dim) = drude_term(*lambda_p_nm / lambda_nm, *gamma_over_w_p);
                    re -= dre;
                    im += dim;
                }
                for &(f, lambda0_nm, g) in osc.iter() {
                    // In units of the resonance frequency: u = w/w0 =
                    // lambda0/lambda, and
                    //   chi = f / (1 - u^2 - i g u)
                    //       = f (1 - u^2 + i g u) / ((1 - u^2)^2 + g^2 u^2).
                    let u = lambda0_nm / lambda_nm;
                    let d = (1.0 - u * u) * (1.0 - u * u) + g * g * u * u;
                    re += f * (1.0 - u * u) / d;
                    im += f * g * u / d;
                }
                (re, im)
            }
        }
    }

    // --- presets -----------------------------------------------------

    pub fn vacuum() -> Material {
        Material::Index {
            name: "vacuum",
            n: 1.0,
            k: 0.0,
        }
    }

    pub fn glass() -> Material {
        Material::Index {
            name: "glass",
            n: 1.5,
            k: 0.0,
        }
    }

    /// SiO2 nanoparticle material.
    pub fn silica() -> Material {
        Material::Index {
            name: "SiO2",
            n: 1.45,
            k: 0.0,
        }
    }

    /// Transparent conductive oxide (ZnO:Al-like).
    pub fn tco() -> Material {
        Material::Index {
            name: "TCO",
            n: 1.9,
            k: 0.02,
        }
    }

    /// Hydrogenated amorphous silicon absorber (top junction of Fig. 1).
    pub fn a_si() -> Material {
        Material::Table {
            name: "a-Si:H",
            rows: &[
                (400.0, 5.1, 2.1),
                (500.0, 4.8, 0.85),
                (600.0, 4.4, 0.25),
                (700.0, 4.0, 0.06),
                (800.0, 3.8, 0.01),
            ],
        }
    }

    /// Microcrystalline silicon absorber (bottom junction of Fig. 1).
    pub fn uc_si() -> Material {
        Material::Table {
            name: "uc-Si:H",
            rows: &[
                (400.0, 4.6, 1.4),
                (500.0, 4.2, 0.45),
                (600.0, 3.9, 0.10),
                (700.0, 3.7, 0.03),
                (800.0, 3.6, 0.012),
            ],
        }
    }

    /// Silver back reflector: Drude model with `Re(eps) < 0` throughout
    /// the visible (plasma wavelength ~138 nm, like real Ag).
    pub fn silver() -> Material {
        Material::Drude {
            name: "Ag",
            eps_inf: 3.7,
            lambda_p_nm: 138.0,
            gamma_over_w_p: 0.002,
        }
    }

    /// Gold: Drude background plus one interband Lorentz oscillator so
    /// the model reproduces gold's qualitative signature — `Re(eps) < 0`
    /// through the red/near-IR but strong interband absorption below
    /// ~500 nm (why gold looks yellow and is a poor blue mirror).
    pub fn gold() -> Material {
        Material::DrudeLorentz {
            name: "Au",
            eps_inf: 6.0,
            lambda_p_nm: 146.0,
            gamma_over_w_p: 0.004,
            osc: &[(1.2, 420.0, 0.3)],
        }
    }

    /// Crystalline silicon: a pure-Lorentz fit (no free carriers, so no
    /// Drude term) anchored by the UV interband resonance — gives the
    /// correct `eps_r ~ 14..18` across the visible with blue absorbing
    /// far more strongly than red.
    pub fn c_si() -> Material {
        Material::DrudeLorentz {
            name: "c-Si",
            eps_inf: 1.0,
            lambda_p_nm: 0.0,
            gamma_over_w_p: 0.0,
            osc: &[(10.5, 280.0, 0.08)],
        }
    }
}

fn nk_to_eps(n: f64, k: f64) -> (f64, f64) {
    // eps = (n - ik)^2 = n^2 - k^2 - 2ink -> (n^2 - k^2, 2nk)
    (n * n - k * k, 2.0 * n * k)
}

/// The free-electron susceptibility `1 / (w^2 + i g w)` in plasma-
/// frequency units, returned as `(re_to_subtract, im_to_add)`.
fn drude_term(w: f64, g: f64) -> (f64, f64) {
    let d = w * w * w * w + g * g * w * w;
    ((w * w) / d, (g * w) / d)
}

fn interp(rows: &[(f64, f64, f64)], lambda: f64) -> (f64, f64) {
    assert!(!rows.is_empty());
    if lambda <= rows[0].0 {
        return (rows[0].1, rows[0].2);
    }
    if lambda >= rows[rows.len() - 1].0 {
        let r = rows[rows.len() - 1];
        return (r.1, r.2);
    }
    for w in rows.windows(2) {
        let (l0, n0, k0) = w[0];
        let (l1, n1, k1) = w[1];
        if lambda <= l1 {
            let t = (lambda - l0) / (l1 - l0);
            return (n0 + t * (n1 - n0), k0 + t * (k1 - k0));
        }
    }
    unreachable!("sorted table covers the range");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vacuum_is_unity() {
        assert_eq!(Material::vacuum().eps(550.0), (1.0, 0.0));
    }

    #[test]
    fn silver_has_negative_real_permittivity_across_visible() {
        let ag = Material::silver();
        for lambda in [400.0, 500.0, 550.0, 600.0, 700.0, 800.0] {
            let (re, im) = ag.eps(lambda);
            assert!(re < 0.0, "Re(eps_Ag) at {lambda} nm = {re} must be < 0");
            assert!(im >= 0.0, "absorption must be non-negative");
        }
        // Magnitude grows toward the red, like real silver.
        assert!(ag.eps(800.0).0 < ag.eps(400.0).0);
    }

    #[test]
    fn silicon_absorbs_blue_more_than_red() {
        for m in [Material::a_si(), Material::uc_si()] {
            let blue = m.eps(420.0).1;
            let red = m.eps(700.0).1;
            assert!(blue > 10.0 * red, "{}: blue {blue} vs red {red}", m.name());
        }
    }

    #[test]
    fn table_interpolation_is_continuous_and_clamped() {
        let m = Material::a_si();
        let (n1, _) = match &m {
            Material::Table { rows, .. } => (rows[0].1, rows[0].2),
            _ => unreachable!(),
        };
        // Clamped below.
        let (e_lo, _) = m.eps(300.0);
        assert!((e_lo - (n1 * n1 - 2.1f64.powi(2))).abs() < 1e-9);
        // Midpoint between 500 and 600 rows.
        let (n_mid, k_mid) = interp(&[(500.0, 4.8, 0.85), (600.0, 4.4, 0.25)], 550.0);
        assert!((n_mid - 4.6).abs() < 1e-12);
        assert!((k_mid - 0.55).abs() < 1e-12);
    }

    #[test]
    fn gold_is_metallic_red_dielectric_blue() {
        let au = Material::gold();
        // Red/near-IR: free-electron response dominates, Re(eps) < 0.
        for lambda in [550.0, 600.0, 700.0, 800.0] {
            let (re, im) = au.eps(lambda);
            assert!(re < 0.0, "Re(eps_Au) at {lambda} nm = {re} must be < 0");
            assert!(im >= 0.0);
        }
        // Interband absorption makes gold much lossier in the blue than
        // silver — that's the whole point of the Lorentz term.
        let (_, au_blue) = au.eps(450.0);
        let (_, ag_blue) = Material::silver().eps(450.0);
        assert!(
            au_blue > 10.0 * ag_blue,
            "Au blue loss {au_blue} vs Ag {ag_blue}"
        );
    }

    #[test]
    fn c_si_is_a_high_index_dispersive_dielectric() {
        let si = Material::c_si();
        for lambda in [450.0, 550.0, 650.0, 750.0] {
            let (re, im) = si.eps(lambda);
            assert!(
                (10.0..25.0).contains(&re),
                "eps_r(c-Si) at {lambda} nm = {re}"
            );
            assert!(im >= 0.0);
        }
        // Normal dispersion: index falls toward the red.
        assert!(si.eps(450.0).0 > si.eps(750.0).0);
        // Absorption ordering: blue well above red (a single Lorentz
        // line gives ~3x between 450 and 700 nm).
        assert!(si.eps(450.0).1 > 2.5 * si.eps(700.0).1);
    }

    #[test]
    fn drude_lorentz_without_drude_term_is_finite_everywhere() {
        // lambda_p_nm = 0.0 must not divide by zero.
        let si = Material::c_si();
        for lambda in [200.0, 350.0, 550.0, 1000.0, 2000.0] {
            let (re, im) = si.eps(lambda);
            assert!(re.is_finite() && im.is_finite(), "at {lambda} nm");
        }
    }

    #[test]
    fn dielectric_eps_matches_nk_identity() {
        let m = Material::Index {
            name: "test",
            n: 2.0,
            k: 0.5,
        };
        let (re, im) = m.eps(500.0);
        assert_eq!(re, 4.0 - 0.25);
        assert_eq!(im, 2.0);
    }
}
