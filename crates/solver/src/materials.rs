//! Optical material models.
//!
//! The production code takes measured refractive-index tables; those are
//! proprietary to the experiments, so this reproduction ships synthetic
//! tables with the correct qualitative structure (documented in
//! DESIGN.md): silver keeps `Re(eps) < 0` across the visible spectrum
//! (forcing the THIIM back-iteration), the silicon layers absorb blue
//! much more strongly than red, and the oxides are nearly lossless.
//!
//! Convention: complex permittivity is reported as `(eps_r, eps_i)` with
//! `eps_i >= 0` meaning absorption; the solver folds `eps_i` into an
//! equivalent conductivity `sigma = omega * eps_i`.

/// Index into a scene's material list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MaterialId(pub usize);

/// A (possibly dispersive) optical material.
#[derive(Clone, Debug, PartialEq)]
pub enum Material {
    /// Constant complex refractive index `n + ik`.
    Index { name: &'static str, n: f64, k: f64 },
    /// Tabulated `(wavelength_nm, n, k)`, linearly interpolated and
    /// clamped at the ends. Rows must be sorted by wavelength.
    Table {
        name: &'static str,
        rows: &'static [(f64, f64, f64)],
    },
    /// Drude metal: `eps(w) = eps_inf - wp^2 / (w^2 + i g w)` with the
    /// frequencies expressed in nm-equivalent vacuum wavelengths
    /// (`w = 2 pi c / lambda`, c in nm units).
    Drude {
        name: &'static str,
        eps_inf: f64,
        lambda_p_nm: f64,
        gamma_over_w_p: f64,
    },
}

impl Material {
    pub fn name(&self) -> &'static str {
        match self {
            Material::Index { name, .. }
            | Material::Table { name, .. }
            | Material::Drude { name, .. } => name,
        }
    }

    /// Complex permittivity at vacuum wavelength `lambda_nm`, as
    /// `(eps_r, eps_i)` with `eps_i >= 0` for absorption.
    pub fn eps(&self, lambda_nm: f64) -> (f64, f64) {
        match self {
            Material::Index { n, k, .. } => nk_to_eps(*n, *k),
            Material::Table { rows, .. } => {
                let (n, k) = interp(rows, lambda_nm);
                nk_to_eps(n, k)
            }
            Material::Drude {
                eps_inf,
                lambda_p_nm,
                gamma_over_w_p,
                ..
            } => {
                // Work in units of the plasma frequency.
                let w = lambda_p_nm / lambda_nm; // omega / omega_p
                let g = gamma_over_w_p;
                // eps = eps_inf - 1 / (w^2 + i g w)
                let d = w * w * w * w + g * g * w * w;
                let re = eps_inf - (w * w) / d;
                let im = (g * w) / d;
                (re, im)
            }
        }
    }

    // --- presets -----------------------------------------------------

    pub fn vacuum() -> Material {
        Material::Index {
            name: "vacuum",
            n: 1.0,
            k: 0.0,
        }
    }

    pub fn glass() -> Material {
        Material::Index {
            name: "glass",
            n: 1.5,
            k: 0.0,
        }
    }

    /// SiO2 nanoparticle material.
    pub fn silica() -> Material {
        Material::Index {
            name: "SiO2",
            n: 1.45,
            k: 0.0,
        }
    }

    /// Transparent conductive oxide (ZnO:Al-like).
    pub fn tco() -> Material {
        Material::Index {
            name: "TCO",
            n: 1.9,
            k: 0.02,
        }
    }

    /// Hydrogenated amorphous silicon absorber (top junction of Fig. 1).
    pub fn a_si() -> Material {
        Material::Table {
            name: "a-Si:H",
            rows: &[
                (400.0, 5.1, 2.1),
                (500.0, 4.8, 0.85),
                (600.0, 4.4, 0.25),
                (700.0, 4.0, 0.06),
                (800.0, 3.8, 0.01),
            ],
        }
    }

    /// Microcrystalline silicon absorber (bottom junction of Fig. 1).
    pub fn uc_si() -> Material {
        Material::Table {
            name: "uc-Si:H",
            rows: &[
                (400.0, 4.6, 1.4),
                (500.0, 4.2, 0.45),
                (600.0, 3.9, 0.10),
                (700.0, 3.7, 0.03),
                (800.0, 3.6, 0.012),
            ],
        }
    }

    /// Silver back reflector: Drude model with `Re(eps) < 0` throughout
    /// the visible (plasma wavelength ~138 nm, like real Ag).
    pub fn silver() -> Material {
        Material::Drude {
            name: "Ag",
            eps_inf: 3.7,
            lambda_p_nm: 138.0,
            gamma_over_w_p: 0.002,
        }
    }
}

fn nk_to_eps(n: f64, k: f64) -> (f64, f64) {
    // eps = (n - ik)^2 = n^2 - k^2 - 2ink -> (n^2 - k^2, 2nk)
    (n * n - k * k, 2.0 * n * k)
}

fn interp(rows: &[(f64, f64, f64)], lambda: f64) -> (f64, f64) {
    assert!(!rows.is_empty());
    if lambda <= rows[0].0 {
        return (rows[0].1, rows[0].2);
    }
    if lambda >= rows[rows.len() - 1].0 {
        let r = rows[rows.len() - 1];
        return (r.1, r.2);
    }
    for w in rows.windows(2) {
        let (l0, n0, k0) = w[0];
        let (l1, n1, k1) = w[1];
        if lambda <= l1 {
            let t = (lambda - l0) / (l1 - l0);
            return (n0 + t * (n1 - n0), k0 + t * (k1 - k0));
        }
    }
    unreachable!("sorted table covers the range");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vacuum_is_unity() {
        assert_eq!(Material::vacuum().eps(550.0), (1.0, 0.0));
    }

    #[test]
    fn silver_has_negative_real_permittivity_across_visible() {
        let ag = Material::silver();
        for lambda in [400.0, 500.0, 550.0, 600.0, 700.0, 800.0] {
            let (re, im) = ag.eps(lambda);
            assert!(re < 0.0, "Re(eps_Ag) at {lambda} nm = {re} must be < 0");
            assert!(im >= 0.0, "absorption must be non-negative");
        }
        // Magnitude grows toward the red, like real silver.
        assert!(ag.eps(800.0).0 < ag.eps(400.0).0);
    }

    #[test]
    fn silicon_absorbs_blue_more_than_red() {
        for m in [Material::a_si(), Material::uc_si()] {
            let blue = m.eps(420.0).1;
            let red = m.eps(700.0).1;
            assert!(blue > 10.0 * red, "{}: blue {blue} vs red {red}", m.name());
        }
    }

    #[test]
    fn table_interpolation_is_continuous_and_clamped() {
        let m = Material::a_si();
        let (n1, _) = match &m {
            Material::Table { rows, .. } => (rows[0].1, rows[0].2),
            _ => unreachable!(),
        };
        // Clamped below.
        let (e_lo, _) = m.eps(300.0);
        assert!((e_lo - (n1 * n1 - 2.1f64.powi(2))).abs() < 1e-9);
        // Midpoint between 500 and 600 rows.
        let (n_mid, k_mid) = interp(&[(500.0, 4.8, 0.85), (600.0, 4.4, 0.25)], 550.0);
        assert!((n_mid - 4.6).abs() < 1e-12);
        assert!((k_mid - 0.55).abs() < 1e-12);
    }

    #[test]
    fn dielectric_eps_matches_nk_identity() {
        let m = Material::Index {
            name: "test",
            n: 2.0,
            k: 0.5,
        };
        let (re, im) = m.eps(500.0);
        assert_eq!(re, 4.0 - 0.25);
        assert_eq!(im, 2.0);
    }
}
