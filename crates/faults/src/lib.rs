//! # em-faults — deterministic fault injection for the job service
//!
//! Chaos testing is only useful when a failure reproduces: this crate
//! draws every fault decision from a seeded [`GenRng`] stream keyed by
//! `(plan seed, site, ident)`, so the same plan against the same
//! request sequence injects byte-for-byte the same faults. There is no
//! global mutable state and no wall clock — an injector is a pure
//! function of its plan plus per-site hit counters.
//!
//! A [`FaultPlan`] is parsed from a compact `key=value` string (the
//! `mwd serve --chaos <plan>` argument and the chaos CI job use the
//! same format):
//!
//! ```text
//! seed=42,panic=0.05,slow=0.1:250,disk-error=0.05,truncate=0.05,bit-flip=0.05,conn-drop=0.1
//! ```
//!
//! Sites and the seams they are injected through:
//!
//! - `panic` / `slow` — the scheduler's solve runner: the worker
//!   panics (exercising `catch_unwind` → `failed`) or sleeps the given
//!   milliseconds before solving (wedging a worker to exercise
//!   deadlines and drain);
//! - `disk-error` / `truncate` / `bit-flip` — the result store's write
//!   path: the write reports an injected I/O error, or the on-disk
//!   artifact is truncated / bit-flipped *after* the integrity footer
//!   is computed (so a later read must quarantine it, never serve it);
//! - `conn-drop` — the HTTP response path: the connection is closed
//!   after a partial write (clients see a torn response and retry).
//!
//! Every decision is counted, so the daemon can publish how many
//! faults actually fired (`/metrics`) and the chaos suite can assert
//! the plan was exercised at all.

use em_scenarios::gen::GenRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// What to do to one solve call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveFault {
    /// Run normally.
    None,
    /// Panic inside the worker (must be caught, job → `failed`).
    Panic,
    /// Sleep this many milliseconds before solving.
    SlowMs(u64),
}

/// What to do to one store write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// Write normally.
    None,
    /// Fail the write with an injected I/O error.
    Error,
    /// Let the write land, then truncate the on-disk file.
    Truncate,
    /// Let the write land, then flip one bit of the on-disk file.
    BitFlip,
}

/// What to do to one HTTP response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnFault {
    /// Write normally.
    None,
    /// Close the socket after a partial write.
    DropMid,
}

/// A parsed chaos plan: per-site probabilities plus the stream seed.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for every decision stream; two runs of the same plan
    /// against the same request sequence inject identical faults.
    pub seed: u64,
    /// Probability a solve panics.
    pub panic_p: f64,
    /// Probability a solve is delayed, and by how long.
    pub slow_p: f64,
    pub slow_ms: u64,
    /// Probability a store write errors out.
    pub disk_error_p: f64,
    /// Probability a landed artifact is truncated on disk.
    pub truncate_p: f64,
    /// Probability a landed artifact gets one bit flipped on disk.
    pub bit_flip_p: f64,
    /// Probability a response write is dropped mid-stream.
    pub conn_drop_p: f64,
}

impl Default for FaultPlan {
    /// All probabilities zero: an injector over the default plan is a
    /// no-op (every site draws `None`).
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            panic_p: 0.0,
            slow_p: 0.0,
            slow_ms: 0,
            disk_error_p: 0.0,
            truncate_p: 0.0,
            bit_flip_p: 0.0,
            conn_drop_p: 0.0,
        }
    }
}

fn parse_prob(key: &str, v: &str) -> Result<f64, String> {
    let p: f64 = v
        .parse()
        .map_err(|_| format!("chaos plan: `{key}={v}` is not a number"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("chaos plan: `{key}={v}` must be in [0, 1]"));
    }
    Ok(p)
}

impl FaultPlan {
    /// Parse the compact `key=value,...` form. Unknown keys are
    /// rejected — a typo silently disabling a fault would defeat the
    /// point of a chaos gate.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos plan: `{part}` is not key=value"))?;
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("chaos plan: `seed={value}` is not a u64"))?;
                }
                "panic" => plan.panic_p = parse_prob(key, value)?,
                "slow" => {
                    let (p, ms) = value.split_once(':').ok_or_else(|| {
                        format!("chaos plan: `slow={value}` must be `slow=prob:millis`")
                    })?;
                    plan.slow_p = parse_prob(key, p)?;
                    plan.slow_ms = ms.parse().map_err(|_| {
                        format!("chaos plan: `slow={value}` has non-integer millis")
                    })?;
                }
                "disk-error" => plan.disk_error_p = parse_prob(key, value)?,
                "truncate" => plan.truncate_p = parse_prob(key, value)?,
                "bit-flip" => plan.bit_flip_p = parse_prob(key, value)?,
                "conn-drop" => plan.conn_drop_p = parse_prob(key, value)?,
                _ => return Err(format!("chaos plan: unknown key `{key}`")),
            }
        }
        Ok(plan)
    }

    /// Canonical compact form (round-trips through [`parse`](Self::parse)).
    pub fn to_compact(&self) -> String {
        format!(
            "seed={},panic={},slow={}:{},disk-error={},truncate={},bit-flip={},conn-drop={}",
            self.seed,
            self.panic_p,
            self.slow_p,
            self.slow_ms,
            self.disk_error_p,
            self.truncate_p,
            self.bit_flip_p,
            self.conn_drop_p
        )
    }
}

/// How many faults each site actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    pub panics: u64,
    pub slows: u64,
    pub disk_errors: u64,
    pub truncates: u64,
    pub bit_flips: u64,
    pub conn_drops: u64,
}

impl FaultCounts {
    pub fn total(&self) -> u64 {
        self.panics
            + self.slows
            + self.disk_errors
            + self.truncates
            + self.bit_flips
            + self.conn_drops
    }
}

/// Deterministic fault decisions over one [`FaultPlan`].
///
/// Each decision derives a private [`GenRng`] from
/// `(site, ident, seed)`, so the answer depends only on the plan and
/// the identity of the thing being faulted — the same job key always
/// draws the same solve fault, independent of worker interleaving.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    panics: AtomicU64,
    slows: AtomicU64,
    disk_errors: AtomicU64,
    truncates: AtomicU64,
    bit_flips: AtomicU64,
    conn_drops: AtomicU64,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            ..FaultInjector::default()
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn rng(&self, site: &str, ident: &str) -> GenRng {
        GenRng::for_family(&format!("{site}\u{1e}{ident}"), self.plan.seed)
    }

    /// Decide the fate of one solve, keyed by the job's identity
    /// (store key). Counts the injection when a fault fires.
    pub fn solve_fault(&self, ident: &str) -> SolveFault {
        let mut rng = self.rng("solve", ident);
        // One draw per sub-site, in a fixed order, so raising one
        // probability never re-shuffles the other's decisions.
        let panic = rng.chance(self.plan.panic_p);
        let slow = rng.chance(self.plan.slow_p);
        if panic {
            self.panics.fetch_add(1, Ordering::Relaxed);
            SolveFault::Panic
        } else if slow {
            self.slows.fetch_add(1, Ordering::Relaxed);
            SolveFault::SlowMs(self.plan.slow_ms)
        } else {
            SolveFault::None
        }
    }

    /// Decide the fate of one store write, keyed by the artifact key.
    pub fn disk_fault(&self, ident: &str) -> DiskFault {
        let mut rng = self.rng("disk", ident);
        let error = rng.chance(self.plan.disk_error_p);
        let truncate = rng.chance(self.plan.truncate_p);
        let flip = rng.chance(self.plan.bit_flip_p);
        if error {
            self.disk_errors.fetch_add(1, Ordering::Relaxed);
            DiskFault::Error
        } else if truncate {
            self.truncates.fetch_add(1, Ordering::Relaxed);
            DiskFault::Truncate
        } else if flip {
            self.bit_flips.fetch_add(1, Ordering::Relaxed);
            DiskFault::BitFlip
        } else {
            DiskFault::None
        }
    }

    /// Decide the fate of one HTTP response write. The caller supplies
    /// the ident (typically its request ordinal), so the same request
    /// sequence drops the same responses.
    pub fn conn_fault(&self, ident: &str) -> ConnFault {
        let mut rng = self.rng("conn", ident);
        if rng.chance(self.plan.conn_drop_p) {
            self.conn_drops.fetch_add(1, Ordering::Relaxed);
            ConnFault::DropMid
        } else {
            ConnFault::None
        }
    }

    /// Deterministic truncation point for a file of `len` bytes:
    /// always strictly shorter (at least one byte is lost), never
    /// empty unless the file was.
    pub fn truncate_len(&self, len: usize, ident: &str) -> usize {
        if len == 0 {
            return 0;
        }
        let mut rng = self.rng("truncate-len", ident);
        rng.range_usize(0, len - 1)
    }

    /// Flip one deterministic bit of `bytes` in place.
    pub fn flip_bit(&self, bytes: &mut [u8], ident: &str) {
        if bytes.is_empty() {
            return;
        }
        let mut rng = self.rng("flip-bit", ident);
        let at = rng.range_usize(0, bytes.len() - 1);
        let bit = rng.range_usize(0, 7) as u32;
        bytes[at] ^= 1u8 << bit;
    }

    /// Snapshot of how many faults each site injected so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            panics: self.panics.load(Ordering::Relaxed),
            slows: self.slows.load(Ordering::Relaxed),
            disk_errors: self.disk_errors.load(Ordering::Relaxed),
            truncates: self.truncates.load(Ordering::Relaxed),
            bit_flips: self.bit_flips.load(Ordering::Relaxed),
            conn_drops: self.conn_drops.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parses_the_full_compact_form() {
        let p =
            FaultPlan::parse("seed=42,panic=0.1,slow=0.2:1500,disk-error=0.3,truncate=0.4,bit-flip=0.5,conn-drop=0.6")
                .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.panic_p, 0.1);
        assert_eq!(p.slow_p, 0.2);
        assert_eq!(p.slow_ms, 1500);
        assert_eq!(p.disk_error_p, 0.3);
        assert_eq!(p.truncate_p, 0.4);
        assert_eq!(p.bit_flip_p, 0.5);
        assert_eq!(p.conn_drop_p, 0.6);
        assert_eq!(FaultPlan::parse(&p.to_compact()).unwrap(), p);
    }

    #[test]
    fn plan_rejects_malformed_input() {
        for bad in [
            "wat=1",
            "panic=nope",
            "panic=1.5",
            "panic=-0.1",
            "slow=0.5",
            "slow=0.5:abc",
            "seed=abc",
            "panic",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
        // Empty plan and stray commas are fine (all-zero probabilities).
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert_eq!(FaultPlan::parse(" , ,").unwrap(), FaultPlan::default());
    }

    #[test]
    fn decisions_are_deterministic_per_ident() {
        let plan =
            FaultPlan::parse("seed=7,panic=0.3,slow=0.3:50,disk-error=0.3,conn-drop=0.5").unwrap();
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for i in 0..200 {
            let id = format!("job-{i}");
            assert_eq!(a.solve_fault(&id), b.solve_fault(&id), "{id}");
            assert_eq!(a.disk_fault(&id), b.disk_fault(&id), "{id}");
            assert_eq!(a.conn_fault(&id), b.conn_fault(&id), "{id}");
        }
        assert_eq!(a.counts(), b.counts());
        assert!(
            a.counts().total() > 0,
            "a 30%-ish plan fires over 200 draws"
        );
    }

    #[test]
    fn zero_plan_never_fires_and_full_plan_always_fires() {
        let off = FaultInjector::new(FaultPlan::default());
        let on = FaultInjector::new(FaultPlan::parse("panic=1,disk-error=1,conn-drop=1").unwrap());
        for i in 0..50 {
            let id = format!("x{i}");
            assert_eq!(off.solve_fault(&id), SolveFault::None);
            assert_eq!(off.disk_fault(&id), DiskFault::None);
            assert_eq!(off.conn_fault(&id), ConnFault::None);
            assert_eq!(on.solve_fault(&id), SolveFault::Panic);
            assert_eq!(on.disk_fault(&id), DiskFault::Error);
            assert_eq!(on.conn_fault(&id), ConnFault::DropMid);
        }
        assert_eq!(off.counts().total(), 0);
        assert_eq!(on.counts().panics, 50);
    }

    #[test]
    fn different_seeds_draw_different_decision_sets() {
        let a = FaultInjector::new(FaultPlan::parse("seed=1,panic=0.5").unwrap());
        let b = FaultInjector::new(FaultPlan::parse("seed=2,panic=0.5").unwrap());
        let mut differs = false;
        for i in 0..100 {
            let id = format!("k{i}");
            if a.solve_fault(&id) != b.solve_fault(&id) {
                differs = true;
            }
        }
        assert!(differs, "two seeds should not agree on all 100 draws");
    }

    #[test]
    fn corruption_helpers_are_deterministic_and_in_bounds() {
        let inj = FaultInjector::new(FaultPlan::parse("seed=9").unwrap());
        let n = inj.truncate_len(100, "k");
        assert_eq!(n, inj.truncate_len(100, "k"));
        assert!(n < 100, "truncation must lose at least one byte");
        assert_eq!(inj.truncate_len(0, "k"), 0);

        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        inj.flip_bit(&mut a, "k");
        inj.flip_bit(&mut b, "k");
        assert_eq!(a, b, "same ident flips the same bit");
        assert_eq!(a.iter().map(|x| x.count_ones()).sum::<u32>(), 1);
        let mut empty: Vec<u8> = vec![];
        inj.flip_bit(&mut empty, "k"); // no panic on empty
    }

    #[test]
    fn slow_fault_carries_the_plan_millis() {
        let inj = FaultInjector::new(FaultPlan::parse("slow=1:250").unwrap());
        assert_eq!(inj.solve_fault("any"), SolveFault::SlowMs(250));
        assert_eq!(inj.counts().slows, 1);
    }
}
