//! Minimal, API-compatible stand-in for the `proptest` crate.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! exactly the surface its property tests use: the [`proptest!`] macro with
//! an optional `#![proptest_config(..)]` inner attribute, `in`-range
//! strategies over the primitive integer and float types, `prop_assert!` /
//! `prop_assert_eq!`, and [`TestCaseError`]. Sampling is driven by a
//! splitmix64 generator seeded deterministically from the test name, so
//! every run explores the same cases and failures are reproducible. There
//! is no shrinking: a failing case panics with the drawn values instead.
//!
//! To build against the real crate, point the `proptest` entry of
//! `[workspace.dependencies]` back at the registry; the test sources need
//! no edits.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Mirror of `proptest::test_runner::Config` — only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Mirror of `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail<T: fmt::Display>(reason: T) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    pub fn reject<T: fmt::Display>(reason: T) -> Self {
        TestCaseError::Reject(reason.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 stream used to draw case inputs.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The subset of `proptest::strategy::Strategy` the tests rely on: a value
/// source sampled once per case. Implemented for primitive ranges.
pub trait Strategy {
    type Value: fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add((rng.next_u64() as u128) % width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if width == 0 {
                    rng.next_u64() as $t
                } else {
                    (lo as u128).wrapping_add((rng.next_u64() as u128) % width) as $t
                }
            }
        }
    )+};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )+};
}

float_range_strategy!(f64, f32);

/// A strategy that always yields the same value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Drives one `proptest!`-generated test: draws `cfg.cases` input tuples
/// from a name-seeded stream and panics on the first failing case.
pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
    }
    let mut rng = TestRng::seeded(seed);
    for i in 0..cfg.cases {
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "proptest `{name}` failed at case {i}/{}: {reason}",
                    cfg.cases
                )
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__prop_l, __prop_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__prop_l == *__prop_r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), __prop_l, __prop_r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__prop_l, __prop_r) = (&$left, &$right);
        $crate::prop_assert!(*__prop_l == *__prop_r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__prop_l, __prop_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__prop_l != *__prop_r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __prop_l
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_cases(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3usize..17,
            b in 0u64..u64::MAX,
            x in -2.0f64..2.0,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < u64::MAX);
            prop_assert!((-2.0..2.0).contains(&x), "x out of range: {x}");
        }

        #[test]
        fn question_mark_propagates(n in 1usize..10) {
            let v: Result<usize, String> = Ok(n);
            let n2 = v.map_err(TestCaseError::fail)?;
            prop_assert_eq!(n, n2);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = super::TestRng::seeded(42);
        let mut b = super::TestRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics_with_reason() {
        super::run_cases(&ProptestConfig::with_cases(4), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
