//! Minimal, API-compatible stand-in for the `criterion` crate.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! the slice of Criterion's API that the seven bench targets in
//! `crates/bench/benches/` use: `criterion_group!`/`criterion_main!`,
//! benchmark groups with throughput and sample-size hints, and the
//! `iter`/`iter_batched`/`iter_custom` timing loops. Measurements are real
//! (wall-clock medians over a short, time-boxed run) but intentionally
//! lightweight: no warm-up analysis, outlier rejection, or HTML reports.
//!
//! To build against the real crate, point the `criterion` entry of
//! `[workspace.dependencies]` back at the registry; the bench sources need
//! no edits.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration batch sizing hint (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Work-per-iteration hint used to report rates alongside times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Two-part benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to every benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }

    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }
}

fn format_time(t: f64) -> String {
    if t < 1e-6 {
        format!("{:8.2} ns", t * 1e9)
    } else if t < 1e-3 {
        format!("{:8.2} µs", t * 1e6)
    } else if t < 1.0 {
        format!("{:8.2} ms", t * 1e3)
    } else {
        format!("{t:8.2} s ")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibrate: one iteration to size the measurement run, then grow the
    // iteration count until the routine has run for ~20 ms or 20 samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64().max(1e-9);
    let budget = 0.02f64;
    let iters = ((budget / per_iter) as u64).clamp(1, 20);
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:10.2} Melem/s", n as f64 / mean / 1e6),
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
            format!("  {:10.2} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("bench: {id:<48} {}{rate}", format_time(mean));
}

/// Shim of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<ID, F>(&mut self, id: ID, f: F) -> &mut Self
    where
        ID: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.throughput, f);
        self
    }

    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: Into<BenchmarkId>,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Shim of the `criterion::Criterion` benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, None, f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_loops_run_and_record() {
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 3);

        let mut setups = 0u64;
        b.iter_batched(|| setups += 1, |_| (), BatchSize::LargeInput);
        assert_eq!(setups, 3);

        b.iter_custom(Duration::from_nanos);
        assert_eq!(b.elapsed, Duration::from_nanos(3));
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("naive", 16).id, "naive/16");
        assert_eq!(BenchmarkId::from_parameter("Hyx").id, "Hyx");
        assert_eq!(BenchmarkId::from("free").id, "free");
    }

    #[test]
    fn groups_execute_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(1)).sample_size(10);
            g.bench_function("f", |b| b.iter(|| ran = true));
            g.finish();
        }
        assert!(ran);
    }
}
