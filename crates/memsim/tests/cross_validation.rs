//! Cross-validation of the row-granularity simulator against the
//! line-granularity set-associative model: on identical traversals the
//! two must agree on the *ordering* of code balances across engines and
//! parameters — the property every figure relies on.

use em_field::{Component, GridDims};
use mem_sim::assoc::SetAssocCache;
use mem_sim::{mwd_trace, naive_trace, ArrayId, RowCacheSim, Workload};
use mwd_core::{DiamondWidth, TilePlan, WavefrontSpec};

/// Line-granularity replay of the naive traversal: every row access
/// touches its `nx*16/64` lines.
fn naive_lines(cache: &mut SetAssocCache, dims: GridDims, steps: usize) {
    let lines_per_row = (dims.nx * 16).div_ceil(64) as u64;
    let row_base = |a: ArrayId, y: usize, z: usize| -> u64 {
        ((a.0 as u64) << 40) + ((z * dims.ny + y) as u64) * lines_per_row
    };
    let touch = |c: &mut SetAssocCache, a: ArrayId, y: usize, z: usize, w: bool| {
        let b = row_base(a, y, z);
        for l in 0..lines_per_row {
            c.access(b + l, w);
        }
    };
    for _ in 0..steps {
        for kind in [em_field::FieldKind::H, em_field::FieldKind::E] {
            for comp in Component::of(kind) {
                for z in 0..dims.nz {
                    for y in 0..dims.ny {
                        touch(cache, ArrayId::coeff_t(comp), y, z, false);
                        touch(cache, ArrayId::coeff_c(comp), y, z, false);
                        if let Some(s) = comp.source_array() {
                            touch(cache, ArrayId::src(s), y, z, false);
                        }
                        let [s1, s2] = comp.source_splits();
                        touch(cache, ArrayId::field(s1), y, z, false);
                        touch(cache, ArrayId::field(s2), y, z, false);
                        let d = comp.offset_dir();
                        match comp.deriv_axis() {
                            em_field::Axis::X => {}
                            em_field::Axis::Y => {
                                let yn = y as isize + d;
                                if yn >= 0 && (yn as usize) < dims.ny {
                                    touch(cache, ArrayId::field(s1), yn as usize, z, false);
                                    touch(cache, ArrayId::field(s2), yn as usize, z, false);
                                }
                            }
                            em_field::Axis::Z => {
                                let zn = z as isize + d;
                                if zn >= 0 && (zn as usize) < dims.nz {
                                    touch(cache, ArrayId::field(s1), y, zn as usize, false);
                                    touch(cache, ArrayId::field(s2), y, zn as usize, false);
                                }
                            }
                        }
                        touch(cache, ArrayId::field(comp), y, z, true);
                    }
                }
            }
        }
    }
}

#[test]
fn row_and_line_models_agree_on_naive_traffic() {
    // Same capacity, same traversal: the two models' memory traffic must
    // agree closely (row granularity merges the lines of one row, which
    // the line model touches back to back — same reuse distances).
    let dims = GridDims::new(16, 24, 24);
    let steps = 2;
    // 128 rows of 4 lines each = 512 lines = 32 sets x 16 ways
    // (set count must be a power of two).
    let cache_rows = 128;
    let row_bytes = dims.row_bytes();
    let lines_per_row = (dims.nx * 16) / 64;

    let mut rows = RowCacheSim::new(cache_rows * row_bytes, row_bytes);
    naive_trace(&mut rows, Workload { dims, steps }, 1);
    rows.flush();

    let mut lines = SetAssocCache::new(cache_rows * lines_per_row, 16);
    naive_lines(&mut lines, dims, steps);
    lines.flush();

    let row_traffic = rows.mem.total();
    let line_traffic = lines.traffic_lines() * 64;
    let ratio = line_traffic as f64 / row_traffic as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "models disagree: rows {row_traffic} vs lines {line_traffic} (ratio {ratio})"
    );
}

#[test]
fn engine_ordering_is_model_independent() {
    // MWD < naive in traffic, under both cache models.
    let dims = GridDims::new(16, 32, 24);
    let steps = 6;
    let cache_rows = 1200;
    let row_bytes = dims.row_bytes();

    let mut naive = RowCacheSim::new(cache_rows * row_bytes, row_bytes);
    naive_trace(&mut naive, Workload { dims, steps }, 1);
    naive.flush();

    let plan = TilePlan::build(DiamondWidth::new(8).unwrap(), dims.ny, steps);
    let wf = WavefrontSpec::new(1).unwrap();
    let mut mwd = RowCacheSim::new(cache_rows * row_bytes, row_bytes);
    mwd_trace(&mut mwd, &plan, wf, dims, 1);
    mwd.flush();

    assert!(
        mwd.mem.total() * 2 < naive.mem.total(),
        "temporal blocking must at least halve traffic: {} vs {}",
        mwd.mem.total(),
        naive.mem.total()
    );
}

#[test]
fn capacity_monotonicity() {
    // More cache never means more traffic, in either model.
    let dims = GridDims::new(16, 24, 20);
    let w = Workload { dims, steps: 2 };
    let row_bytes = dims.row_bytes();
    let mut prev = u64::MAX;
    for rows in [40usize, 160, 640, 2560] {
        let mut sim = RowCacheSim::new(rows * row_bytes, row_bytes);
        naive_trace(&mut sim, w, 1);
        sim.flush();
        assert!(
            sim.mem.total() <= prev,
            "traffic rose with capacity at {rows} rows"
        );
        prev = sim.mem.total();
    }
}
