//! Line-granularity set-associative cache — cross-validation for the row
//! model on small grids.
//!
//! The row-granularity simulator treats whole x-rows as blocks; this model
//! resolves individual 64-byte lines with LRU within each set, like the
//! real Haswell L3 slice. Tests compare both on identical traversals to
//! confirm that row granularity does not distort code-balance trends.

/// Set-associative cache over 64-bit line addresses.
pub struct SetAssocCache {
    sets: Vec<Vec<(u64, bool)>>, // per set: (tag, dirty), index 0 = MRU
    ways: usize,
    set_bits: u32,
    pub hits: u64,
    pub misses: u64,
    pub writebacks: u64,
}

impl SetAssocCache {
    /// `capacity_lines` must be `ways * 2^k` for some k.
    pub fn new(capacity_lines: usize, ways: usize) -> Self {
        assert!(ways > 0 && capacity_lines >= ways);
        let sets = capacity_lines / ways;
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        SetAssocCache {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            set_bits: sets.trailing_zeros(),
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    #[inline]
    fn split(&self, line: u64) -> (usize, u64) {
        let mask = (1u64 << self.set_bits) - 1;
        ((line & mask) as usize, line >> self.set_bits)
    }

    /// Access one line address (already divided by the line size).
    pub fn access(&mut self, line: u64, write: bool) -> bool {
        let (set, tag) = self.split(line);
        let ways = self.ways;
        let set = &mut self.sets[set];
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            self.hits += 1;
            let (t, d) = set.remove(pos);
            set.insert(0, (t, d || write));
            return true;
        }
        self.misses += 1;
        if set.len() == ways {
            let (_, dirty) = set.pop().expect("full set has a victim");
            if dirty {
                self.writebacks += 1;
            }
        }
        set.insert(0, (tag, write));
        false
    }

    /// Evict everything, counting dirty lines.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for &(_, dirty) in set.iter() {
                if dirty {
                    self.writebacks += 1;
                }
            }
            set.clear();
        }
    }

    /// Total memory traffic in lines (fills + writebacks).
    pub fn traffic_lines(&self) -> u64 {
        self.misses + self.writebacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflicts() {
        // 4 sets, 1 way: lines 0 and 4 collide.
        let mut c = SetAssocCache::new(4, 1);
        assert!(!c.access(0, false));
        assert!(!c.access(4, false));
        assert!(!c.access(0, false), "0 was evicted by 4");
        assert_eq!(c.misses, 3);
    }

    #[test]
    fn two_way_resolves_that_conflict() {
        let mut c = SetAssocCache::new(8, 2);
        c.access(0, false);
        c.access(4, false);
        assert!(c.access(0, false), "2-way keeps both");
    }

    #[test]
    fn writeback_counted_once() {
        let mut c = SetAssocCache::new(2, 1);
        c.access(0, true);
        c.access(2, false); // evicts dirty 0 (same set)
        assert_eq!(c.writebacks, 1);
        c.flush();
        assert_eq!(c.writebacks, 1, "clean line 2 must not write back");
    }

    #[test]
    fn fully_associative_equals_lru_model() {
        // 1 set with many ways behaves exactly like the LRU model.
        let mut sa = SetAssocCache::new(16, 16);
        let mut lru = crate::lru::LruCache::new(16);
        let mut state = 7u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 40) % 48;
            let a = sa.access(key, key.is_multiple_of(5));
            let b = lru.access(key, key.is_multiple_of(5));
            assert_eq!(a, b.hit);
        }
        assert_eq!(sa.hits, lru.hits);
        assert_eq!(sa.misses, lru.misses);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = SetAssocCache::new(24, 2);
    }
}
