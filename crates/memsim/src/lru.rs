//! Fully associative LRU cache model over `u64` block keys.
//!
//! A slab-backed doubly linked list plus a hash map with a cheap
//! splitmix64-based hasher (the keys are already well-mixed block ids, and
//! this simulator is on the hot path of every figure regeneration).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Hasher finalizing with splitmix64 — ample for packed block keys.
#[derive(Default)]
pub struct MixHasher(u64);

impl Hasher for MixHasher {
    fn finish(&self) -> u64 {
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }
    fn write_u64(&mut self, i: u64) {
        self.0 ^= i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type Map = HashMap<u64, u32, BuildHasherDefault<MixHasher>>;

const NIL: u32 = u32::MAX;

struct Node {
    key: u64,
    prev: u32,
    next: u32,
    dirty: bool,
}

/// Outcome of one block access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    pub hit: bool,
    /// A dirty block was evicted to make room (write-back traffic).
    pub evicted_dirty: bool,
}

/// LRU cache with capacity counted in blocks.
pub struct LruCache {
    capacity: usize,
    map: Map,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    pub hits: u64,
    pub misses: u64,
}

impl LruCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            map: Map::default(),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn unlink(&mut self, i: u32) {
        let (p, n) = (self.nodes[i as usize].prev, self.nodes[i as usize].next);
        if p != NIL {
            self.nodes[p as usize].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.nodes[n as usize].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, i: u32) {
        self.nodes[i as usize].prev = NIL;
        self.nodes[i as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Touch `key`, marking it dirty when `write`. Returns hit/miss and
    /// whether a dirty block was evicted.
    pub fn access(&mut self, key: u64, write: bool) -> Access {
        if let Some(&i) = self.map.get(&key) {
            self.hits += 1;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            if write {
                self.nodes[i as usize].dirty = true;
            }
            return Access {
                hit: true,
                evicted_dirty: false,
            };
        }

        self.misses += 1;
        let mut evicted_dirty = false;
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let node = &self.nodes[victim as usize];
            evicted_dirty = node.dirty;
            self.map.remove(&node.key);
            self.free.push(victim);
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    key,
                    prev: NIL,
                    next: NIL,
                    dirty: write,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    key,
                    prev: NIL,
                    next: NIL,
                    dirty: write,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        Access {
            hit: false,
            evicted_dirty,
        }
    }

    /// Evict everything, returning the number of dirty blocks written back.
    pub fn flush(&mut self) -> u64 {
        let dirty = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| self.map.get(&n.key) == Some(&(*i as u32)) && n.dirty);
        let count = dirty.count() as u64;
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        count
    }

    /// True when `key` currently resides in the cache (no LRU update).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = LruCache::new(2);
        assert!(!c.access(1, false).hit);
        assert!(c.access(1, false).hit);
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = LruCache::new(2);
        c.access(1, false);
        c.access(2, false);
        c.access(1, false); // 1 is now MRU, 2 is LRU
        c.access(3, false); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = LruCache::new(1);
        c.access(1, true);
        let a = c.access(2, false);
        assert!(!a.hit);
        assert!(
            a.evicted_dirty,
            "evicting written block must report write-back"
        );
        let a2 = c.access(3, false);
        assert!(!a2.evicted_dirty, "clean eviction");
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = LruCache::new(2);
        c.access(1, false);
        c.access(1, true); // becomes dirty via hit
        c.access(2, false);
        let a = c.access(3, false); // evicts 1 (LRU), which is dirty
        assert!(a.evicted_dirty);
    }

    #[test]
    fn flush_counts_dirty_blocks() {
        let mut c = LruCache::new(4);
        c.access(1, true);
        c.access(2, false);
        c.access(3, true);
        assert_eq!(c.flush(), 2);
        assert!(c.is_empty());
        // Reusable after flush.
        assert!(!c.access(1, false).hit);
    }

    #[test]
    fn capacity_respected_under_churn() {
        let mut c = LruCache::new(8);
        for k in 0..1000u64 {
            c.access(k, k % 3 == 0);
            assert!(c.len() <= 8);
        }
        // The last 8 keys must be resident.
        for k in 992..1000 {
            assert!(c.contains(k), "key {k}");
        }
    }

    #[test]
    fn reuse_distance_semantics() {
        // A block is a hit iff fewer than `capacity` distinct blocks
        // intervened — the defining LRU property, checked against a naive
        // reference on a pseudo-random stream.
        let cap = 16;
        let mut c = LruCache::new(cap);
        let mut history: Vec<u64> = Vec::new();
        let mut state = 12345u64;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) % 40;
            let expect_hit = {
                let mut distinct = std::collections::HashSet::new();
                let mut found = false;
                for &h in history.iter().rev() {
                    if h == key {
                        found = true;
                        break;
                    }
                    distinct.insert(h);
                }
                found && distinct.len() < cap
            };
            let got = c.access(key, false).hit;
            assert_eq!(got, expect_hit, "key {key}");
            history.push(key);
        }
    }
}
