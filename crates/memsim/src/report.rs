//! LIKWID-style traffic report.

use crate::rowsim::Traffic;

/// The measurement a LIKWID MEM group run would report: memory-controller
/// read/write volumes over a counted number of lattice-site updates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficReport {
    pub traffic: Traffic,
    pub lups: u64,
}

impl TrafficReport {
    pub fn new(traffic: Traffic, lups: u64) -> Self {
        TrafficReport { traffic, lups }
    }

    /// Measured code balance in bytes/LUP.
    pub fn code_balance(&self) -> f64 {
        self.traffic.total() as f64 / self.lups as f64
    }

    /// Data volume in GB (decimal, as LIKWID prints).
    pub fn total_gb(&self) -> f64 {
        self.traffic.total() as f64 / 1e9
    }

    /// Memory bandwidth in GB/s implied by a given achieved update rate.
    pub fn bandwidth_gbs(&self, mlups: f64) -> f64 {
        mlups * 1e6 * self.code_balance() / 1e9
    }

    pub fn read_fraction(&self) -> f64 {
        self.traffic.read_bytes as f64 / self.traffic.total().max(1) as f64
    }
}

impl std::fmt::Display for TrafficReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MEM: {:.3} GB read, {:.3} GB write, {} LUP, {:.1} bytes/LUP",
            self.traffic.read_bytes as f64 / 1e9,
            self.traffic.write_bytes as f64 / 1e9,
            self.lups,
            self.code_balance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> TrafficReport {
        TrafficReport::new(
            Traffic {
                read_bytes: 900_000,
                write_bytes: 300_000,
            },
            1000,
        )
    }

    #[test]
    fn code_balance_is_total_over_lups() {
        assert_eq!(report().code_balance(), 1200.0);
    }

    #[test]
    fn bandwidth_scales_with_mlups() {
        // 41 MLUP/s at 1216 B/LUP ~ 50 GB/s (the paper's Eq. 10 inverted).
        let r = TrafficReport::new(
            Traffic {
                read_bytes: 1216 * 1000,
                write_bytes: 0,
            },
            1000,
        );
        let bw = r.bandwidth_gbs(41.1);
        assert!((bw - 50.0).abs() < 0.05, "got {bw}");
    }

    #[test]
    fn read_fraction_and_display() {
        let r = report();
        assert!((r.read_fraction() - 0.75).abs() < 1e-12);
        let s = r.to_string();
        assert!(s.contains("bytes/LUP"), "{s}");
    }
}
