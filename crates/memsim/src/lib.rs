//! # mem-sim — memory-hierarchy measurement substrate
//!
//! The paper measures memory traffic with LIKWID hardware performance
//! counters on an 18-core Haswell. This reproduction machine has neither
//! that chip nor counter access, so traffic is *simulated*: the exact
//! traversal orders of each code variant (naive, spatially blocked, 1WD,
//! MWD with thread groups) drive an LRU model of the shared last-level
//! cache, and the memory-controller traffic it emits yields the measured
//! code balance (bytes/LUP) and bandwidth figures.
//!
//! ## Why row granularity is faithful
//!
//! The x dimension is contiguous and never tiled (in the paper and here),
//! so all reuse the tiling machinery creates or destroys happens across
//! (array, y, z) rows of `Nx * 16` bytes. The paper's own cache-size and
//! code-balance models (Eqs. 11-12) reason at exactly this granularity.
//! Simulating whole rows as cache blocks reproduces layer conditions,
//! capacity misses and tile-fit effects deterministically while keeping
//! paper-scale grids (480^3) tractable. A line-granularity set-associative
//! simulator ([`assoc`]) cross-validates the row model on small grids.
//!
//! Concurrency is modeled by interleaving one access stream per *cache
//! block owner* — per thread for 1WD (separate blocks per thread), per
//! thread group for MWD (cache block sharing) — which is precisely the
//! mechanism the paper credits for MWD's lower cache pressure.

pub mod assoc;
pub mod lru;
pub mod perf;
pub mod report;
pub mod rowsim;
pub mod trace;

pub use lru::LruCache;
pub use perf::{simulate_mwd_engine, simulate_naive_engine, simulate_spatial_engine, EngineResult};
pub use report::TrafficReport;
pub use rowsim::{ArrayId, RowCacheSim};
pub use trace::{mwd_trace, naive_trace, spatial_trace, Workload};
