//! Engine-level simulation: traffic measurement + roofline model
//! = the (MLUP/s, GB/s, bytes/LUP) triples of the paper's figures.

use crate::report::TrafficReport;
use crate::rowsim::RowCacheSim;
use crate::trace::{mwd_trace, naive_trace, spatial_trace, Workload};
use em_field::GridDims;
use mwd_core::{DiamondWidth, TilePlan, WavefrontSpec};
use perf_models::{perf_mlups, MachineSpec};

/// One point of a performance figure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineResult {
    pub mlups: f64,
    pub mem_gbs: f64,
    pub code_balance: f64,
    /// True when the roofline's memory leg binds.
    pub memory_bound: bool,
}

fn finish(machine: &MachineSpec, threads: usize, report: TrafficReport) -> EngineResult {
    let bc = report.code_balance();
    let est = perf_mlups(machine, threads, bc);
    EngineResult {
        mlups: est.mlups,
        mem_gbs: est.mem_bw_used / 1e9,
        code_balance: bc,
        memory_bound: est.memory_bound,
    }
}

/// Simulate the naive engine on `machine` at `threads` threads.
pub fn simulate_naive_engine(
    machine: &MachineSpec,
    dims: GridDims,
    steps: usize,
    threads: usize,
) -> EngineResult {
    let w = Workload { dims, steps };
    let mut sim = RowCacheSim::new(machine.l3_bytes, dims.row_bytes());
    naive_trace(&mut sim, w, threads);
    sim.flush();
    finish(machine, threads, TrafficReport::new(sim.mem, w.lups()))
}

/// Simulate *optimal* spatial blocking: probes a small set of y-block
/// candidates (the auto-tuning the paper assumes for its baseline) and
/// keeps the lowest-traffic one.
pub fn simulate_spatial_engine(
    machine: &MachineSpec,
    dims: GridDims,
    steps: usize,
    threads: usize,
) -> EngineResult {
    let w = Workload { dims, steps };
    let mut best: Option<(u64, TrafficReport)> = None;
    let mut candidates: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&b| b <= dims.ny)
        .collect();
    candidates.push(dims.ny);
    candidates.dedup();
    for by in candidates {
        let mut sim = RowCacheSim::new(machine.l3_bytes, dims.row_bytes());
        spatial_trace(&mut sim, w, by, dims.nz, threads);
        sim.flush();
        let total = sim.mem.total();
        let report = TrafficReport::new(sim.mem, w.lups());
        if best.as_ref().is_none_or(|(t, _)| total < *t) {
            best = Some((total, report));
        }
    }
    finish(machine, threads, best.expect("at least one candidate").1)
}

/// Simulate an MWD (or 1WD) run: `groups` concurrent cache-block streams
/// over `threads` total threads.
pub fn simulate_mwd_engine(
    machine: &MachineSpec,
    dims: GridDims,
    steps: usize,
    dw: usize,
    bz: usize,
    groups: usize,
    threads: usize,
) -> EngineResult {
    let plan = TilePlan::build(DiamondWidth::new(dw).expect("valid dw"), dims.ny, steps);
    let wf = WavefrontSpec::new(bz).expect("valid bz");
    let w = Workload { dims, steps };
    let mut sim = RowCacheSim::new(machine.l3_bytes, dims.row_bytes());
    mwd_trace(&mut sim, &plan, wf, dims, groups);
    sim.flush();
    finish(machine, threads, TrafficReport::new(sim.mem, w.lups()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const HSW: MachineSpec = MachineSpec::HASWELL_E5_2699_V3;

    /// Downscaled Haswell for fast tests: keeps the capacity *ratios* of
    /// the real chip while shrinking the grid.
    fn mini_haswell(l3: usize) -> MachineSpec {
        MachineSpec {
            l3_bytes: l3,
            ..HSW
        }
    }

    #[test]
    fn spatial_engine_saturates_at_paper_level() {
        // Grid much larger than L3: spatial blocking lands near
        // 1216 B/LUP and 41 MLUP/s on the full chip.
        let dims = GridDims::new(32, 96, 96);
        let m = mini_haswell(40 * dims.row_bytes() * 6); // few layers only
        let r = simulate_spatial_engine(&m, dims, 2, 18);
        assert!(
            (r.code_balance - 1216.0).abs() < 150.0,
            "spatial BC {} should be near Eq. 9",
            r.code_balance
        );
        assert!(r.memory_bound);
        assert!((r.mlups - 41.0).abs() < 6.0, "got {}", r.mlups);
    }

    #[test]
    fn mwd_engine_decouples() {
        let dims = GridDims::new(32, 96, 96);
        // L3 sized to hold a Dw=8 tile comfortably.
        let m = mini_haswell(4000 * dims.row_bytes());
        let r = simulate_mwd_engine(&m, dims, 8, 8, 1, 1, 18);
        assert!(
            r.code_balance < 450.0,
            "MWD BC {} must be far below 1216",
            r.code_balance
        );
        assert!(!r.memory_bound, "MWD must be core-bound (decoupled)");
        let sp = simulate_spatial_engine(&m, dims, 2, 18);
        let speedup = r.mlups / sp.mlups;
        assert!(speedup > 2.5, "speedup {speedup} too small");
    }

    #[test]
    fn one_wd_with_many_threads_loses_to_shared_blocks() {
        // The cache-block-sharing claim: at equal thread count, 18 private
        // streams (1WD) produce more traffic than 1 shared stream (18WD).
        let dims = GridDims::new(32, 96, 64);
        let m = mini_haswell(3000 * dims.row_bytes());
        let one_wd = simulate_mwd_engine(&m, dims, 8, 8, 1, 18, 18);
        let full_share = simulate_mwd_engine(&m, dims, 8, 8, 1, 1, 18);
        assert!(
            one_wd.code_balance > full_share.code_balance * 1.3,
            "1WD {} vs 18WD {}",
            one_wd.code_balance,
            full_share.code_balance
        );
    }

    #[test]
    fn naive_engine_is_worst() {
        let dims = GridDims::new(32, 64, 64);
        let m = mini_haswell(40 * dims.row_bytes() * 4);
        let naive = simulate_naive_engine(&m, dims, 2, 18);
        let spatial = simulate_spatial_engine(&m, dims, 2, 18);
        assert!(naive.code_balance >= spatial.code_balance * 0.99);
    }
}
