//! Traversal trace generators: replay the exact row-access order of each
//! execution engine into a [`RowCacheSim`].
//!
//! Concurrency model: one access stream per cache-block owner (thread for
//! naive/spatial/1WD, thread group for MWD), interleaved round-robin. The
//! interleaving granularity is one work item — a (component, z-chunk) row
//! batch for the phase engines, one (wavefront position, diamond row) for
//! MWD — which matches how the real threads contend for L3 capacity.

use crate::rowsim::{component_row_access, RowCacheSim};
use em_field::{Component, FieldKind, GridDims};
use mwd_core::{split_range, TilePlan, WavefrontSpec};
use std::collections::VecDeque;

/// A traffic-measurement workload.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    pub dims: GridDims,
    pub steps: usize,
}

impl Workload {
    pub fn lups(&self) -> u64 {
        (self.dims.cells() * self.steps) as u64
    }
}

/// Replay the naive engine: twelve full-grid component nests per step,
/// z split across `threads`, interleaved one z-row batch at a time.
pub fn naive_trace(sim: &mut RowCacheSim, w: Workload, threads: usize) {
    assert!(threads > 0);
    let d = w.dims;
    for _ in 0..w.steps {
        for kind in [FieldKind::H, FieldKind::E] {
            for comp in Component::of(kind) {
                let chunks: Vec<_> = (0..threads)
                    .map(|i| split_range(0..d.nz, threads, i))
                    .collect();
                let longest = chunks.iter().map(|c| c.len()).max().unwrap_or(0);
                for j in 0..longest {
                    for chunk in &chunks {
                        if let Some(z) = chunk.clone().nth(j) {
                            for y in 0..d.ny {
                                component_row_access(sim, comp, y, z, d.ny, d.nz);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Replay the spatially blocked engine: (z-block, y-block) tiles assigned
/// round-robin to threads, six component nests per tile per phase.
pub fn spatial_trace(sim: &mut RowCacheSim, w: Workload, by: usize, bz: usize, threads: usize) {
    assert!(threads > 0 && by > 0 && bz > 0);
    let d = w.dims;
    let blocks = |n: usize, b: usize| -> Vec<(usize, usize)> {
        (0..n.div_ceil(b))
            .map(|i| (i * b, ((i + 1) * b).min(n)))
            .collect()
    };
    let tiles: Vec<(usize, usize, usize, usize)> = blocks(d.nz, bz)
        .into_iter()
        .flat_map(|(z0, z1)| {
            blocks(d.ny, by)
                .into_iter()
                .map(move |(y0, y1)| (z0, z1, y0, y1))
        })
        .collect();

    for _ in 0..w.steps {
        for kind in [FieldKind::H, FieldKind::E] {
            let rounds = tiles.len().div_ceil(threads);
            for j in 0..rounds {
                for tid in 0..threads {
                    let Some(&(z0, z1, y0, y1)) = tiles.get(j * threads + tid) else {
                        continue;
                    };
                    for comp in Component::of(kind) {
                        for z in z0..z1 {
                            for y in y0..y1 {
                                component_row_access(sim, comp, y, z, d.ny, d.nz);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// One (position, row) work item of a tile traversal.
struct TileCursor<'p> {
    tile: usize,
    items: Vec<(usize, usize)>,
    next: usize,
    plan: &'p TilePlan,
}

impl<'p> TileCursor<'p> {
    fn new(plan: &'p TilePlan, wf: WavefrontSpec, nz: usize, tile: usize) -> Self {
        let t = &plan.tiles[tile];
        let max_lag = t.max_lag();
        let mut items = Vec::new();
        for p in wf.positions(nz, max_lag) {
            for (ri, _) in t.rows.iter().enumerate() {
                items.push((p, ri));
            }
        }
        TileCursor {
            tile,
            items,
            next: 0,
            plan,
        }
    }

    /// Replay one work item; true when the tile is finished.
    fn step(&mut self, sim: &mut RowCacheSim, wf: WavefrontSpec, dims: GridDims) -> bool {
        let (p, ri) = self.items[self.next];
        self.next += 1;
        let row = &self.plan.tiles[self.tile].rows[ri];
        let zwin = wf.window(p, row.lag, dims.nz);
        for comp in Component::of(row.kind) {
            for z in zwin.clone() {
                for y in row.y_range() {
                    component_row_access(sim, comp, y, z, dims.ny, dims.nz);
                }
            }
        }
        self.next == self.items.len()
    }
}

/// Replay an MWD run: `streams` concurrent thread groups drain the FIFO
/// tile queue; each group replays one (position, row) item per round.
/// 1WD is `streams = threads`; cache-block sharing is `streams = groups`.
pub fn mwd_trace(
    sim: &mut RowCacheSim,
    plan: &TilePlan,
    wf: WavefrontSpec,
    dims: GridDims,
    streams: usize,
) {
    assert!(streams > 0);
    let mut remaining = plan.parents.clone();
    let mut ready: VecDeque<usize> = plan.roots().into();
    let mut active: Vec<Option<TileCursor>> = (0..streams).map(|_| None).collect();
    let mut outstanding = plan.tiles.len();

    while outstanding > 0 {
        let mut progressed = false;
        for slot in active.iter_mut() {
            if slot.is_none() {
                if let Some(t) = ready.pop_front() {
                    *slot = Some(TileCursor::new(plan, wf, dims.nz, t));
                }
            }
            if let Some(cursor) = slot {
                progressed = true;
                if cursor.step(sim, wf, dims) {
                    let finished = cursor.tile;
                    *slot = None;
                    outstanding -= 1;
                    for &d in &plan.dependents[finished] {
                        remaining[d] -= 1;
                        if remaining[d] == 0 {
                            ready.push_back(d);
                        }
                    }
                }
            }
        }
        assert!(
            progressed,
            "scheduler stalled with {outstanding} tiles outstanding"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowsim::RowCacheSim;
    use mwd_core::DiamondWidth;

    fn sim_gib(rows: usize, row_bytes: usize) -> RowCacheSim {
        RowCacheSim::new(rows * row_bytes, row_bytes)
    }

    #[test]
    fn naive_cold_traffic_counts_every_first_touch() {
        // Huge cache: every distinct row read once, so read traffic over
        // one step equals (distinct rows touched) * row_bytes. The twelve
        // nests touch: 12 dst + 12 t + 12 c + 4 src + source splits
        // (already counted as fields). Distinct arrays = 40.
        let dims = GridDims::new(8, 6, 5);
        let w = Workload { dims, steps: 1 };
        let mut sim = sim_gib(1 << 20, dims.row_bytes());
        naive_trace(&mut sim, w, 1);
        let rows_per_array = (dims.ny * dims.nz) as u64;
        assert_eq!(
            sim.mem.read_bytes,
            40 * rows_per_array * dims.row_bytes() as u64
        );
        // Nothing evicted from a huge cache.
        assert_eq!(sim.mem.write_bytes, 0);
        sim.flush();
        // All 12 field arrays dirty.
        assert_eq!(
            sim.mem.write_bytes,
            12 * rows_per_array * dims.row_bytes() as u64
        );
    }

    #[test]
    fn second_step_reuses_in_huge_cache() {
        let dims = GridDims::new(8, 6, 5);
        let mut sim = sim_gib(1 << 20, dims.row_bytes());
        naive_trace(&mut sim, Workload { dims, steps: 2 }, 1);
        let rows_per_array = (dims.ny * dims.nz) as u64;
        // Still only the cold misses: temporal reuse across steps.
        assert_eq!(
            sim.mem.read_bytes,
            40 * rows_per_array * dims.row_bytes() as u64
        );
    }

    #[test]
    fn tiny_cache_approaches_naive_code_balance() {
        // With a cache far smaller than a z-layer, the shifted z reads
        // miss: per-LUP traffic should approach Eq. 8's 1344 B/LUP
        // (plus write-allocate refinements; we check a generous band).
        let dims = GridDims::new(16, 48, 48);
        let w = Workload { dims, steps: 2 };
        // Cache of ~3 y-rows per array — way below two x-y layers.
        let mut sim = sim_gib(120, dims.row_bytes());
        naive_trace(&mut sim, w, 1);
        sim.flush();
        let bc = sim.mem.total() as f64 / w.lups() as f64;
        assert!(bc > 1100.0 && bc < 1700.0, "naive-regime BC {bc}");
    }

    #[test]
    fn layer_condition_cache_matches_spatial_code_balance() {
        // Cache big enough for a few x-y layers of all arrays but far
        // smaller than the grid: z-shifted reads hit (layer condition),
        // coefficients stream => Eq. 9's 1216 B/LUP regime.
        let dims = GridDims::new(16, 32, 256);
        let w = Workload { dims, steps: 1 };
        // 8 full x-y layer sets: 8 * 40 * ny rows... keep ~4 layers of 40 arrays.
        let rows = 4 * 40 * dims.ny;
        let mut sim = sim_gib(rows, dims.row_bytes());
        naive_trace(&mut sim, w, 1);
        sim.flush();
        let bc = sim.mem.total() as f64 / w.lups() as f64;
        assert!((bc - 1216.0).abs() < 120.0, "layer-condition BC {bc}");
    }

    #[test]
    fn spatial_trace_same_cold_footprint_as_naive() {
        let dims = GridDims::new(8, 9, 7);
        let w = Workload { dims, steps: 1 };
        let mut a = sim_gib(1 << 20, dims.row_bytes());
        naive_trace(&mut a, w, 1);
        let mut b = sim_gib(1 << 20, dims.row_bytes());
        spatial_trace(&mut b, w, 4, 3, 2);
        assert_eq!(
            a.mem.read_bytes, b.mem.read_bytes,
            "cold footprints must agree"
        );
    }

    #[test]
    fn mwd_trace_touches_whole_problem() {
        let dims = GridDims::new(8, 8, 6);
        let nt = 4;
        let plan = TilePlan::build(DiamondWidth::new(4).unwrap(), dims.ny, nt);
        let wf = WavefrontSpec::new(2).unwrap();
        let mut sim = sim_gib(1 << 20, dims.row_bytes());
        mwd_trace(&mut sim, &plan, wf, dims, 2);
        let rows_per_array = (dims.ny * dims.nz) as u64;
        // Cold footprint identical to the naive engine's.
        assert_eq!(
            sim.mem.read_bytes,
            40 * rows_per_array * dims.row_bytes() as u64
        );
    }

    #[test]
    fn mwd_beats_spatial_traffic_in_a_small_cache() {
        // The headline mechanism: with a cache that holds a tile but not
        // the grid, temporal blocking must cut memory traffic well below
        // the per-step streaming of the spatial engine.
        let dims = GridDims::new(16, 64, 64);
        let nt = 8;
        let w = Workload { dims, steps: nt };
        let rows = 2200; // holds a Dw=8 tile working set, not the grid
        let mut sp = sim_gib(rows, dims.row_bytes());
        spatial_trace(&mut sp, w, 8, 64, 1);
        sp.flush();

        let plan = TilePlan::build(DiamondWidth::new(8).unwrap(), dims.ny, nt);
        let wf = WavefrontSpec::new(1).unwrap();
        let mut mw = sim_gib(rows, dims.row_bytes());
        mwd_trace(&mut mw, &plan, wf, dims, 1);
        mw.flush();

        let bc_sp = sp.mem.total() as f64 / w.lups() as f64;
        let bc_mw = mw.mem.total() as f64 / w.lups() as f64;
        assert!(
            bc_mw < bc_sp / 2.0,
            "diamond tiling must at least halve traffic: spatial {bc_sp}, mwd {bc_mw}"
        );
    }

    #[test]
    fn more_streams_increase_mwd_traffic() {
        // Separate cache blocks per stream (1WD with many threads) raise
        // capacity pressure: traffic grows with stream count.
        let dims = GridDims::new(16, 64, 48);
        let nt = 8;
        let plan = TilePlan::build(DiamondWidth::new(8).unwrap(), dims.ny, nt);
        let wf = WavefrontSpec::new(1).unwrap();
        let rows = 2200;
        let traffic: Vec<u64> = [1usize, 4, 12]
            .iter()
            .map(|&streams| {
                let mut sim = sim_gib(rows, dims.row_bytes());
                mwd_trace(&mut sim, &plan, wf, dims, streams);
                sim.flush();
                sim.mem.total()
            })
            .collect();
        assert!(traffic[0] < traffic[1], "1 -> 4 streams: {traffic:?}");
        assert!(traffic[1] < traffic[2], "4 -> 12 streams: {traffic:?}");
    }
}
