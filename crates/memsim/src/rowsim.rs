//! Row-granularity cache traffic simulator.
//!
//! Blocks are whole *logical* x-rows of one array: `(array, y, z)`,
//! `Nx * 16` bytes each. With the split re/im storage
//! (`em_field::Array3C`) a logical row is physically two plane rows of
//! `Nx * 8` bytes (`GridDims::plane_row_bytes`) at `im_offset()`
//! distance; the kernels always touch both planes of a row together, so
//! tracking them as one block keeps the simulator faithful while the
//! per-row byte count — and with it every code-balance number of the
//! paper (Eqs. 8, 9, 12) — is unchanged from the interleaved layout.
//! The shared last-level cache is an [`LruCache`] with write-back /
//! write-allocate semantics; every miss fetches a row from memory, every
//! dirty eviction writes one back — the two numbers LIKWID's MEM group
//! reports on the real machine.

use crate::lru::LruCache;
use em_field::{Component, SourceArray};

/// Identifies one of the 40 domain-sized arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArrayId(pub u8);

impl ArrayId {
    pub fn field(c: Component) -> ArrayId {
        ArrayId(c.index() as u8)
    }
    pub fn coeff_t(c: Component) -> ArrayId {
        ArrayId(12 + c.index() as u8)
    }
    pub fn coeff_c(c: Component) -> ArrayId {
        ArrayId(24 + c.index() as u8)
    }
    pub fn src(s: SourceArray) -> ArrayId {
        ArrayId(36 + s.index() as u8)
    }
}

/// Memory-controller traffic counters (bytes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    pub read_bytes: u64,
    pub write_bytes: u64,
}

impl Traffic {
    pub fn total(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// The simulated cache plus its traffic counters.
pub struct RowCacheSim {
    cache: LruCache,
    row_bytes: u64,
    pub mem: Traffic,
}

impl RowCacheSim {
    /// `cache_bytes` of capacity for rows of `row_bytes` each.
    pub fn new(cache_bytes: usize, row_bytes: usize) -> Self {
        assert!(row_bytes > 0);
        let blocks = (cache_bytes / row_bytes).max(1);
        RowCacheSim {
            cache: LruCache::new(blocks),
            row_bytes: row_bytes as u64,
            mem: Traffic::default(),
        }
    }

    /// Capacity in row blocks.
    pub fn capacity_rows(&self) -> usize {
        self.cache.capacity()
    }

    #[inline]
    fn key(array: ArrayId, y: usize, z: usize) -> u64 {
        debug_assert!(array.0 < 40);
        ((array.0 as u64) << 56) | ((z as u64) << 28) | y as u64
    }

    /// Touch the row `(array, y, z)`.
    #[inline]
    pub fn access(&mut self, array: ArrayId, y: usize, z: usize, write: bool) {
        let a = self.cache.access(Self::key(array, y, z), write);
        if !a.hit {
            self.mem.read_bytes += self.row_bytes;
        }
        if a.evicted_dirty {
            self.mem.write_bytes += self.row_bytes;
        }
    }

    /// Write back all dirty rows (end of measurement window).
    pub fn flush(&mut self) {
        let dirty = self.cache.flush();
        self.mem.write_bytes += dirty * self.row_bytes;
    }

    pub fn hits(&self) -> u64 {
        self.cache.hits
    }

    pub fn misses(&self) -> u64 {
        self.cache.misses
    }
}

/// Emit the row accesses of one component update over the row `(y, z)`,
/// mirroring the kernels: read `t`, `c`, optional source, the two source
/// splits at the center and (for y/z derivative axes) the shifted row,
/// then read+write the destination. The x-shifted accesses of Listing 2's
/// inner-dimension variants stay within the same row.
#[inline]
pub fn component_row_access(
    sim: &mut RowCacheSim,
    comp: Component,
    y: usize,
    z: usize,
    ny: usize,
    nz: usize,
) {
    use em_field::Axis;

    sim.access(ArrayId::coeff_t(comp), y, z, false);
    sim.access(ArrayId::coeff_c(comp), y, z, false);
    if let Some(s) = comp.source_array() {
        sim.access(ArrayId::src(s), y, z, false);
    }
    let [s1, s2] = comp.source_splits();
    sim.access(ArrayId::field(s1), y, z, false);
    sim.access(ArrayId::field(s2), y, z, false);
    let dir = comp.offset_dir();
    match comp.deriv_axis() {
        Axis::X => {} // same row
        Axis::Y => {
            let yn = y as isize + dir;
            if yn >= 0 && (yn as usize) < ny {
                sim.access(ArrayId::field(s1), yn as usize, z, false);
                sim.access(ArrayId::field(s2), yn as usize, z, false);
            }
        }
        Axis::Z => {
            let zn = z as isize + dir;
            if zn >= 0 && (zn as usize) < nz {
                sim.access(ArrayId::field(s1), y, zn as usize, false);
                sim.access(ArrayId::field(s2), y, zn as usize, false);
            }
        }
    }
    // Destination: read-modify-write.
    sim.access(ArrayId::field(comp), y, z, false);
    sim.access(ArrayId::field(comp), y, z, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_field::Component;

    #[test]
    fn array_ids_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for c in Component::ALL {
            assert!(seen.insert(ArrayId::field(c)));
            assert!(seen.insert(ArrayId::coeff_t(c)));
            assert!(seen.insert(ArrayId::coeff_c(c)));
        }
        for s in SourceArray::ALL {
            assert!(seen.insert(ArrayId::src(s)));
        }
        assert_eq!(seen.len(), 40);
    }

    #[test]
    fn cold_access_reads_one_row() {
        let mut sim = RowCacheSim::new(1 << 20, 1024);
        sim.access(ArrayId(0), 3, 4, false);
        assert_eq!(sim.mem.read_bytes, 1024);
        assert_eq!(sim.mem.write_bytes, 0);
        sim.access(ArrayId(0), 3, 4, true); // hit, marks dirty
        assert_eq!(sim.mem.read_bytes, 1024);
        sim.flush();
        assert_eq!(sim.mem.write_bytes, 1024);
    }

    #[test]
    fn capacity_of_one_row_thrashes() {
        let mut sim = RowCacheSim::new(100, 100);
        assert_eq!(sim.capacity_rows(), 1);
        for i in 0..10 {
            sim.access(ArrayId(0), i, 0, false);
            sim.access(ArrayId(1), i, 0, false);
        }
        assert_eq!(sim.mem.read_bytes, 20 * 100);
    }

    #[test]
    fn component_access_counts_match_listing_structure() {
        // Big cache: every first touch misses once; count distinct rows.
        let mut sim = RowCacheSim::new(1 << 30, 512);
        // Listing 1 type (z shift, with source): t, c, src, s1, s2,
        // s1@z-1, s2@z-1, dst = 8 distinct rows.
        component_row_access(&mut sim, Component::Hyx, 2, 2, 8, 8);
        assert_eq!(sim.mem.read_bytes, 8 * 512);
        // Listing 2 type (x shift, no source): t, c, s1, s2, dst = 5 rows.
        let before = sim.mem.read_bytes;
        component_row_access(&mut sim, Component::Hzy, 3, 3, 8, 8);
        assert_eq!(sim.mem.read_bytes - before, 5 * 512);
        // Listing 2 with y shift: t, c, s1, s2, s1@y-1, s2@y-1, dst = 7.
        let before = sim.mem.read_bytes;
        component_row_access(&mut sim, Component::Hzx, 4, 4, 8, 8);
        assert_eq!(sim.mem.read_bytes - before, 7 * 512);
    }

    #[test]
    fn boundary_rows_skip_out_of_domain_neighbors() {
        let mut sim = RowCacheSim::new(1 << 30, 512);
        // Hyx at z=0 reads z-1 => out of domain => only 6 rows.
        component_row_access(&mut sim, Component::Hyx, 0, 0, 4, 4);
        assert_eq!(sim.mem.read_bytes, 6 * 512);
    }
}
