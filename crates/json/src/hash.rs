//! The workspace's canonical content hash.
//!
//! FNV-1a over 128 bits, hand-rolled (no crates.io here) — not
//! cryptographic, but 128 bits of a well-mixed hash make accidental
//! collisions between scenario specs a non-concern, and the inputs are
//! trusted (they come from this process's own canonical serializers).
//!
//! One implementation serves every consumer that needs stable
//! content-addressing — the job service's result-store keys, the batch
//! runner's artifact filenames, and the scenario generator's dedupe
//! checks — so a spec hashes to the same key no matter which layer
//! computed it.
//!
//! Parts are fed with a separator byte after each, so the hash of
//! `["ab", "c"]` differs from `["a", "bc"]` — the key must depend on
//! the *structure* (spec, engine, fingerprint), not just the
//! concatenated text.

const FNV_OFFSET_128: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME_128: u128 = 0x0000000001000000000000000000013b;

/// A part separator that cannot occur in UTF-8 text content (0x1e,
/// ASCII "record separator", is legal UTF-8 but never appears in the
/// TOML/compact-config/fingerprint strings we hash — they are printable).
const SEP: u8 = 0x1e;

/// Hash an ordered list of string parts into 32 lowercase hex digits.
pub fn content_hash(parts: &[&str]) -> String {
    let mut h = FNV_OFFSET_128;
    for part in parts {
        for &b in part.as_bytes() {
            h ^= b as u128;
            h = h.wrapping_mul(FNV_PRIME_128);
        }
        h ^= SEP as u128;
        h = h.wrapping_mul(FNV_PRIME_128);
    }
    format!("{h:032x}")
}

/// Hash raw bytes (no part structure, no separator) into 32 lowercase
/// hex digits. Used where the input is not guaranteed to be UTF-8 —
/// e.g. the result store's on-disk integrity footers, which must verify
/// whatever bytes actually landed on disk, corrupt or not.
pub fn content_hash_bytes(bytes: &[u8]) -> String {
    let mut h = FNV_OFFSET_128;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME_128);
    }
    format!("{h:032x}")
}

/// Whether a string is a well-formed content key (32 hex digits).
pub fn is_key(s: &str) -> bool {
    s.len() == 32
        && s.bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a 128 of the empty input is the offset basis; one part
        // still mixes the separator in.
        assert_eq!(content_hash(&[]), format!("{FNV_OFFSET_128:032x}"));
        assert_ne!(content_hash(&[""]), content_hash(&[]));
    }

    #[test]
    fn deterministic_and_key_shaped() {
        let a = content_hash(&["spec", "engine", "fp"]);
        let b = content_hash(&["spec", "engine", "fp"]);
        assert_eq!(a, b);
        assert!(is_key(&a), "{a}");
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn part_boundaries_matter() {
        assert_ne!(content_hash(&["ab", "c"]), content_hash(&["a", "bc"]));
        assert_ne!(content_hash(&["abc"]), content_hash(&["ab", "c"]));
        assert_ne!(content_hash(&["x"]), content_hash(&["x", ""]));
    }

    #[test]
    fn bytes_hash_matches_single_part_semantics_minus_separator() {
        // Same FNV core, no separator: hashing "abc" as bytes differs
        // from the one-part string hash (which mixes in SEP) but is
        // deterministic and key-shaped.
        let a = content_hash_bytes(b"abc");
        assert_eq!(a, content_hash_bytes(b"abc"));
        assert!(is_key(&a), "{a}");
        assert_ne!(a, content_hash(&["abc"]));
        assert_ne!(content_hash_bytes(b""), content_hash_bytes(b"\0"));
        assert_eq!(content_hash_bytes(b""), format!("{FNV_OFFSET_128:032x}"));
    }

    #[test]
    fn is_key_rejects_non_keys() {
        assert!(!is_key(""));
        assert!(!is_key("xyz"));
        assert!(!is_key(&"a".repeat(31)));
        assert!(!is_key(&"A".repeat(32)), "uppercase is not canonical");
        assert!(is_key(&"0123456789abcdef".repeat(2)));
    }
}
