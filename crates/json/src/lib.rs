//! # em-json — the workspace's one JSON dialect
//!
//! Hand-rolled (no crates.io in this environment, consistent with the
//! vendored `proptest`/`criterion` shims) and shared: result artifacts
//! and bench reports write it, the tuning cache and the job service
//! read it back, and the integration tests use the parser to check the
//! writers' schemas. One implementation keeps the two directions honest
//! against each other.
//!
//! The subset is full JSON minus exotic escapes: objects (insertion-
//! ordered, so output is deterministic and diffable), arrays, strings
//! with the common escapes plus `\uXXXX`, numbers, booleans and null.
//!
//! Numbers carry an [`Json::Int`] / [`Json::Num`] distinction on the
//! writing side (artifact counters render without a fraction part);
//! equality is numeric across the two, so `parse(render(v)) == v` holds
//! for both.

use std::fmt::Write as _;

pub mod hash;

/// Historical alias: `autotune::jsonio` named this type `JValue`.
pub type JValue = Json;

/// A JSON value. Build with the constructors, render with
/// [`Json::pretty`] or [`Json::compact`], read back with [`parse`].
#[derive(Clone, Debug)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// `Int` and `Num` compare numerically (`Int(3) == Num(3.0)`): the
/// parser yields `Num` for every number literal, so structural equality
/// would otherwise break `parse(render(v)) == v` for written `Int`s.
impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(&str, value)` pairs, in order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Set or replace an object field (no-op on non-objects).
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(pairs) = self {
            match pairs.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = value,
                None => pairs.push((key.to_string(), value)),
            }
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(n) if *n == n.trunc() && n.abs() < 1e15 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Render on one line.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        // Shortest round-trip form; valid JSON for
                        // finite values.
                        let _ = write!(out, "{n:?}");
                    }
                } else {
                    // JSON has no Inf/NaN literal.
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => render_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].render(out, ind)
            }),
            Json::Obj(pairs) => render_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                escape_into(out, &pairs[i].0);
                out.push_str(": ");
                pairs[i].1.render(out, ind);
            }),
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    if len == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for i in 0..len {
        if let Some(level) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(level + 1));
            item(out, i, Some(level + 1));
        } else {
            item(out, i, None);
        }
        if i + 1 < len {
            out.push(',');
            if indent.is_none() {
                out.push(' ');
            }
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        chars: text.char_indices().peekable(),
        text,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if let Some((i, c)) = p.chars.peek() {
        return Err(format!("trailing content at byte {i}: `{c}`"));
    }
    Ok(v)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected `{want}` at byte {i}, found `{c}`")),
            None => Err(format!("expected `{want}`, found end of input")),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.chars.peek().copied() {
            None => Err("unexpected end of input".to_string()),
            Some((_, '{')) => self.object(),
            Some((_, '[')) => self.array(),
            Some((_, '"')) => Ok(Json::Str(self.string()?)),
            Some((_, 't')) => self.keyword("true", Json::Bool(true)),
            Some((_, 'f')) => self.keyword("false", Json::Bool(false)),
            Some((_, 'n')) => self.keyword("null", Json::Null),
            Some((i, c)) if c == '-' || c.is_ascii_digit() => self.number(i),
            Some((i, c)) => Err(format!("unexpected `{c}` at byte {i}")),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(v)
    }

    fn number(&mut self, start: usize) -> Result<Json, String> {
        let mut end = self.text.len();
        while let Some((i, c)) = self.chars.peek().copied() {
            if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                self.chars.next();
            } else {
                end = i;
                break;
            }
        }
        let lit = &self.text[start..end];
        lit.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number literal `{lit}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".to_string()),
                Some((_, '"')) => return Ok(out),
                Some((i, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (j, c) = self
                                .chars
                                .next()
                                .ok_or("unterminated \\u escape".to_string())?;
                            let d = c
                                .to_digit(16)
                                .ok_or_else(|| format!("bad hex digit `{c}` at byte {j}"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid \\u{code:04x} escape"))?,
                        );
                    }
                    Some((j, c)) => return Err(format!("bad escape `\\{c}` at byte {j}")),
                    None => return Err(format!("unterminated escape at byte {i}")),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, '}'))) {
            self.chars.next();
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => return Ok(Json::Obj(pairs)),
                Some((i, c)) => return Err(format!("expected `,` or `}}` at byte {i}, got `{c}`")),
                None => return Err("unterminated object".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, ']'))) {
            self.chars.next();
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, ']')) => return Ok(Json::Arr(items)),
                Some((i, c)) => return Err(format!("expected `,` or `]` at byte {i}, got `{c}`")),
                None => return Err("unterminated array".to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nb\u0041""#).unwrap(), Json::str("a\nbA"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn pretty_roundtrips() {
        let v = Json::Obj(vec![
            ("name".to_string(), Json::str("tune \"cache\"")),
            ("hit".to_string(), Json::Bool(false)),
            ("score".to_string(), Json::Num(17.25)),
            ("count".to_string(), Json::Num(3.0)),
            ("periods".to_string(), Json::Int(12)),
            (
                "items".to_string(),
                Json::Arr(vec![Json::Num(1.0), Json::Null]),
            ),
            ("empty".to_string(), Json::Obj(vec![])),
        ]);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
        assert_eq!(parse(&v.compact()).unwrap(), v);
    }

    #[test]
    fn ints_and_integral_floats_compare_and_render_alike() {
        assert_eq!(Json::Int(3), Json::Num(3.0));
        assert_ne!(Json::Int(3), Json::Num(3.5));
        assert_eq!(Json::Num(3.0).pretty(), "3\n");
        assert_eq!(Json::Int(3).pretty(), "3\n");
        assert_eq!(Json::Num(3.5).pretty(), "3.5\n");
        assert_eq!(Json::Num(2.0).as_i64(), Some(2));
        assert_eq!(Json::Int(2).as_f64(), Some(2.0));
    }

    #[test]
    fn compact_renders_nested_structures() {
        let j = Json::obj(vec![
            ("name", Json::str("solar-cell")),
            ("converged", Json::Bool(true)),
            ("periods", Json::Int(12)),
            ("rel", Json::Num(0.5)),
            ("tags", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("none", Json::Null),
        ]);
        assert_eq!(
            j.compact(),
            r#"{"name": "solar-cell", "converged": true, "periods": 12, "rel": 0.5, "tags": [1, 2], "none": null}"#
        );
    }

    #[test]
    fn pretty_indents_and_terminates_with_newline() {
        let j = Json::obj(vec![("a", Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(j.pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::str("a\"b\\c\nd");
        assert_eq!(j.compact(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::INFINITY).compact(), "null");
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
        assert_eq!(Json::Num(2.5).compact(), "2.5");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).compact(), "{}");
    }

    #[test]
    fn set_replaces_and_appends_fields() {
        let mut v = parse(r#"{"a": 1}"#).unwrap();
        v.set("a", Json::Int(2));
        v.set("b", Json::str("new"));
        assert_eq!(v.get("a").unwrap().as_i64(), Some(2));
        assert_eq!(v.get("b").unwrap().as_str(), Some("new"));
        // No-op on non-objects.
        let mut arr = Json::Arr(vec![]);
        arr.set("a", Json::Null);
        assert_eq!(arr, Json::Arr(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn reads_the_artifact_writer_dialect() {
        // The shape `Json::pretty` emits for batch artifacts.
        let doc = "{\n  \"job\": 0,\n  \"energy\": 1.25e-3,\n  \"error\": null\n}\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("job").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("energy").unwrap().as_f64(), Some(0.00125));
        assert_eq!(v.get("error"), Some(&Json::Null));
    }
}
