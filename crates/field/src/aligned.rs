//! Cache-line aligned `f64` buffers.
//!
//! The stencil arrays are the unit of all memory-traffic accounting in the
//! paper, so their base addresses are aligned to 64-byte cache lines: this
//! keeps SIMD loads unsplit and makes the per-row byte counts used by the
//! cache simulator exact (a plane row of `nx` doubles occupies exactly
//! `nx * 8 / 64` lines when `nx` is a multiple of 8).
//!
//! The same 64-byte unit doubles as the SIMD *lane-width guarantee*: any
//! offset that is a multiple of [`LANE_F64`] doubles from the buffer base
//! is aligned for the widest vector registers in use (AVX-512, 8 x f64).
//! `Array3C` rounds its re/im plane stride up with [`round_up_lane`] so
//! both planes of every array inherit this guarantee.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;
use std::slice;

/// Alignment for all field storage, one x86 cache line.
pub const ALIGN: usize = 64;

/// Doubles per cache line — also the widest SIMD lane count (AVX-512)
/// the row kernels dispatch to. Offsets that are multiples of this from
/// an [`AlignedBuf`] base are 64-byte aligned.
pub const LANE_F64: usize = ALIGN / std::mem::size_of::<f64>();

/// Round an element count up to the next multiple of [`LANE_F64`].
pub const fn round_up_lane(len: usize) -> usize {
    len.div_ceil(LANE_F64) * LANE_F64
}

/// A heap buffer of `f64` zero-initialized and aligned to [`ALIGN`] bytes.
///
/// Functionally a fixed-size `Box<[f64]>`; exists because the global
/// allocator only guarantees 16-byte alignment for `f64` slices.
pub struct AlignedBuf {
    ptr: NonNull<f64>,
    len: usize,
}

// SAFETY: AlignedBuf owns its allocation exclusively, like Box<[f64]>.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocate `len` zeroed doubles. `len == 0` is allowed and does not
    /// allocate.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedBuf {
                ptr: NonNull::dangling(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<f64>()) else {
            handle_alloc_error(layout);
        };
        AlignedBuf { ptr, len }
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<f64>(), ALIGN)
            .expect("buffer size overflows Layout")
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn as_ptr(&self) -> *const f64 {
        self.ptr.as_ptr()
    }

    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f64 {
        self.ptr.as_ptr()
    }

    /// Raw mutable pointer without requiring `&mut self`.
    ///
    /// Used by the parallel executor, which partitions index ranges between
    /// threads and guarantees disjoint writes; see
    /// `mwd_core::executor::SharedState` for the safety argument.
    #[inline]
    pub fn as_ptr_shared(&self) -> *mut f64 {
        self.ptr.as_ptr()
    }

    pub fn fill(&mut self, v: f64) {
        self.as_mut_slice().fill(v);
    }

    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: ptr is valid for len elements for the lifetime of self.
        unsafe { slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: ptr is valid for len elements, and &mut self gives
        // exclusive access.
        unsafe { slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated in zeroed() with the identical layout.
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len)) };
        }
    }
}

impl Clone for AlignedBuf {
    fn clone(&self) -> Self {
        let mut new = AlignedBuf::zeroed(self.len);
        new.as_mut_slice().copy_from_slice(self.as_slice());
        new
    }
}

impl Deref for AlignedBuf {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl DerefMut for AlignedBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf(len={})", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let b = AlignedBuf::zeroed(1003);
        assert_eq!(b.len(), 1003);
        assert!(b.iter().all(|&x| x == 0.0));
        assert_eq!(b.as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    fn empty_buffer() {
        let b = AlignedBuf::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.as_slice(), &[] as &[f64]);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut b = AlignedBuf::zeroed(16);
        for (i, x) in b.iter_mut().enumerate() {
            *x = i as f64;
        }
        assert_eq!(b[7], 7.0);
        assert_eq!(b.iter().sum::<f64>(), 120.0);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedBuf::zeroed(8);
        a[3] = 42.0;
        let c = a.clone();
        a[3] = 0.0;
        assert_eq!(c[3], 42.0);
        assert_eq!(c.as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    fn fill_sets_all() {
        let mut b = AlignedBuf::zeroed(33);
        b.fill(2.5);
        assert!(b.iter().all(|&x| x == 2.5));
    }

    #[test]
    fn many_allocations_stay_aligned() {
        for len in [1usize, 7, 8, 9, 63, 64, 65, 4096] {
            let b = AlignedBuf::zeroed(len);
            assert_eq!(b.as_ptr() as usize % ALIGN, 0, "len={len}");
        }
    }

    #[test]
    fn lane_constants_are_consistent() {
        assert_eq!(LANE_F64, 8);
        assert_eq!(round_up_lane(0), 0);
        assert_eq!(round_up_lane(1), 8);
        assert_eq!(round_up_lane(8), 8);
        assert_eq!(round_up_lane(9), 16);
        // A lane-rounded offset from an aligned base stays aligned.
        let b = AlignedBuf::zeroed(round_up_lane(13) * 2);
        let second = unsafe { b.as_ptr().add(round_up_lane(13)) };
        assert_eq!(second as usize % ALIGN, 0);
    }
}
