//! # em-field — storage substrate for the THIIM/FDFD split-field stencil
//!
//! This crate provides the data layer of the reproduction: double-complex
//! 3-D arrays stored as *split re/im planes* (two contiguous `f64` planes
//! per array, x fastest, then y, then z — unlike the paper's production
//! code, which interleaves `re, im` pairs), the twelve Berenger
//! split-field components of the electric and magnetic fields, and the 28
//! domain-sized coefficient arrays, for a total of 40 arrays and 640 bytes
//! per grid cell (Sec. III of the paper). The split layout keeps every
//! kernel access unit-stride so the row updates vectorize; see
//! [`array3`] for the plane-stride and alignment guarantees.
//!
//! Component naming follows the paper's Fig. 3 / Listings 1–2 convention:
//! the **first** subscript is the vector component the array contributes to,
//! the **second** subscript is the *source* component of the other field
//! that the update reads. For example `Hyx` is the part of `H_y` that is
//! driven by `E_x = Exy + Exz`, read with a unit shift along z.
//!
//! All arrays carry a one-cell zero halo in every dimension, giving
//! homogeneous Dirichlet boundaries for free — the boundary condition the
//! paper uses for all its benchmark experiments (Sec. II-B).

pub mod aligned;
pub mod array3;
pub mod complex;
pub mod component;
pub mod fields;
pub mod grid;
pub mod norms;

pub use aligned::{AlignedBuf, LANE_F64};
pub use array3::Array3C;
pub use complex::Cplx;
pub use component::{Axis, Component, FieldKind, SourceArray, TotalComponent};
pub use fields::{CoeffSet, FieldSet, State};
pub use grid::GridDims;
