//! The twelve split-field components and their dependency metadata.
//!
//! Naming convention (paper Fig. 3): `Fab` is the split part of vector
//! component `a` of field `F` that is *sourced by* component `b` of the
//! other field. The finite-difference derivative runs along the third axis
//! `d` with `{a, b, d} = {x, y, z}`, and the sign of the curl term is the
//! Levi-Civita symbol `eps(a, d, b)`.
//!
//! The paper's red bracket labels are reproduced exactly by
//! [`Component::deriv_axis`] + [`Component::offset_dir`]:
//! `Hyx [z-], Hyz [x-], Hzx [y-], Hzy [x-], Hxy [z-], Hxz [y-]` and
//! `Eyx [z+], Eyz [x+], Ezx [y+], Ezy [x+], Exy [z+], Exz [y+]`.

/// Spatial axis. `X` is the fast/contiguous dimension, `Y` the diamond
/// tiling dimension, `Z` the wavefront dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    X,
    Y,
    Z,
}

impl Axis {
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// The remaining axis given two distinct axes.
    pub fn third(a: Axis, b: Axis) -> Axis {
        assert_ne!(a, b, "axes must be distinct");
        *Axis::ALL
            .iter()
            .find(|&&c| c != a && c != b)
            .expect("exactly one axis remains")
    }

    /// Levi-Civita symbol eps(a, b, c): +1 for cyclic (x,y,z), -1 for
    /// anti-cyclic, 0 with repeats.
    pub fn levi_civita(a: Axis, b: Axis, c: Axis) -> i32 {
        use Axis::*;
        match (a, b, c) {
            (X, Y, Z) | (Y, Z, X) | (Z, X, Y) => 1,
            (X, Z, Y) | (Z, Y, X) | (Y, X, Z) => -1,
            _ => 0,
        }
    }

    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }
}

/// Which of the two coupled fields a component belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// Electric field, updated second in each time step, reads H at `+1`
    /// offsets (forward difference on the staggered grid).
    E,
    /// Magnetic field, updated first in each time step, reads E at `-1`
    /// offsets (backward difference).
    H,
}

impl FieldKind {
    pub fn other(self) -> FieldKind {
        match self {
            FieldKind::E => FieldKind::H,
            FieldKind::H => FieldKind::E,
        }
    }

    /// Offset direction of the neighbor read: +1 for E, -1 for H.
    pub fn offset_dir(self) -> isize {
        match self {
            FieldKind::E => 1,
            FieldKind::H => -1,
        }
    }
}

/// A *total* (unsplit) vector component such as `E_x = Exy + Exz`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TotalComponent {
    pub kind: FieldKind,
    pub axis: Axis,
}

impl TotalComponent {
    /// The two split parts whose sum is this total component.
    pub fn splits(self) -> [Component; 2] {
        let mut out = [Component::Exy; 2];
        let mut n = 0;
        for c in Component::ALL {
            if c.field_kind() == self.kind && c.axis() == self.axis {
                out[n] = c;
                n += 1;
            }
        }
        assert_eq!(n, 2, "every total component has exactly two split parts");
        out
    }
}

/// The four domain-sized source arrays. Only the four components whose
/// derivative runs along z carry a source term (the plane-wave drive is
/// vertical), yielding the paper's 4*3 + 8*2 = 28 coefficient arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SourceArray {
    SrcHx,
    SrcHy,
    SrcEx,
    SrcEy,
}

impl SourceArray {
    pub const ALL: [SourceArray; 4] = [
        SourceArray::SrcHx,
        SourceArray::SrcHy,
        SourceArray::SrcEx,
        SourceArray::SrcEy,
    ];

    pub fn index(self) -> usize {
        match self {
            SourceArray::SrcHx => 0,
            SourceArray::SrcHy => 1,
            SourceArray::SrcEx => 2,
            SourceArray::SrcEy => 3,
        }
    }
}

/// One of the twelve split-field components.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    Exy,
    Exz,
    Eyx,
    Eyz,
    Ezx,
    Ezy,
    Hxy,
    Hxz,
    Hyx,
    Hyz,
    Hzx,
    Hzy,
}

impl Component {
    pub const ALL: [Component; 12] = [
        Component::Exy,
        Component::Exz,
        Component::Eyx,
        Component::Eyz,
        Component::Ezx,
        Component::Ezy,
        Component::Hxy,
        Component::Hxz,
        Component::Hyx,
        Component::Hyz,
        Component::Hzx,
        Component::Hzy,
    ];

    /// The six electric split components, in update order.
    pub const E_ALL: [Component; 6] = [
        Component::Exy,
        Component::Exz,
        Component::Eyx,
        Component::Eyz,
        Component::Ezx,
        Component::Ezy,
    ];

    /// The six magnetic split components, in update order.
    pub const H_ALL: [Component; 6] = [
        Component::Hxy,
        Component::Hxz,
        Component::Hyx,
        Component::Hyz,
        Component::Hzx,
        Component::Hzy,
    ];

    pub fn of(kind: FieldKind) -> [Component; 6] {
        match kind {
            FieldKind::E => Self::E_ALL,
            FieldKind::H => Self::H_ALL,
        }
    }

    /// Stable dense index 0..12 (E components first).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("component in ALL")
    }

    pub fn field_kind(self) -> FieldKind {
        use Component::*;
        match self {
            Exy | Exz | Eyx | Eyz | Ezx | Ezy => FieldKind::E,
            _ => FieldKind::H,
        }
    }

    /// First subscript: the vector component this array contributes to.
    pub fn axis(self) -> Axis {
        use Component::*;
        match self {
            Exy | Exz | Hxy | Hxz => Axis::X,
            Eyx | Eyz | Hyx | Hyz => Axis::Y,
            Ezx | Ezy | Hzx | Hzy => Axis::Z,
        }
    }

    /// Second subscript: the source component of the *other* field.
    pub fn src_axis(self) -> Axis {
        use Component::*;
        match self {
            Eyx | Ezx | Hyx | Hzx => Axis::X,
            Exy | Ezy | Hxy | Hzy => Axis::Y,
            Exz | Eyz | Hxz | Hyz => Axis::Z,
        }
    }

    /// The finite-difference axis: the third axis besides `axis` and
    /// `src_axis`. Determines the stencil offset direction of this update.
    pub fn deriv_axis(self) -> Axis {
        Axis::third(self.axis(), self.src_axis())
    }

    /// Offset direction of the neighbor read along `deriv_axis`:
    /// -1 for H components (backward), +1 for E (forward).
    pub fn offset_dir(self) -> isize {
        self.field_kind().offset_dir()
    }

    /// Curl sign eps(axis, deriv_axis, src_axis) applied to the difference
    /// term; see Listings 1-2 of the paper for the two H conventions this
    /// reproduces.
    pub fn curl_sign(self) -> f64 {
        Axis::levi_civita(self.axis(), self.deriv_axis(), self.src_axis()) as f64
    }

    /// The total component this update reads: the opposite field's
    /// `src_axis` component (both split parts are summed in the kernel).
    pub fn source_total(self) -> TotalComponent {
        TotalComponent {
            kind: self.field_kind().other(),
            axis: self.src_axis(),
        }
    }

    /// The two arrays read by this update (e.g. `Hyx` reads `Exy` and `Exz`).
    pub fn source_splits(self) -> [Component; 2] {
        self.source_total().splits()
    }

    /// The source array added by this update, if any. Exactly the four
    /// z-derivative components carry one (paper Listing 1 vs Listing 2).
    pub fn source_array(self) -> Option<SourceArray> {
        if self.deriv_axis() != Axis::Z {
            return None;
        }
        Some(match (self.field_kind(), self.axis()) {
            (FieldKind::H, Axis::X) => SourceArray::SrcHx,
            (FieldKind::H, Axis::Y) => SourceArray::SrcHy,
            (FieldKind::E, Axis::X) => SourceArray::SrcEx,
            (FieldKind::E, Axis::Y) => SourceArray::SrcEy,
            _ => unreachable!("z-axis components never have a z derivative"),
        })
    }

    /// Number of coefficient arrays this update reads (Listing 1: 3 with
    /// the source, Listing 2: 2 without).
    pub fn coeff_arrays(self) -> usize {
        if self.source_array().is_some() {
            3
        } else {
            2
        }
    }

    /// Floating-point operations performed per cell by this update:
    /// 22 for Listing-1-type updates (with source), 20 for Listing-2-type.
    pub fn flops(self) -> usize {
        if self.source_array().is_some() {
            22
        } else {
            20
        }
    }

    pub fn name(self) -> &'static str {
        use Component::*;
        match self {
            Exy => "Exy",
            Exz => "Exz",
            Eyx => "Eyx",
            Eyz => "Eyz",
            Ezx => "Ezx",
            Ezy => "Ezy",
            Hxy => "Hxy",
            Hxz => "Hxz",
            Hyx => "Hyx",
            Hyz => "Hyz",
            Hzx => "Hzx",
            Hzy => "Hzy",
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_components_six_per_field() {
        assert_eq!(Component::ALL.len(), 12);
        assert_eq!(
            Component::E_ALL
                .iter()
                .filter(|c| c.field_kind() == FieldKind::E)
                .count(),
            6
        );
        assert_eq!(
            Component::H_ALL
                .iter()
                .filter(|c| c.field_kind() == FieldKind::H)
                .count(),
            6
        );
    }

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn paper_fig3_offset_labels() {
        use Axis::*;
        use Component::*;
        // H components: Hyx [z-], Hyz [x-], Hzx [y-], Hzy [x-], Hxy [z-], Hxz [y-]
        let h_expect = [(Hyx, Z), (Hyz, X), (Hzx, Y), (Hzy, X), (Hxy, Z), (Hxz, Y)];
        for (c, ax) in h_expect {
            assert_eq!(c.deriv_axis(), ax, "{c}");
            assert_eq!(c.offset_dir(), -1, "{c}");
        }
        // E components: Eyx [z+], Eyz [x+], Ezx [y+], Ezy [x+], Exy [z+], Exz [y+]
        let e_expect = [(Eyx, Z), (Eyz, X), (Ezx, Y), (Ezy, X), (Exy, Z), (Exz, Y)];
        for (c, ax) in e_expect {
            assert_eq!(c.deriv_axis(), ax, "{c}");
            assert_eq!(c.offset_dir(), 1, "{c}");
        }
    }

    #[test]
    fn source_splits_sum_to_total_component() {
        use Component::*;
        // Hyx reads E_x = Exy + Exz (Listing 1).
        assert_eq!(Hyx.source_splits(), [Exy, Exz]);
        // Hzx also reads E_x (Listing 2).
        assert_eq!(Hzx.source_splits(), [Exy, Exz]);
        // Exy reads H_y = Hyx + Hyz.
        assert_eq!(Exy.source_splits(), [Hyx, Hyz]);
        for c in Component::ALL {
            let [s1, s2] = c.source_splits();
            assert_eq!(s1.field_kind(), c.field_kind().other());
            assert_eq!(s2.field_kind(), c.field_kind().other());
            assert_eq!(s1.axis(), c.src_axis());
            assert_eq!(s2.axis(), c.src_axis());
            assert_ne!(s1, s2);
        }
    }

    #[test]
    fn exactly_four_components_have_sources() {
        use Component::*;
        let with_src: Vec<_> = Component::ALL
            .iter()
            .filter(|c| c.source_array().is_some())
            .collect();
        assert_eq!(with_src.len(), 4);
        assert_eq!(Hyx.source_array(), Some(SourceArray::SrcHy));
        assert_eq!(Hxy.source_array(), Some(SourceArray::SrcHx));
        assert_eq!(Eyx.source_array(), Some(SourceArray::SrcEy));
        assert_eq!(Exy.source_array(), Some(SourceArray::SrcEx));
    }

    #[test]
    fn coefficient_array_count_matches_paper() {
        // Sec. III: 4*3 + 8*2 = 28 domain-sized coefficient arrays.
        let total: usize = Component::ALL.iter().map(|c| c.coeff_arrays()).sum();
        assert_eq!(total, 28);
    }

    #[test]
    fn flop_count_matches_paper() {
        // Sec. III-A: 4*22 + 8*20 = 248 flops per lattice-site update.
        let total: usize = Component::ALL.iter().map(|c| c.flops()).sum();
        assert_eq!(total, 248);
    }

    #[test]
    fn curl_signs_match_listings() {
        use Component::*;
        // Listing 1 (Hyx): update subtracts c*(center - neighbor) => sign +1.
        assert_eq!(Hyx.curl_sign(), 1.0);
        // Listing 2 (Hzx): update subtracts c*(neighbor - center) => sign -1
        // under the same (center - neighbor) difference convention.
        assert_eq!(Hzx.curl_sign(), -1.0);
        // Every sign is +-1, never 0 (axes always distinct).
        for c in Component::ALL {
            assert!(c.curl_sign().abs() == 1.0, "{c}");
        }
        // Curl structure: the two split parts of the same total component
        // carry opposite signs with derivative axes swapped.
        for kind in [FieldKind::E, FieldKind::H] {
            for axis in Axis::ALL {
                let [a, b] = TotalComponent { kind, axis }.splits();
                assert_eq!(a.curl_sign() * b.curl_sign(), -1.0, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn levi_civita_table() {
        use Axis::*;
        assert_eq!(Axis::levi_civita(X, Y, Z), 1);
        assert_eq!(Axis::levi_civita(Z, X, Y), 1);
        assert_eq!(Axis::levi_civita(Y, X, Z), -1);
        assert_eq!(Axis::levi_civita(X, X, Z), 0);
    }

    #[test]
    fn third_axis_is_the_remaining_one() {
        use Axis::*;
        assert_eq!(Axis::third(X, Y), Z);
        assert_eq!(Axis::third(Z, X), Y);
        assert_eq!(Axis::third(Y, Z), X);
    }

    #[test]
    #[should_panic(expected = "axes must be distinct")]
    fn third_axis_rejects_equal() {
        let _ = Axis::third(Axis::X, Axis::X);
    }
}
