//! The full 40-array problem state: 12 split-field components plus 28
//! coefficient arrays (t/c per component and the four source arrays).

use crate::array3::Array3C;
use crate::complex::Cplx;
use crate::component::{Component, SourceArray};
use crate::grid::GridDims;

/// The twelve split-field component arrays.
#[derive(Clone, Debug)]
pub struct FieldSet {
    arrays: Vec<Array3C>,
    dims: GridDims,
}

impl FieldSet {
    pub fn zeros(dims: GridDims) -> Self {
        FieldSet {
            arrays: (0..12).map(|_| Array3C::zeros(dims)).collect(),
            dims,
        }
    }

    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    #[inline]
    pub fn comp(&self, c: Component) -> &Array3C {
        &self.arrays[c.index()]
    }

    #[inline]
    pub fn comp_mut(&mut self, c: Component) -> &mut Array3C {
        &mut self.arrays[c.index()]
    }

    /// Total (unsplit) value of component `c.axis()`'s field at a cell,
    /// e.g. `E_x = Exy + Exz`.
    pub fn total(
        &self,
        kind: crate::component::FieldKind,
        axis: crate::component::Axis,
        x: isize,
        y: isize,
        z: isize,
    ) -> Cplx {
        let [a, b] = crate::component::TotalComponent { kind, axis }.splits();
        self.comp(a).get(x, y, z) + self.comp(b).get(x, y, z)
    }

    pub fn iter(&self) -> impl Iterator<Item = (Component, &Array3C)> {
        Component::ALL.iter().map(move |&c| (c, self.comp(c)))
    }

    /// Bitwise equality across all 12 components.
    pub fn bit_eq(&self, other: &FieldSet) -> bool {
        Component::ALL
            .iter()
            .all(|&c| self.comp(c).bit_eq(other.comp(c)))
    }

    /// Largest absolute elementwise difference across all components.
    pub fn max_abs_diff(&self, other: &FieldSet) -> f64 {
        let mut m: f64 = 0.0;
        for &c in &Component::ALL {
            for (a, b) in self.comp(c).as_slice().iter().zip(other.comp(c).as_slice()) {
                m = m.max((a - b).abs());
            }
        }
        m
    }

    /// Sum of |v|^2 over all components and interior cells — a simple
    /// energy-like norm used by convergence monitors and stability tests.
    pub fn energy(&self) -> f64 {
        Component::ALL
            .iter()
            .map(|&c| {
                self.comp(c)
                    .iter_interior()
                    .map(|(_, v)| v.norm_sqr())
                    .sum::<f64>()
            })
            .sum()
    }

    /// Deterministic pseudo-random fill (splitmix64 on the cell index),
    /// used by correctness tests to exercise all code paths with nontrivial
    /// data while staying reproducible across engines and thread counts.
    pub fn fill_deterministic(&mut self, seed: u64) {
        for (ci, &c) in Component::ALL.iter().enumerate() {
            let arr = self.comp_mut(c);
            let mut k = 0u64;
            arr.fill_with(|_, _, _| {
                k += 1;
                let h = splitmix64(seed ^ (ci as u64) << 32 ^ k);
                let re = unit(h);
                let im = unit(splitmix64(h));
                Cplx::new(re, im)
            });
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Map to (-1, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// The 28 coefficient arrays: for every component a transfer factor `t*`
/// and a curl factor `c*`; for the four z-derivative components also a
/// source array.
#[derive(Clone, Debug)]
pub struct CoeffSet {
    t: Vec<Array3C>,
    c: Vec<Array3C>,
    src: Vec<Array3C>,
    dims: GridDims,
}

impl CoeffSet {
    /// All-zero coefficients (fields stay frozen; useful in tests).
    pub fn zeros(dims: GridDims) -> Self {
        CoeffSet {
            t: (0..12).map(|_| Array3C::zeros(dims)).collect(),
            c: (0..12).map(|_| Array3C::zeros(dims)).collect(),
            src: (0..4).map(|_| Array3C::zeros(dims)).collect(),
            dims,
        }
    }

    /// Uniform coefficients: every `t` = `t0`, every `c` = `c0`, sources 0.
    /// A cheap stand-in for vacuum when the physics layer is not needed.
    pub fn uniform(dims: GridDims, t0: Cplx, c0: Cplx) -> Self {
        let mut s = Self::zeros(dims);
        for i in 0..12 {
            s.t[i].fill_with(|_, _, _| t0);
            s.c[i].fill_with(|_, _, _| c0);
        }
        s
    }

    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    #[inline]
    pub fn t(&self, comp: Component) -> &Array3C {
        &self.t[comp.index()]
    }

    #[inline]
    pub fn t_mut(&mut self, comp: Component) -> &mut Array3C {
        &mut self.t[comp.index()]
    }

    #[inline]
    pub fn c(&self, comp: Component) -> &Array3C {
        &self.c[comp.index()]
    }

    #[inline]
    pub fn c_mut(&mut self, comp: Component) -> &mut Array3C {
        &mut self.c[comp.index()]
    }

    #[inline]
    pub fn src(&self, s: SourceArray) -> &Array3C {
        &self.src[s.index()]
    }

    #[inline]
    pub fn src_mut(&mut self, s: SourceArray) -> &mut Array3C {
        &mut self.src[s.index()]
    }

    /// Number of domain-sized arrays held (the paper's 28).
    pub fn array_count(&self) -> usize {
        self.t.len() + self.c.len() + self.src.len()
    }

    /// Deterministic pseudo-random coefficients with |t| < 1 (contractive,
    /// so iteration stays bounded) and small |c|.
    pub fn fill_deterministic(&mut self, seed: u64) {
        for i in 0..12u64 {
            let mut k = 0u64;
            self.t[i as usize].fill_with(|_, _, _| {
                k += 1;
                let h = splitmix64(seed ^ (0x7000 + i) << 16 ^ k);
                Cplx::new(unit(h) * 0.45, unit(splitmix64(h)) * 0.45)
            });
            let mut k2 = 0u64;
            self.c[i as usize].fill_with(|_, _, _| {
                k2 += 1;
                let h = splitmix64(seed ^ (0xc000 + i) << 16 ^ k2);
                Cplx::new(unit(h) * 0.2, unit(splitmix64(h)) * 0.2)
            });
        }
        for j in 0..4u64 {
            let mut k = 0u64;
            self.src[j as usize].fill_with(|_, _, _| {
                k += 1;
                let h = splitmix64(seed ^ (0x5c00 + j) << 16 ^ k);
                Cplx::new(unit(h) * 0.01, unit(splitmix64(h)) * 0.01)
            });
        }
    }
}

/// The complete problem state passed to the execution engines.
#[derive(Clone, Debug)]
pub struct State {
    pub fields: FieldSet,
    pub coeffs: CoeffSet,
}

impl State {
    pub fn zeros(dims: GridDims) -> Self {
        State {
            fields: FieldSet::zeros(dims),
            coeffs: CoeffSet::zeros(dims),
        }
    }

    pub fn dims(&self) -> GridDims {
        self.fields.dims()
    }

    /// Total domain-sized arrays: 12 + 28 = 40 (Sec. III).
    pub fn array_count(&self) -> usize {
        12 + self.coeffs.array_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Axis, FieldKind};

    #[test]
    fn forty_domain_sized_arrays() {
        let s = State::zeros(GridDims::cubic(2));
        assert_eq!(s.array_count(), 40);
        assert_eq!(s.coeffs.array_count(), 28);
    }

    #[test]
    fn component_arrays_are_independent() {
        let mut f = FieldSet::zeros(GridDims::cubic(2));
        f.comp_mut(Component::Hyx).set(0, 0, 0, Cplx::ONE);
        assert_eq!(f.comp(Component::Hyx).get(0, 0, 0), Cplx::ONE);
        assert_eq!(f.comp(Component::Hyz).get(0, 0, 0), Cplx::ZERO);
    }

    #[test]
    fn total_sums_split_parts() {
        let mut f = FieldSet::zeros(GridDims::cubic(2));
        f.comp_mut(Component::Exy).set(1, 1, 1, Cplx::new(2.0, 0.5));
        f.comp_mut(Component::Exz)
            .set(1, 1, 1, Cplx::new(-0.5, 1.0));
        assert_eq!(f.total(FieldKind::E, Axis::X, 1, 1, 1), Cplx::new(1.5, 1.5));
    }

    #[test]
    fn deterministic_fill_is_reproducible_and_seed_sensitive() {
        let d = GridDims::new(3, 4, 2);
        let mut a = FieldSet::zeros(d);
        let mut b = FieldSet::zeros(d);
        a.fill_deterministic(7);
        b.fill_deterministic(7);
        assert!(a.bit_eq(&b));
        let mut c = FieldSet::zeros(d);
        c.fill_deterministic(8);
        assert!(!a.bit_eq(&c));
    }

    #[test]
    fn deterministic_coeffs_are_contractive() {
        let d = GridDims::new(3, 3, 3);
        let mut cs = CoeffSet::zeros(d);
        cs.fill_deterministic(3);
        for &comp in &Component::ALL {
            for (_, v) in cs.t(comp).iter_interior() {
                assert!(v.abs() < 1.0, "|t| must stay below 1 for boundedness");
            }
        }
    }

    #[test]
    fn energy_of_zero_state_is_zero_and_grows_with_fields() {
        let d = GridDims::cubic(3);
        let mut f = FieldSet::zeros(d);
        assert_eq!(f.energy(), 0.0);
        f.comp_mut(Component::Ezy).set(0, 0, 0, Cplx::new(3.0, 4.0));
        assert_eq!(f.energy(), 25.0);
    }

    #[test]
    fn max_abs_diff_reports_largest_gap() {
        let d = GridDims::cubic(2);
        let mut a = FieldSet::zeros(d);
        let b = FieldSet::zeros(d);
        a.comp_mut(Component::Hzy)
            .set(1, 0, 1, Cplx::new(0.0, -2.5));
        assert_eq!(a.max_abs_diff(&b), 2.5);
    }

    #[test]
    fn uniform_coeffs_set_t_and_c_only() {
        let d = GridDims::cubic(2);
        let cs = CoeffSet::uniform(d, Cplx::real(0.5), Cplx::new(0.0, 0.1));
        assert_eq!(cs.t(Component::Exy).get(1, 1, 1), Cplx::real(0.5));
        assert_eq!(cs.c(Component::Hzx).get(0, 0, 0), Cplx::new(0.0, 0.1));
        assert_eq!(cs.src(SourceArray::SrcHx).get(0, 0, 0), Cplx::ZERO);
    }
}
