//! Grid dimensions and derived sizes.

/// Interior dimensions of the structured grid (without halo).
///
/// Axis convention matches the paper: `x` is the fast-moving (inner,
/// contiguous) dimension, `y` the middle dimension used for diamond tiling,
/// `z` the outer dimension used for the wavefront traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridDims {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl GridDims {
    pub const fn new(nx: usize, ny: usize, nz: usize) -> Self {
        GridDims { nx, ny, nz }
    }

    /// Cubic grid of side `n` — all paper experiments use cubic domains.
    pub const fn cubic(n: usize) -> Self {
        GridDims {
            nx: n,
            ny: n,
            nz: n,
        }
    }

    /// Number of interior grid cells.
    pub const fn cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Bytes of state per grid cell: 40 double-complex arrays
    /// (12 field components + 28 coefficients), Sec. III of the paper.
    pub const BYTES_PER_CELL: usize = 40 * 16;

    /// Total resident bytes for a full problem state (excluding halo).
    pub const fn state_bytes(&self) -> usize {
        self.cells() * Self::BYTES_PER_CELL
    }

    /// Bytes in one *logical* x-row of one array, halo excluded: the block
    /// unit used by the row-granularity cache simulator. With the split
    /// re/im layout a logical row is two plane rows of
    /// [`Self::plane_row_bytes`] each — the total moved per row is
    /// unchanged from the interleaved layout, so all code-balance numbers
    /// of the paper carry over.
    pub const fn row_bytes(&self) -> usize {
        2 * self.plane_row_bytes()
    }

    /// Bytes in one x-row of one re or im *plane* of one array: `nx`
    /// doubles. Two of these (at `im_offset()` distance) make up a logical
    /// row of [`Self::row_bytes`].
    pub const fn plane_row_bytes(&self) -> usize {
        self.nx * 8
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.nx == 0 || self.ny == 0 || self.nz == 0 {
            return Err(format!("grid dimensions must be positive, got {self:?}"));
        }
        Ok(())
    }
}

impl std::fmt::Display for GridDims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_storage_requirement() {
        // Sec. III: "16 * 40 bytes = 640 bytes per grid cell".
        assert_eq!(GridDims::BYTES_PER_CELL, 640);
    }

    #[test]
    fn cubic_and_cells() {
        let g = GridDims::cubic(64);
        assert_eq!(g.cells(), 64 * 64 * 64);
        assert_eq!(g, GridDims::new(64, 64, 64));
    }

    #[test]
    fn state_bytes_for_paper_grid() {
        // At 384^3 the state is ~36 GB, which is why paper-scale grids run
        // through the simulator substrate rather than natively.
        let g = GridDims::cubic(384);
        assert_eq!(g.state_bytes(), 384usize.pow(3) * 640);
    }

    #[test]
    fn row_bytes_is_two_plane_rows() {
        let g = GridDims::new(48, 4, 4);
        assert_eq!(g.plane_row_bytes(), 48 * 8);
        assert_eq!(g.row_bytes(), 48 * 16);
    }

    #[test]
    fn validate_rejects_zero() {
        assert!(GridDims::new(0, 4, 4).validate().is_err());
        assert!(GridDims::new(4, 4, 4).validate().is_ok());
    }

    #[test]
    fn display_formats() {
        assert_eq!(GridDims::new(1, 2, 3).to_string(), "1x2x3");
    }
}
