//! Norms and comparisons over field sets — the measurement helpers used by
//! convergence monitors, validation tests and the MWD-vs-naive oracle.

use crate::array3::Array3C;
use crate::complex::Cplx;
use crate::component::Component;
use crate::fields::FieldSet;

/// Visit every interior x-row of `a` as two contiguous slices
/// `(re_row, im_row)` — the split-plane layout makes each row
/// unit-stride, so reductions stream instead of gathering cell by cell.
fn for_each_interior_row(a: &Array3C, mut f: impl FnMut(&[f64], &[f64])) {
    let d = a.dims();
    let (buf, im) = (a.as_slice(), a.im_offset());
    for z in 0..d.nz {
        for y in 0..d.ny {
            let base = a.idx(0, y as isize, z as isize);
            f(&buf[base..base + d.nx], &buf[im + base..im + base + d.nx]);
        }
    }
}

/// L2 norm over the interior of a single array.
pub fn l2(a: &Array3C) -> f64 {
    let mut sum = 0.0;
    for_each_interior_row(a, |re, im| {
        sum += re.iter().map(|v| v * v).sum::<f64>() + im.iter().map(|v| v * v).sum::<f64>();
    });
    sum.sqrt()
}

/// L-infinity norm over the interior of a single array.
pub fn linf(a: &Array3C) -> f64 {
    let mut m = 0.0f64;
    for_each_interior_row(a, |re, im| {
        for (r, i) in re.iter().zip(im) {
            m = m.max(Cplx::new(*r, *i).abs());
        }
    });
    m
}

/// L2 norm of the difference of two arrays.
pub fn l2_diff(a: &Array3C, b: &Array3C) -> f64 {
    assert_eq!(a.dims(), b.dims());
    a.iter_interior()
        .zip(b.iter_interior())
        .map(|((_, va), (_, vb))| (va - vb).norm_sqr())
        .sum::<f64>()
        .sqrt()
}

/// Relative L2 change between two field sets:
/// `||a - b||_2 / max(||b||_2, eps)` summed over all 12 components.
/// This is the THIIM convergence functional.
pub fn relative_change(a: &FieldSet, b: &FieldSet) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for &c in &Component::ALL {
        for ((_, va), (_, vb)) in a.comp(c).iter_interior().zip(b.comp(c).iter_interior()) {
            num += (va - vb).norm_sqr();
            den += vb.norm_sqr();
        }
    }
    (num / den.max(f64::MIN_POSITIVE)).sqrt()
}

/// Report of the first bitwise mismatch between two field sets, for
/// diagnosing scheduling bugs. `None` means bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    pub component: Component,
    pub cell: (usize, usize, usize),
    pub a: Cplx,
    pub b: Cplx,
}

pub fn first_mismatch(a: &FieldSet, b: &FieldSet) -> Option<Mismatch> {
    for &c in &Component::ALL {
        let (aa, bb) = (a.comp(c), b.comp(c));
        for ((cell, va), (_, vb)) in aa.iter_interior().zip(bb.iter_interior()) {
            if va.re.to_bits() != vb.re.to_bits() || va.im.to_bits() != vb.im.to_bits() {
                return Some(Mismatch {
                    component: c,
                    cell,
                    a: va,
                    b: vb,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridDims;

    #[test]
    fn l2_of_unit_impulse() {
        let mut a = Array3C::zeros(GridDims::cubic(3));
        a.set(1, 1, 1, Cplx::new(3.0, 4.0));
        assert_eq!(l2(&a), 5.0);
        assert_eq!(linf(&a), 5.0);
    }

    #[test]
    fn l2_diff_is_symmetric_and_zero_on_equal() {
        let d = GridDims::new(2, 3, 2);
        let mut a = Array3C::zeros(d);
        let mut b = Array3C::zeros(d);
        a.set(0, 1, 0, Cplx::ONE);
        b.set(0, 1, 0, Cplx::ONE);
        assert_eq!(l2_diff(&a, &b), 0.0);
        b.set(1, 2, 1, Cplx::new(0.0, 2.0));
        assert_eq!(l2_diff(&a, &b), 2.0);
        assert_eq!(l2_diff(&b, &a), 2.0);
    }

    #[test]
    fn relative_change_detects_convergence() {
        let d = GridDims::cubic(2);
        let mut a = FieldSet::zeros(d);
        let mut b = FieldSet::zeros(d);
        a.fill_deterministic(5);
        b.fill_deterministic(5);
        assert_eq!(relative_change(&a, &b), 0.0);
    }

    #[test]
    fn first_mismatch_locates_the_cell() {
        let d = GridDims::cubic(3);
        let mut a = FieldSet::zeros(d);
        let b = FieldSet::zeros(d);
        a.comp_mut(Component::Eyz).set(2, 0, 1, Cplx::new(1.0, 0.0));
        let m = first_mismatch(&a, &b).expect("must find the planted mismatch");
        assert_eq!(m.component, Component::Eyz);
        assert_eq!(m.cell, (2, 0, 1));
        assert_eq!(first_mismatch(&b, &b), None);
    }
}
