//! Split re/im 3-D arrays with a one-cell zero halo.
//!
//! Unlike the paper's C code (which interleaves `re, im` pairs), each
//! array stores two contiguous `f64` planes: all real parts first, then
//! all imaginary parts, each with x contiguous, then y, then z:
//! `idx(x, y, z) = ((z+1) * py + (y+1)) * px + (x+1)` where `px = nx + 2`
//! etc. include the halo, and the imaginary part of a value lives at
//! `idx + im_offset()`. The split layout makes every kernel access
//! unit-stride, which is what lets the SIMD row kernels in `em_kernels`
//! fill whole vector registers with one load.
//!
//! The plane stride is rounded up to a whole number of cache lines
//! ([`crate::aligned::round_up_lane`]) so both planes start 64-byte
//! aligned; the padding gap between the planes is never written and
//! stays zero. Interior coordinates are `0..nx`; the halo at `-1` and
//! `n` stays zero, which realizes the homogeneous Dirichlet boundaries
//! the paper benchmarks with.

use crate::aligned::{round_up_lane, AlignedBuf};
use crate::complex::Cplx;
use crate::grid::GridDims;

/// One double-complex field or coefficient array, stored as split
/// re/im planes.
#[derive(Clone, Debug)]
pub struct Array3C {
    buf: AlignedBuf,
    dims: GridDims,
    /// Padded extents (interior + 2 halo cells).
    px: usize,
    py: usize,
    pz: usize,
    /// f64 distance from a value's real part to its imaginary part:
    /// the lane-rounded plane size `round_up_lane(px * py * pz)`.
    plane: usize,
}

impl Array3C {
    pub fn zeros(dims: GridDims) -> Self {
        let (px, py, pz) = (dims.nx + 2, dims.ny + 2, dims.nz + 2);
        let plane = round_up_lane(px * py * pz);
        Array3C {
            buf: AlignedBuf::zeroed(2 * plane),
            dims,
            px,
            py,
            pz,
            plane,
        }
    }

    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Padded extents including the halo, `(nx+2, ny+2, nz+2)`.
    #[inline]
    pub fn padded_extents(&self) -> (usize, usize, usize) {
        (self.px, self.py, self.pz)
    }

    /// f64 distance between consecutive y rows (within one plane).
    #[inline]
    pub fn y_stride(&self) -> usize {
        self.px
    }

    /// f64 distance between consecutive z planes (within one plane).
    #[inline]
    pub fn z_stride(&self) -> usize {
        self.px * self.py
    }

    /// f64 distance from a value's real part to its imaginary part.
    #[inline]
    pub fn im_offset(&self) -> usize {
        self.plane
    }

    /// Flat index of the real part of interior cell `(x, y, z)`; the
    /// imaginary part lives at `idx + im_offset()`.
    /// Halo cells are addressable with coordinates `-1` and `n`.
    #[inline]
    pub fn idx(&self, x: isize, y: isize, z: isize) -> usize {
        debug_assert!(
            x >= -1 && x <= self.dims.nx as isize,
            "x={x} out of halo range"
        );
        debug_assert!(
            y >= -1 && y <= self.dims.ny as isize,
            "y={y} out of halo range"
        );
        debug_assert!(
            z >= -1 && z <= self.dims.nz as isize,
            "z={z} out of halo range"
        );
        let xi = (x + 1) as usize;
        let yi = (y + 1) as usize;
        let zi = (z + 1) as usize;
        (zi * self.py + yi) * self.px + xi
    }

    #[inline]
    pub fn get(&self, x: isize, y: isize, z: isize) -> Cplx {
        let i = self.idx(x, y, z);
        Cplx::new(self.buf[i], self.buf[i + self.plane])
    }

    #[inline]
    pub fn set(&mut self, x: isize, y: isize, z: isize, v: Cplx) {
        let i = self.idx(x, y, z);
        self.buf[i] = v.re;
        self.buf[i + self.plane] = v.im;
    }

    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        self.buf.as_slice()
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.buf.as_mut_slice()
    }

    /// Base pointer for the raw kernels. See `AlignedBuf::as_ptr_shared`
    /// for the aliasing discipline.
    #[inline]
    pub fn as_ptr_shared(&self) -> *mut f64 {
        self.buf.as_ptr_shared()
    }

    /// Total `f64` length including halo and inter-plane padding.
    #[inline]
    pub fn flat_len(&self) -> usize {
        self.buf.len()
    }

    /// Set every interior value; halo stays zero.
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, usize, usize) -> Cplx) {
        for z in 0..self.dims.nz {
            for y in 0..self.dims.ny {
                for x in 0..self.dims.nx {
                    self.set(x as isize, y as isize, z as isize, f(x, y, z));
                }
            }
        }
    }

    /// Zero all values including halo.
    pub fn zero(&mut self) {
        self.buf.fill(0.0);
    }

    /// Iterate interior values in storage order.
    pub fn iter_interior(&self) -> impl Iterator<Item = ((usize, usize, usize), Cplx)> + '_ {
        let d = self.dims;
        (0..d.nz).flat_map(move |z| {
            (0..d.ny).flat_map(move |y| {
                (0..d.nx).map(move |x| ((x, y, z), self.get(x as isize, y as isize, z as isize)))
            })
        })
    }

    /// True when every halo element (any coordinate at -1 or n) is zero.
    /// The Dirichlet invariant every engine must preserve.
    pub fn halo_is_zero(&self) -> bool {
        let d = self.dims;
        let on_halo = |x: isize, n: usize| x == -1 || x == n as isize;
        for z in -1..=(d.nz as isize) {
            for y in -1..=(d.ny as isize) {
                for x in -1..=(d.nx as isize) {
                    if (on_halo(x, d.nx) || on_halo(y, d.ny) || on_halo(z, d.nz))
                        && self.get(x, y, z) != Cplx::ZERO
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Bitwise equality of the full buffers (the MWD-vs-naive oracle).
    pub fn bit_eq(&self, other: &Array3C) -> bool {
        self.dims == other.dims
            && self
                .as_slice()
                .iter()
                .zip(other.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aligned::{ALIGN, LANE_F64};

    #[test]
    fn zeros_has_zero_halo_and_interior() {
        let a = Array3C::zeros(GridDims::new(3, 4, 5));
        assert!(a.halo_is_zero());
        assert_eq!(a.get(2, 3, 4), Cplx::ZERO);
        assert_eq!(a.flat_len(), 2 * round_up_lane(5 * 6 * 7));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut a = Array3C::zeros(GridDims::new(4, 3, 2));
        a.set(1, 2, 0, Cplx::new(3.5, -1.25));
        assert_eq!(a.get(1, 2, 0), Cplx::new(3.5, -1.25));
        assert_eq!(a.get(1, 2, 1), Cplx::ZERO);
    }

    #[test]
    fn strides_relate_neighbors() {
        let a = Array3C::zeros(GridDims::new(4, 3, 2));
        assert_eq!(a.idx(1, 0, 0) - a.idx(0, 0, 0), 1);
        assert_eq!(a.idx(0, 1, 0) - a.idx(0, 0, 0), a.y_stride());
        assert_eq!(a.idx(0, 0, 1) - a.idx(0, 0, 0), a.z_stride());
    }

    #[test]
    fn planes_are_split_and_lane_aligned() {
        let a = Array3C::zeros(GridDims::new(3, 4, 5));
        let (px, py, pz) = a.padded_extents();
        assert_eq!(a.im_offset(), round_up_lane(px * py * pz));
        assert_eq!(a.im_offset() % LANE_F64, 0);
        // Both plane base addresses are cache-line aligned.
        let base = a.as_slice().as_ptr() as usize;
        assert_eq!(base % ALIGN, 0);
        assert_eq!(
            (base + a.im_offset() * std::mem::size_of::<f64>()) % ALIGN,
            0
        );
    }

    #[test]
    fn re_and_im_land_in_their_planes() {
        let mut a = Array3C::zeros(GridDims::new(2, 2, 2));
        a.set(1, 0, 1, Cplx::new(2.0, -7.0));
        let i = a.idx(1, 0, 1);
        assert_eq!(a.as_slice()[i], 2.0);
        assert_eq!(a.as_slice()[i + a.im_offset()], -7.0);
        // Nothing leaked into the inter-plane padding.
        let (px, py, pz) = a.padded_extents();
        for p in (px * py * pz)..a.im_offset() {
            assert_eq!(a.as_slice()[p], 0.0, "padding at {p} must stay zero");
        }
    }

    #[test]
    fn halo_is_addressable_and_zero() {
        let a = Array3C::zeros(GridDims::new(2, 2, 2));
        assert_eq!(a.get(-1, 0, 0), Cplx::ZERO);
        assert_eq!(a.get(2, 1, 1), Cplx::ZERO);
        assert_eq!(a.get(0, -1, 2), Cplx::ZERO);
    }

    #[test]
    fn fill_with_addresses_every_interior_cell_once() {
        let mut a = Array3C::zeros(GridDims::new(3, 2, 4));
        a.fill_with(|x, y, z| Cplx::new((x + 10 * y + 100 * z) as f64, 1.0));
        assert_eq!(a.get(2, 1, 3), Cplx::new(312.0, 1.0));
        assert!(a.halo_is_zero());
        let count = a.iter_interior().count();
        assert_eq!(count, 24);
        // Sum of re = sum over x,y,z of x + 10y + 100z.
        let sum: f64 = a.iter_interior().map(|(_, v)| v.re).sum();
        let expect: usize = (0..4usize)
            .flat_map(|z| {
                (0..2usize).flat_map(move |y| (0..3usize).map(move |x| x + 10 * y + 100 * z))
            })
            .sum();
        assert_eq!(sum, expect as f64);
    }

    #[test]
    fn bit_eq_detects_single_ulp() {
        let d = GridDims::new(2, 2, 2);
        let mut a = Array3C::zeros(d);
        let mut b = Array3C::zeros(d);
        a.set(0, 0, 0, Cplx::new(1.0, 0.0));
        b.set(0, 0, 0, Cplx::new(1.0, 0.0));
        assert!(a.bit_eq(&b));
        b.set(0, 0, 0, Cplx::new(1.0 + f64::EPSILON, 0.0));
        assert!(!a.bit_eq(&b));
    }

    #[test]
    fn bit_eq_distinguishes_signed_zero() {
        let d = GridDims::new(1, 1, 1);
        let mut a = Array3C::zeros(d);
        let b = Array3C::zeros(d);
        a.set(0, 0, 0, Cplx::new(-0.0, 0.0));
        assert!(!a.bit_eq(&b), "-0.0 must differ bitwise from +0.0");
    }

    #[test]
    fn zero_resets_after_writes() {
        let mut a = Array3C::zeros(GridDims::new(2, 2, 2));
        a.set(1, 1, 1, Cplx::ONE);
        a.zero();
        assert!(a.iter_interior().all(|(_, v)| v == Cplx::ZERO));
    }
}
