//! Minimal double-precision complex arithmetic.
//!
//! The kernels never operate on `Cplx` values directly — they work on the
//! interleaved `f64` representation for performance, mirroring the paper's
//! C listings — but coefficient construction, analysis, and tests do, so a
//! small well-tested complex type is worth owning rather than pulling in a
//! dependency.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number, layout-compatible with one
/// interleaved `(re, im)` pair in the field arrays.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Cplx {
    pub re: f64,
    pub im: f64,
}

impl Cplx {
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };
    pub const I: Cplx = Cplx { re: 0.0, im: 1.0 };

    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Cplx { re, im }
    }

    /// Purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Cplx { re, im: 0.0 }
    }

    /// `e^{i theta}` — used for the time-harmonic phase factors
    /// `e^{i omega tau}` in the THIIM update coefficients.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Cplx {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    #[inline]
    pub fn conj(self) -> Self {
        Cplx {
            re: self.re,
            im: -self.im,
        }
    }

    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Panics on zero only through the resulting
    /// non-finite values; callers validate coefficients separately.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Cplx {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Cplx {
            re: self.re * s,
            im: self.im * s,
        }
    }

    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Cplx {
    type Output = Cplx;
    #[inline]
    fn add(self, o: Cplx) -> Cplx {
        Cplx::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    #[inline]
    fn sub(self, o: Cplx) -> Cplx {
        Cplx::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    #[inline]
    fn mul(self, o: Cplx) -> Cplx {
        Cplx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // a/b as a * b.recip() is the standard complex division
impl Div for Cplx {
    type Output = Cplx;
    #[inline]
    fn div(self, o: Cplx) -> Cplx {
        self * o.recip()
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    #[inline]
    fn neg(self) -> Cplx {
        Cplx::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Cplx {
    type Output = Cplx;
    #[inline]
    fn mul(self, s: f64) -> Cplx {
        self.scale(s)
    }
}

impl AddAssign for Cplx {
    #[inline]
    fn add_assign(&mut self, o: Cplx) {
        *self = *self + o;
    }
}

impl SubAssign for Cplx {
    #[inline]
    fn sub_assign(&mut self, o: Cplx) {
        *self = *self - o;
    }
}

impl MulAssign for Cplx {
    #[inline]
    fn mul_assign(&mut self, o: Cplx) {
        *self = *self * o;
    }
}

impl fmt::Debug for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+.6e}{:+.6e}i)", self.re, self.im)
    }
}

impl fmt::Display for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}i",
            self.re,
            if self.im < 0.0 { "-" } else { "+" },
            self.im.abs()
        )
    }
}

impl From<f64> for Cplx {
    fn from(re: f64) -> Self {
        Cplx::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cplx, b: Cplx) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Cplx::new(1.5, -2.25);
        let b = Cplx::new(-0.5, 4.0);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Cplx::new(3.0, 2.0);
        let b = Cplx::new(-1.0, 5.0);
        // (3+2i)(-1+5i) = -3 + 15i - 2i + 10i^2 = -13 + 13i
        assert_eq!(a * b, Cplx::new(-13.0, 13.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Cplx::new(0.7, -1.3);
        let b = Cplx::new(2.0, 0.5);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn recip_of_i() {
        assert!(close(Cplx::I.recip(), -Cplx::I));
    }

    #[test]
    fn cis_unit_modulus_and_angle() {
        for &t in &[0.0, 0.3, 1.0, -2.5, std::f64::consts::PI] {
            let z = Cplx::cis(t);
            assert!((z.abs() - 1.0).abs() < 1e-14);
            assert!(
                (Cplx::cis(t).arg() - t.rem_euclid(2.0 * std::f64::consts::PI))
                    .abs()
                    .min(
                        (Cplx::cis(t).arg() + 2.0 * std::f64::consts::PI
                            - t.rem_euclid(2.0 * std::f64::consts::PI))
                        .abs()
                    )
                    < 1e-12
            );
        }
    }

    #[test]
    fn cis_addition_theorem() {
        let a = 0.37;
        let b = 1.91;
        assert!(close(Cplx::cis(a) * Cplx::cis(b), Cplx::cis(a + b)));
    }

    #[test]
    fn conj_norm() {
        let z = Cplx::new(3.0, -4.0);
        assert_eq!((z * z.conj()).re, 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn scale_and_neg() {
        let z = Cplx::new(1.0, -2.0);
        assert_eq!(z * 2.0, Cplx::new(2.0, -4.0));
        assert_eq!(-z, Cplx::new(-1.0, 2.0));
    }

    #[test]
    fn layout_is_two_doubles() {
        assert_eq!(std::mem::size_of::<Cplx>(), 16);
        assert_eq!(std::mem::align_of::<Cplx>(), 8);
    }
}
