//! The dist oracle: a decomposed solve must be **bit-identical** to
//! the single-process solve — same converged flag, same period count,
//! same `rel_change` and `energy` down to the last bit, same analysis
//! outputs — for every builtin scenario and a band of generated fuzz
//! specs, at both 2 and 3 workers.
//!
//! Comparison is on `JobOutcome::to_json_canonical()` (the artifact
//! JSON minus the wall clock), so any drift in any reported field
//! fails loudly with the scenario name attached.

use em_dist::{run_dist, DistOptions};
use em_scenarios::gen::{generate, Family, GenParams};
use em_scenarios::{builtins, run_batch, BatchOptions, ScenarioSpec};

/// Cap the convergence loop so the suite stays test-sized; both sides
/// solve the same capped spec, so identity is still fully exercised
/// (including the `prev`/`rel_change` bookkeeping across periods).
fn capped(spec: &ScenarioSpec) -> ScenarioSpec {
    let mut s = spec.clone();
    s.convergence.max_periods = s.convergence.max_periods.min(2);
    s
}

fn single_process(spec: &ScenarioSpec) -> Vec<String> {
    let report = run_batch(
        std::slice::from_ref(spec),
        &BatchOptions {
            workers: 1,
            ..BatchOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("[{}] single-process batch failed: {e}", spec.name));
    report
        .outcomes
        .iter()
        .map(|o| {
            assert!(
                o.error.is_none(),
                "[{}] single-process job {} errored: {:?}",
                spec.name,
                o.job,
                o.error
            );
            o.to_json_canonical().pretty()
        })
        .collect()
}

fn distributed(spec: &ScenarioSpec, workers: usize) -> Vec<String> {
    let outcomes = run_dist(
        spec,
        &DistOptions {
            workers,
            threads: 2,
            ..DistOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("[{}] dist run failed: {e}", spec.name));
    outcomes
        .iter()
        .map(|o| {
            assert!(
                o.error.is_none(),
                "[{}] dist job {} ({workers} workers) errored: {:?}",
                spec.name,
                o.job,
                o.error
            );
            o.to_json_canonical().pretty()
        })
        .collect()
}

fn assert_identical(spec: &ScenarioSpec, worker_counts: &[usize]) {
    let want = single_process(spec);
    for &workers in worker_counts {
        let got = distributed(spec, workers);
        assert_eq!(
            want.len(),
            got.len(),
            "[{}] job count diverged at {workers} workers",
            spec.name
        );
        for (j, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_eq!(
                w, g,
                "[{}] job {j} diverged from the single-process artifact at {workers} workers",
                spec.name
            );
        }
    }
}

fn fuzz_specs() -> Vec<ScenarioSpec> {
    let params = GenParams::tiny();
    let mut specs = Vec::new();
    for family in Family::ALL {
        for seed in [7u64, 19] {
            specs.push(
                generate(family, seed, &params)
                    .unwrap_or_else(|e| panic!("generate({family:?}, {seed}) failed: {e}")),
            );
        }
    }
    specs
}

#[test]
fn builtins_decompose_bit_identically_over_2_and_3_workers() {
    for spec in builtins() {
        assert_identical(&capped(&spec), &[2, 3]);
    }
}

#[test]
fn fuzz_specs_decompose_bit_identically_over_2_and_3_workers() {
    for spec in fuzz_specs() {
        assert_identical(&capped(&spec), &[2, 3]);
    }
}

/// Degenerate and invalid decompositions fail fast with a message, and
/// a 1-worker "decomposition" (no halo links at all) still matches.
#[test]
fn dist_validates_its_inputs() {
    let spec = capped(&em_scenarios::builtin("vacuum-slab").unwrap());
    assert_identical(&spec, &[1]);

    let err = run_dist(
        &spec,
        &DistOptions {
            workers: 0,
            ..DistOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("0 workers"), "{err}");

    let err = run_dist(
        &spec,
        &DistOptions {
            workers: 10_000,
            ..DistOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("workers"), "{err}");

    let mut auto = spec.clone();
    auto.engine = em_scenarios::EngineDecl::auto("auto", 1).unwrap();
    let err = run_dist(
        &auto,
        &DistOptions {
            workers: 2,
            ..DistOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("concrete engine"), "{err}");
}
