//! Property tests on the dist wire protocol: every message survives a
//! frame round-trip byte-exactly, and no torn, truncated, or
//! bit-corrupted frame ever panics the decoder — the failure mode is
//! always a typed [`FrameError`], because a chaos plan (or a killed
//! worker) tears frames at arbitrary byte positions.

use em_dist::proto::{self, FrameError, Msg};
use proptest::prelude::*;

/// Deterministic pseudo-random bytes (splitmix64 stream).
fn bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e9b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            (z ^ (z >> 31)) as u8
        })
        .collect()
}

/// A message whose payload size and content vary with the inputs —
/// cycles through every variant that carries variable-length data.
fn arbitrary_msg(pick: u8, seed: u64, n: usize) -> Msg {
    match pick % 6 {
        0 => Msg::HaloE {
            step: seed as u32,
            data: bytes(seed, n),
        },
        1 => Msg::HaloH {
            step: (seed >> 32) as u32,
            data: bytes(seed ^ 1, n),
        },
        2 => Msg::PeriodDone {
            period: (seed % 1000) as u32,
            exchanges: seed,
            wait_secs: (0..n % 64).map(|i| (i as f64) * 1e-4).collect(),
            fields: bytes(seed ^ 2, n),
        },
        3 => Msg::Assign {
            index: pick as u32,
            workers: (pick as u32) + 1,
            z0: (seed % 512) as u32,
            nz_local: (seed % 64) as u32 + 1,
            threads: (pick as u32 % 8) + 1,
            job_index: (seed % 16) as u32,
            deadline_ms: seed % 100_000,
            spec_toml: String::from_utf8_lossy(&bytes(seed ^ 3, n)).into_owned(),
        },
        4 => Msg::Abort {
            reason: format!("reason-{seed}-{}", "x".repeat(n % 200)),
        },
        _ => Msg::WorkerErr {
            index: pick as u32,
            message: format!("err-{seed}"),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode → frame → read_frame → decode is the identity, for every
    /// variable-length message shape and payload size.
    #[test]
    fn framed_messages_roundtrip(
        pick in 0u8..=255,
        seed in 0u64..u64::MAX,
        n in 0usize..4096,
    ) {
        let msg = arbitrary_msg(pick, seed, n);
        let framed = proto::frame_bytes(msg.kind(), &msg.encode());
        let mut r = framed.as_slice();
        let back = proto::recv(&mut r).expect("well-formed frame must parse");
        prop_assert_eq!(back.encode(), msg.encode());
        prop_assert_eq!(back.kind(), msg.kind());
        prop_assert!(r.is_empty(), "recv must consume the frame exactly");
    }

    /// A frame cut at any byte boundary is rejected as a torn frame
    /// (or a clean EOF at cut 0) — never a panic, never a partial
    /// message.
    #[test]
    fn truncated_frames_are_rejected(
        pick in 0u8..=255,
        seed in 0u64..u64::MAX,
        n in 0usize..1024,
        cut_frac in 0.0f64..1.0,
    ) {
        let msg = arbitrary_msg(pick, seed, n);
        let framed = proto::frame_bytes(msg.kind(), &msg.encode());
        let cut = ((framed.len() - 1) as f64 * cut_frac) as usize;
        let mut r = &framed[..cut];
        match proto::recv(&mut r) {
            Err(FrameError::Eof) => prop_assert_eq!(cut, 0, "clean EOF only at zero bytes"),
            Err(FrameError::Torn(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error class for a cut: {e}"),
            Ok(_) => prop_assert!(false, "a truncated frame must not parse"),
        }
    }

    /// Flipping any single bit anywhere in a frame makes it
    /// undecodable: the checksum (or the length/shape validation)
    /// catches it, and the decoder returns an error instead of
    /// panicking or yielding a wrong message.
    #[test]
    fn bit_corruption_is_always_detected(
        pick in 0u8..=255,
        seed in 0u64..u64::MAX,
        n in 0usize..1024,
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let msg = arbitrary_msg(pick, seed, n);
        let mut framed = proto::frame_bytes(msg.kind(), &msg.encode());
        let pos = ((framed.len() - 1) as f64 * flip_frac) as usize;
        framed[pos] ^= 1 << bit;
        let mut r = framed.as_slice();
        let got = proto::recv(&mut r);
        prop_assert!(
            got.is_err(),
            "a flipped bit at byte {pos} went undetected"
        );
    }

    /// Random garbage never panics the message decoder, whatever kind
    /// byte it claims to be.
    #[test]
    fn garbage_payloads_never_panic_decode(
        kind in 0u8..=255,
        seed in 0u64..u64::MAX,
        n in 0usize..512,
    ) {
        let _ = Msg::decode(kind, &bytes(seed, n));
    }

    /// Random garbage on the stream never panics the frame reader.
    #[test]
    fn garbage_streams_never_panic_recv(
        seed in 0u64..u64::MAX,
        n in 0usize..512,
    ) {
        let garbage = bytes(seed, n);
        let mut r = garbage.as_slice();
        let _ = proto::recv(&mut r);
    }
}
