//! The z-axis domain decomposition.
//!
//! The THIIM stencil has radius 1 along every axis, so a slab needs
//! exactly one halo plane per cut face — the same width the `Array3C`
//! padding already provides. Slabs are contiguous and balanced: the
//! first `nz % workers` slabs take one extra plane.

/// One worker's contiguous share of the global z range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slab {
    /// First global z plane of this slab.
    pub z0: usize,
    /// Number of z planes.
    pub nz: usize,
}

/// Split `nz` planes over `workers` contiguous slabs.
pub fn split_z(nz: usize, workers: usize) -> Result<Vec<Slab>, String> {
    if workers == 0 {
        return Err("cannot decompose over 0 workers".to_string());
    }
    if workers > nz {
        return Err(format!(
            "cannot split nz = {nz} over {workers} workers; every slab needs at least one plane"
        ));
    }
    let base = nz / workers;
    let extra = nz % workers;
    let mut slabs = Vec::with_capacity(workers);
    let mut z0 = 0;
    for i in 0..workers {
        let n = base + usize::from(i < extra);
        slabs.push(Slab { z0, nz: n });
        z0 += n;
    }
    debug_assert_eq!(z0, nz);
    Ok(slabs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slabs_are_contiguous_balanced_and_exhaustive() {
        for nz in 1..40 {
            for w in 1..=nz {
                let slabs = split_z(nz, w).unwrap();
                assert_eq!(slabs.len(), w);
                let mut z = 0;
                for s in &slabs {
                    assert_eq!(s.z0, z);
                    assert!(s.nz >= 1);
                    z += s.nz;
                }
                assert_eq!(z, nz);
                let min = slabs.iter().map(|s| s.nz).min().unwrap();
                let max = slabs.iter().map(|s| s.nz).max().unwrap();
                assert!(max - min <= 1, "unbalanced split for nz={nz} w={w}");
            }
        }
    }

    #[test]
    fn degenerate_splits_error() {
        assert!(split_z(4, 0).is_err());
        assert!(split_z(4, 5).is_err());
    }
}
