//! The wire protocol between the dist coordinator and its workers.
//!
//! One frame layout serves both the control plane (assign / continue /
//! finish / abort) and the halo plane (boundary-plane payloads):
//!
//! ```text
//! [u32 LE payload length][u8 kind][payload][32 ASCII hex checksum]
//! ```
//!
//! The checksum is the FNV-1a-128 content hash from `em_json` over
//! `kind || payload` — the same hash that names result-store artifacts,
//! so the whole system shares one integrity primitive. Every parse
//! failure is an `Err`, never a panic: torn frames (short reads),
//! oversized length prefixes, checksum mismatches and malformed
//! payloads all surface as [`FrameError`] so a chaos-injected partner
//! can never take the peer down with it.

use std::io::{Read, Write};

/// Hard cap on the payload length a reader will allocate for. Large
/// enough for a gathered field slab of any realistic grid, small
/// enough that a corrupted length prefix cannot OOM the process.
pub const MAX_FRAME: usize = 256 << 20;

/// Bytes of frame overhead around a payload (length, kind, checksum).
pub const FRAME_OVERHEAD: usize = 4 + 1 + 32;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF on the frame boundary — the peer closed the stream.
    Eof,
    /// The stream ended (or errored) mid-frame.
    Torn(String),
    /// The frame arrived whole but its checksum or payload is invalid.
    Corrupt(String),
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// Any other I/O failure (timeouts included).
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Torn(e) => write!(f, "torn frame: {e}"),
            FrameError::Corrupt(e) => write!(f, "corrupt frame: {e}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Serialize one frame to its wire bytes.
pub fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut hashed = Vec::with_capacity(payload.len() + 1);
    hashed.push(kind);
    hashed.extend_from_slice(payload);
    let sum = em_json::hash::content_hash_bytes(&hashed);
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
    out.extend_from_slice(sum.as_bytes());
    out
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&frame_bytes(kind, payload))?;
    w.flush()
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8], started: bool) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if started || filled > 0 {
                    FrameError::Torn(format!(
                        "stream closed after {filled} of {} bytes",
                        buf.len()
                    ))
                } else {
                    FrameError::Eof
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Read one frame, verifying length cap and checksum.
pub fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), FrameError> {
    let mut len_buf = [0u8; 4];
    read_exact_or(r, &mut len_buf, false)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut kind_buf = [0u8; 1];
    read_exact_or(r, &mut kind_buf, true)?;
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, true)?;
    let mut sum = [0u8; 32];
    read_exact_or(r, &mut sum, true)?;

    let mut hashed = Vec::with_capacity(len + 1);
    hashed.push(kind_buf[0]);
    hashed.extend_from_slice(&payload);
    let want = em_json::hash::content_hash_bytes(&hashed);
    if want.as_bytes() != sum {
        return Err(FrameError::Corrupt(format!(
            "checksum mismatch on kind {} ({len}-byte payload)",
            kind_buf[0]
        )));
    }
    Ok((kind_buf[0], payload))
}

// ------------------------------------------------------------ payloads

/// Append-only little-endian encoders for message payloads.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Length-prefixed byte blob.
pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

/// Bounds-checked payload reader; every accessor errors (never panics)
/// on truncated input.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("payload truncated reading {what}"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub fn f64(&mut self, what: &str) -> Result<f64, String> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub fn str(&mut self, what: &str) -> Result<String, String> {
        let n = self.u32(what)? as usize;
        let b = self.take(n, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| format!("{what} is not UTF-8"))
    }

    pub fn bytes(&mut self, what: &str) -> Result<Vec<u8>, String> {
        let n = self.u32(what)? as usize;
        Ok(self.take(n, what)?.to_vec())
    }

    /// Assert the payload is fully consumed (catches trailing garbage).
    pub fn done(&self, what: &str) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{what}: {} trailing byte(s) after the payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

// ------------------------------------------------------------ messages

/// Every message the coordinator and workers exchange, on either the
/// control stream or a worker-to-worker halo link.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Worker -> coordinator, first frame on the control stream.
    Hello { index: u32 },
    /// Coordinator -> worker: the job and this worker's z-slab.
    Assign {
        index: u32,
        workers: u32,
        z0: u32,
        nz_local: u32,
        threads: u32,
        job_index: u32,
        /// Remaining deadline in ms (0 = none).
        deadline_ms: u64,
        spec_toml: String,
    },
    /// Worker -> coordinator: where this worker accepts its *upper*
    /// neighbor's halo link.
    ListenPort { port: u16 },
    /// Coordinator -> worker: connect your halo link down to this port.
    ConnectDown { port: u16 },
    /// Worker -> coordinator: slab built, halo links wired.
    Ready,
    /// Halo link: the sender's top E boundary plane for `step`.
    HaloE { step: u32, data: Vec<u8> },
    /// Halo link: the sender's bottom H boundary plane for `step`.
    HaloH { step: u32, data: Vec<u8> },
    /// Worker -> coordinator: one period done; slab fields plus halo
    /// telemetry (exchange count and per-wait seconds this period).
    PeriodDone {
        period: u32,
        exchanges: u64,
        wait_secs: Vec<f64>,
        fields: Vec<u8>,
    },
    /// Coordinator -> worker: run one more period.
    Continue,
    /// Coordinator -> worker: converged / done; exit cleanly.
    Finish,
    /// Either direction: stop now (deadline, cancel, peer failure).
    Abort { reason: String },
    /// Worker -> coordinator: this worker failed.
    WorkerErr { index: u32, message: String },
}

impl Msg {
    pub fn kind(&self) -> u8 {
        match self {
            Msg::Hello { .. } => 1,
            Msg::Assign { .. } => 2,
            Msg::ListenPort { .. } => 3,
            Msg::ConnectDown { .. } => 4,
            Msg::Ready => 5,
            Msg::HaloE { .. } => 6,
            Msg::HaloH { .. } => 7,
            Msg::PeriodDone { .. } => 8,
            Msg::Continue => 9,
            Msg::Finish => 10,
            Msg::Abort { .. } => 11,
            Msg::WorkerErr { .. } => 12,
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Msg::Hello { index } => put_u32(&mut b, *index),
            Msg::Assign {
                index,
                workers,
                z0,
                nz_local,
                threads,
                job_index,
                deadline_ms,
                spec_toml,
            } => {
                put_u32(&mut b, *index);
                put_u32(&mut b, *workers);
                put_u32(&mut b, *z0);
                put_u32(&mut b, *nz_local);
                put_u32(&mut b, *threads);
                put_u32(&mut b, *job_index);
                put_u64(&mut b, *deadline_ms);
                put_str(&mut b, spec_toml);
            }
            Msg::ListenPort { port } | Msg::ConnectDown { port } => put_u32(&mut b, *port as u32),
            Msg::Ready | Msg::Continue | Msg::Finish => {}
            Msg::HaloE { step, data } | Msg::HaloH { step, data } => {
                put_u32(&mut b, *step);
                put_bytes(&mut b, data);
            }
            Msg::PeriodDone {
                period,
                exchanges,
                wait_secs,
                fields,
            } => {
                put_u32(&mut b, *period);
                put_u64(&mut b, *exchanges);
                put_u32(&mut b, wait_secs.len() as u32);
                for w in wait_secs {
                    put_f64(&mut b, *w);
                }
                put_bytes(&mut b, fields);
            }
            Msg::Abort { reason } => put_str(&mut b, reason),
            Msg::WorkerErr { index, message } => {
                put_u32(&mut b, *index);
                put_str(&mut b, message);
            }
        }
        b
    }

    pub fn decode(kind: u8, payload: &[u8]) -> Result<Msg, String> {
        let mut c = Cursor::new(payload);
        let msg = match kind {
            1 => Msg::Hello {
                index: c.u32("Hello.index")?,
            },
            2 => Msg::Assign {
                index: c.u32("Assign.index")?,
                workers: c.u32("Assign.workers")?,
                z0: c.u32("Assign.z0")?,
                nz_local: c.u32("Assign.nz_local")?,
                threads: c.u32("Assign.threads")?,
                job_index: c.u32("Assign.job_index")?,
                deadline_ms: c.u64("Assign.deadline_ms")?,
                spec_toml: c.str("Assign.spec_toml")?,
            },
            3 => Msg::ListenPort {
                port: port_of(c.u32("ListenPort.port")?)?,
            },
            4 => Msg::ConnectDown {
                port: port_of(c.u32("ConnectDown.port")?)?,
            },
            5 => Msg::Ready,
            6 => Msg::HaloE {
                step: c.u32("HaloE.step")?,
                data: c.bytes("HaloE.data")?,
            },
            7 => Msg::HaloH {
                step: c.u32("HaloH.step")?,
                data: c.bytes("HaloH.data")?,
            },
            8 => {
                let period = c.u32("PeriodDone.period")?;
                let exchanges = c.u64("PeriodDone.exchanges")?;
                let n = c.u32("PeriodDone.waits")? as usize;
                if n > MAX_FRAME / 8 {
                    return Err(format!("PeriodDone claims {n} wait samples"));
                }
                let mut wait_secs = Vec::with_capacity(n);
                for _ in 0..n {
                    wait_secs.push(c.f64("PeriodDone.wait")?);
                }
                Msg::PeriodDone {
                    period,
                    exchanges,
                    wait_secs,
                    fields: c.bytes("PeriodDone.fields")?,
                }
            }
            9 => Msg::Continue,
            10 => Msg::Finish,
            11 => Msg::Abort {
                reason: c.str("Abort.reason")?,
            },
            12 => Msg::WorkerErr {
                index: c.u32("WorkerErr.index")?,
                message: c.str("WorkerErr.message")?,
            },
            other => return Err(format!("unknown frame kind {other}")),
        };
        c.done("message payload")?;
        Ok(msg)
    }
}

fn port_of(v: u32) -> Result<u16, String> {
    u16::try_from(v).map_err(|_| format!("port {v} out of range"))
}

/// Send one message as a frame.
pub fn send(w: &mut impl Write, msg: &Msg) -> Result<(), String> {
    write_frame(w, msg.kind(), &msg.encode()).map_err(|e| format!("send failed: {e}"))
}

/// Receive and decode one message.
pub fn recv(r: &mut impl Read) -> Result<Msg, FrameError> {
    let (kind, payload) = read_frame(r)?;
    Msg::decode(kind, &payload).map_err(FrameError::Corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let bytes = frame_bytes(6, b"hello halo");
        let (kind, payload) = read_frame(&mut bytes.as_slice()).unwrap();
        assert_eq!(kind, 6);
        assert_eq!(payload, b"hello halo");
    }

    #[test]
    fn clean_eof_is_distinguished_from_torn() {
        let empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut &*empty), Err(FrameError::Eof)));
        let bytes = frame_bytes(5, &[]);
        let torn = &bytes[..bytes.len() - 1];
        assert!(matches!(read_frame(&mut &*torn), Err(FrameError::Torn(_))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bytes = frame_bytes(5, &[]);
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn every_message_roundtrips() {
        let msgs = vec![
            Msg::Hello { index: 3 },
            Msg::Assign {
                index: 1,
                workers: 2,
                z0: 12,
                nz_local: 12,
                threads: 4,
                job_index: 0,
                deadline_ms: 1500,
                spec_toml: "name = \"x\"".to_string(),
            },
            Msg::ListenPort { port: 40123 },
            Msg::ConnectDown { port: 40123 },
            Msg::Ready,
            Msg::HaloE {
                step: 7,
                data: vec![1, 2, 3],
            },
            Msg::HaloH {
                step: 8,
                data: vec![],
            },
            Msg::PeriodDone {
                period: 2,
                exchanges: 44,
                wait_secs: vec![0.25, 1e-6],
                fields: vec![9; 17],
            },
            Msg::Continue,
            Msg::Finish,
            Msg::Abort {
                reason: "deadline".to_string(),
            },
            Msg::WorkerErr {
                index: 0,
                message: "boom".to_string(),
            },
        ];
        for m in msgs {
            let decoded = Msg::decode(m.kind(), &m.encode()).unwrap();
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut p = Msg::Ready.encode();
        p.push(0);
        assert!(Msg::decode(5, &p).is_err());
    }
}
