//! # em_dist — distributed solves by z-axis domain decomposition
//!
//! Splits the global grid along z into `N` contiguous slabs, each
//! solved by a worker running the existing engine stack, with the
//! boundary planes exchanged once per phase over local sockets. The
//! wire is a thin hand-rolled length-prefixed binary protocol
//! ([`proto`]) with FNV-1a-128 frame checksums; communication overlaps
//! computation at step granularity (boundary planes are posted before
//! the interior update and awaited only for the one boundary row each
//! phase still owes).
//!
//! The subsystem's contract is **bit identity**: a decomposed solve
//! produces exactly the artifact the single-process solver would.
//! Within a THIIM phase every cell reads only frozen opposite-kind
//! fields plus its own previous value, so any spatial partition of a
//! phase reproduces the reference bits; the order-dependent pieces —
//! the convergence functional and the analysis reductions — run on the
//! coordinator over the gathered global grid in the exact single-
//! process order ([`coord`]).
//!
//! Module map:
//! - [`proto`] — framing, checksums, message codec.
//! - [`decomp`] — the balanced contiguous z split.
//! - [`slab`] — cropping, plane/slab codecs, split-phase stepping.
//! - [`worker`] — one slab's lockstep solve loop.
//! - [`coord`] — launch, topology relay, gather, convergence, outcome.

pub mod coord;
pub mod decomp;
pub mod proto;
pub mod slab;
pub mod worker;

pub use coord::{run_dist, DistOptions, Launcher, HALO_EXCHANGES_METRIC, HALO_WAIT_METRIC};
pub use decomp::{split_z, Slab};
pub use worker::{run_worker, WorkerConfig};
