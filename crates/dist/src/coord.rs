//! The dist coordinator: launches workers, wires the halo topology,
//! drives the period lockstep and assembles the batch-identical
//! outcome.
//!
//! Bit identity with the single-process solver is the subsystem's
//! oracle, and the order-dependent f64 reductions make it delicate:
//! `relative_change` and `energy()` sum in component-major interior
//! order over the *global* grid. The coordinator therefore gathers
//! every slab's fields once per period and replicates
//! `run_to_convergence_cancel`'s loop — same comparison, same `prev`
//! bookkeeping, same period accounting — on the reassembled grid, and
//! the final analysis outputs are computed by the same `em_solver`
//! functions a local run uses.

use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::{Duration, Instant};

use em_faults::FaultInjector;
use em_field::{norms, FieldSet};
use em_obs::{Recorder, Registry, ThreadLog};
use em_scenarios::{ConvergenceDecl, JobOutcome, ScenarioJob, ScenarioSpec};
use em_solver::analysis;
use mwd_core::cancel::{CancelToken, CANCELLED_PREFIX, TIMEOUT_PREFIX};

use crate::decomp::split_z;
use crate::proto::{self, FrameError, Msg};
use crate::slab::{boundary_for, paste_fields};
use crate::worker::{run_worker, WorkerConfig};

/// Counter: halo planes received and applied, labelled per worker.
pub const HALO_EXCHANGES_METRIC: &str = "em_halo_exchanges_total";
/// Histogram: seconds each worker spent blocked waiting for a halo
/// plane, labelled per worker.
pub const HALO_WAIT_METRIC: &str = "em_halo_wait_seconds";

/// Poll slice for coordinator waits (cancellation stays responsive).
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// Ceiling on worker spawn + handshake, independent of job deadline.
const SETUP_TIMEOUT: Duration = Duration::from_secs(60);

/// How workers are brought up.
#[derive(Clone, Debug)]
pub enum Launcher {
    /// In-process `std::thread` workers over localhost TCP — the
    /// service path and the test default (no re-exec needed).
    Thread,
    /// `mwd dist worker` child processes (the CLI path), optionally
    /// carrying a chaos plan on their halo wire.
    Process { chaos: Option<String> },
}

/// Options for [`run_dist`].
pub struct DistOptions {
    /// Worker count (z slabs). Must satisfy `1 <= workers <= nz`.
    pub workers: usize,
    /// Engine threads across the whole job; each worker gets
    /// `max(1, threads / workers)`.
    pub threads: usize,
    pub launcher: Launcher,
    /// Deadline / stop flag for the whole solve; aborts propagate to
    /// every worker over the control protocol.
    pub cancel: CancelToken,
    /// Span recorder: one trace timeline per worker
    /// (`dist-worker-{i}`) with a span per period.
    pub trace: Recorder,
    pub trace_parent: u64,
    /// Metrics sink for [`HALO_EXCHANGES_METRIC`] / [`HALO_WAIT_METRIC`].
    pub registry: Option<Arc<Registry>>,
    /// Wire-fault injector handed to `Thread` workers.
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            workers: 2,
            threads: 1,
            launcher: Launcher::Thread,
            cancel: CancelToken::none(),
            trace: Recorder::disabled(),
            trace_parent: 0,
            registry: None,
            faults: None,
        }
    }
}

/// Run every job of `spec` decomposed over `opts.workers` z slabs.
/// Outcomes are bit-identical to `run_batch` over the same spec —
/// including error bookkeeping: per-job failures land in the outcome's
/// `error` field, and only spec-level problems return `Err`.
pub fn run_dist(spec: &ScenarioSpec, opts: &DistOptions) -> Result<Vec<JobOutcome>, String> {
    spec.validate()?;
    boundary_for(&spec.engine)?;
    split_z(spec.dims().nz, opts.workers)?;
    let jobs = spec.jobs();
    let mut outcomes = Vec::with_capacity(jobs.len());
    for (index, job) in jobs.iter().enumerate() {
        outcomes.push(run_dist_job(spec, job, index, opts));
    }
    Ok(outcomes)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A worker failure keeps its cooperative-halt prefix (so the service
/// classifies drain/deadline correctly) and otherwise names the worker.
fn worker_failure(index: usize, msg: &str) -> String {
    if msg.starts_with(CANCELLED_PREFIX) || msg.starts_with(TIMEOUT_PREFIX) {
        msg.to_string()
    } else {
        format!("dist worker {index} failed: {msg}")
    }
}

fn run_dist_job(
    spec: &ScenarioSpec,
    job: &ScenarioJob,
    index: usize,
    opts: &DistOptions,
) -> JobOutcome {
    let t0 = Instant::now();
    let decl = spec.engine;
    // The skeleton mirrors the batch runner's `blank_outcome` so a
    // dist artifact differs from a local one in no field but the
    // (stripped-for-comparison) wall clock.
    let mut outcome = JobOutcome {
        job: index,
        scenario: job.scenario.clone(),
        sweep_index: job.sweep_index,
        lambda_nm: job.lambda_nm,
        lambda_cells: job.lambda_cells,
        dims: format!("{}", spec.dims()),
        spec_hash: spec.content_hash(),
        engine: decl.label(),
        threads: decl.threads(),
        dry_run: false,
        converged: false,
        periods: 0,
        steps: 0,
        rel_change: f64::INFINITY,
        energy: 0.0,
        back_iteration_cells: 0,
        absorption: Vec::new(),
        intensity_profile: None,
        wall_secs: 0.0,
        error: None,
        artifact: None,
        tuned: None,
    };
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        solve_dist(spec, job, index, opts, &mut outcome)
    }));
    let result =
        caught.unwrap_or_else(|p| Err(format!("job panicked: {}", panic_message(p.as_ref()))));
    if let Err(e) = result {
        outcome.error = Some(e);
    }
    outcome.wall_secs = t0.elapsed().as_secs_f64();
    outcome
}

enum Joiner {
    Thread(std::thread::JoinHandle<Result<(), String>>),
    Child(Child),
}

/// Everything live about one coordinated solve; dropping it aborts and
/// reaps whatever is still running, so every early `return Err` leaves
/// no worker behind.
struct Run {
    ctrl: Vec<TcpStream>,
    joiners: Vec<Joiner>,
    finished: bool,
}

impl Run {
    fn send_all(&mut self, msg: &Msg) -> Result<(), String> {
        for (i, w) in self.ctrl.iter_mut().enumerate() {
            proto::send(w, msg).map_err(|e| format!("dist worker {i} unreachable: {e}"))?;
        }
        Ok(())
    }

    fn abort(&mut self, reason: &str) {
        for w in self.ctrl.iter_mut() {
            let _ = proto::send(
                w,
                &Msg::Abort {
                    reason: reason.to_string(),
                },
            );
        }
    }
}

impl Drop for Run {
    fn drop(&mut self) {
        if !self.finished {
            self.abort("coordinator shutting down");
        }
        // Closing the control sockets unblocks any worker still
        // reading; thread workers then exit on their own. Child
        // processes get a short grace period, then SIGKILL.
        self.ctrl.clear();
        for j in self.joiners.drain(..) {
            match j {
                Joiner::Thread(h) => {
                    let _ = h.join();
                }
                Joiner::Child(mut c) => {
                    let t0 = Instant::now();
                    loop {
                        match c.try_wait() {
                            Ok(Some(_)) => break,
                            Ok(None) if t0.elapsed() > Duration::from_secs(5) => {
                                let _ = c.kill();
                                let _ = c.wait();
                                break;
                            }
                            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                            Err(_) => break,
                        }
                    }
                }
            }
        }
    }
}

/// Receive one control message during the lockstep handshake, bounded
/// by `deadline` via the socket read timeout.
fn recv_setup(stream: &mut TcpStream, deadline: Instant, what: &str) -> Result<Msg, String> {
    let left = deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or_else(|| format!("timeout: dist setup expired waiting for {what}"))?;
    stream
        .set_read_timeout(Some(left))
        .map_err(|e| format!("control read timeout: {e}"))?;
    match proto::recv(stream) {
        Ok(Msg::WorkerErr { index, message }) => Err(worker_failure(index as usize, &message)),
        Ok(msg) => Ok(msg),
        Err(FrameError::Eof) => Err(format!("worker hung up before {what}")),
        Err(e) => Err(format!("waiting for {what}: {e}")),
    }
}

fn solve_dist(
    spec: &ScenarioSpec,
    job: &ScenarioJob,
    job_index: usize,
    opts: &DistOptions,
    outcome: &mut JobOutcome,
) -> Result<(), String> {
    // A job that is already halted (drain hit between jobs) must not
    // pay for worker spawn + teardown.
    if let Some(err) = opts.cancel.halt_error() {
        return Err(err);
    }
    let workers = opts.workers;
    let dims = spec.dims();
    let slabs = split_z(dims.nz, workers)?;
    boundary_for(&spec.engine)?;

    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| format!("cannot bind the coordinator listener: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("coordinator listener addr: {e}"))?;
    let mut setup_dl = Instant::now() + SETUP_TIMEOUT;
    if let Some(d) = opts.cancel.deadline() {
        setup_dl = setup_dl.min(d);
    }

    let mut run = Run {
        ctrl: Vec::new(),
        joiners: Vec::new(),
        finished: false,
    };
    for i in 0..workers {
        match &opts.launcher {
            Launcher::Thread => {
                let cfg = WorkerConfig {
                    connect: addr.to_string(),
                    index: i,
                    faults: opts.faults.clone(),
                };
                let h = std::thread::Builder::new()
                    .name(format!("dist-worker-{i}"))
                    .spawn(move || run_worker(&cfg))
                    .map_err(|e| format!("cannot spawn worker thread {i}: {e}"))?;
                run.joiners.push(Joiner::Thread(h));
            }
            Launcher::Process { chaos } => {
                let exe = std::env::current_exe()
                    .map_err(|e| format!("cannot locate the mwd binary: {e}"))?;
                let mut cmd = Command::new(exe);
                cmd.args(["dist", "worker", "--connect"])
                    .arg(addr.to_string())
                    .arg("--index")
                    .arg(i.to_string())
                    .stdin(Stdio::null());
                if let Some(plan) = chaos {
                    cmd.args(["--chaos", plan]);
                }
                let child = cmd
                    .spawn()
                    .map_err(|e| format!("cannot spawn worker process {i}: {e}"))?;
                run.joiners.push(Joiner::Child(child));
            }
        }
    }

    // Accept and identify all workers (Hello carries the index).
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("coordinator listener nonblocking: {e}"))?;
    let mut ctrl: Vec<Option<TcpStream>> = (0..workers).map(|_| None).collect();
    let mut connected = 0usize;
    while connected < workers {
        if let Some(err) = opts.cancel.halt_error() {
            return Err(err);
        }
        if Instant::now() >= setup_dl {
            return Err("timeout: dist workers never connected".to_string());
        }
        let mut s = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("coordinator accept failed: {e}")),
        };
        s.set_nodelay(true)
            .map_err(|e| format!("control nodelay: {e}"))?;
        s.set_nonblocking(false)
            .map_err(|e| format!("control blocking: {e}"))?;
        match recv_setup(&mut s, setup_dl, "Hello")? {
            Msg::Hello { index } => {
                let i = index as usize;
                if i >= workers || ctrl[i].is_some() {
                    return Err(format!("unexpected Hello from worker index {i}"));
                }
                ctrl[i] = Some(s);
                connected += 1;
            }
            other => return Err(format!("expected Hello, got kind {}", other.kind())),
        }
    }
    run.ctrl = ctrl
        .into_iter()
        .map(|s| s.expect("all connected"))
        .collect();

    // The full solver gives us the position-dependent coefficients
    // (workers rebuild and crop the same thing), the gather target, and
    // the physics constants the analysis outputs need.
    let mut solver = spec.build_solver(job)?;
    outcome.back_iteration_cells = solver.back_iteration_cells;
    let spp = solver.steps_per_period();
    let threads_per_worker = (opts.threads / workers).max(1);
    let deadline_ms = opts
        .cancel
        .deadline()
        .and_then(|d| d.checked_duration_since(Instant::now()))
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let spec_toml = spec.to_toml_string();

    for (i, slab) in slabs.iter().enumerate() {
        let msg = Msg::Assign {
            index: i as u32,
            workers: workers as u32,
            z0: slab.z0 as u32,
            nz_local: slab.nz as u32,
            threads: threads_per_worker as u32,
            job_index: job_index as u32,
            deadline_ms,
            spec_toml: spec_toml.clone(),
        };
        proto::send(&mut run.ctrl[i], &msg)
            .map_err(|e| format!("cannot assign worker {i}: {e}"))?;
    }

    // Halo topology relay: worker i listens for i+1; we learn i's port
    // and tell i+1 where to connect.
    for i in 0..workers.saturating_sub(1) {
        let port = match recv_setup(&mut run.ctrl[i], setup_dl, "ListenPort")? {
            Msg::ListenPort { port } => port,
            other => return Err(format!("expected ListenPort, got kind {}", other.kind())),
        };
        proto::send(&mut run.ctrl[i + 1], &Msg::ConnectDown { port })
            .map_err(|e| format!("cannot relay the halo port to worker {}: {e}", i + 1))?;
    }
    for i in 0..workers {
        match recv_setup(&mut run.ctrl[i], setup_dl, "Ready")? {
            Msg::Ready => {}
            other => return Err(format!("expected Ready, got kind {}", other.kind())),
        }
    }

    // Steady state: per-worker reader threads funnel control messages
    // into one channel so a dead worker can never wedge the gather.
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<Msg, String>)>();
    for (i, s) in run.ctrl.iter().enumerate() {
        s.set_read_timeout(None)
            .map_err(|e| format!("control read timeout: {e}"))?;
        let mut r = s.try_clone().map_err(|e| format!("control clone: {e}"))?;
        let tx = tx.clone();
        std::thread::spawn(move || loop {
            match proto::recv(&mut r) {
                Ok(msg) => {
                    if tx.send((i, Ok(msg))).is_err() {
                        return;
                    }
                }
                Err(FrameError::Eof) => {
                    let _ = tx.send((i, Err("control stream closed".to_string())));
                    return;
                }
                Err(e) => {
                    let _ = tx.send((i, Err(format!("control stream: {e}"))));
                    return;
                }
            }
        });
    }
    drop(tx);

    let metrics: Option<Vec<_>> = opts.registry.as_ref().map(|reg| {
        (0..workers)
            .map(|i| {
                let idx = i.to_string();
                let labels = [("worker", idx.as_str())];
                (
                    reg.counter(
                        HALO_EXCHANGES_METRIC,
                        "Halo planes received and applied by dist workers",
                        &labels,
                    ),
                    reg.histogram(
                        HALO_WAIT_METRIC,
                        "Seconds dist workers spent blocked waiting for a halo plane",
                        &labels,
                    ),
                )
            })
            .collect()
    });
    let mut tlogs: Vec<ThreadLog> = (0..workers)
        .map(|i| {
            opts.trace
                .thread(&format!("dist-worker-{i}"), opts.trace_parent)
        })
        .collect();

    // The convergence loop is a line-for-line replica of
    // `ThiimSolver::run_to_convergence_cancel`, with `step_n` replaced
    // by the lockstep round and the fields by the gathered grid.
    let ConvergenceDecl { tol, max_periods } = spec.convergence;
    let mut prev: Option<FieldSet> = None;
    let mut rel = f64::INFINITY;
    let mut converged = false;
    let mut periods_done = max_periods;
    'periods: for period in 1..=max_periods {
        if let Some(err) = opts.cancel.halt_error() {
            run.abort(&err);
            return Err(err);
        }
        let mut spans: Vec<_> = tlogs
            .iter_mut()
            .map(|t| Some(t.start("dist_period")))
            .collect();
        run.send_all(&Msg::Continue)?;
        let mut pending = workers;
        let mut seen = vec![false; workers];
        while pending > 0 {
            if let Some(err) = opts.cancel.halt_error() {
                run.abort(&err);
                return Err(err);
            }
            match rx.recv_timeout(WAIT_SLICE) {
                Ok((
                    i,
                    Ok(Msg::PeriodDone {
                        period: p,
                        exchanges,
                        wait_secs,
                        fields,
                    }),
                )) => {
                    if p as usize != period || seen[i] {
                        let err = format!("worker {i} is out of lockstep at period {period}");
                        run.abort(&err);
                        return Err(err);
                    }
                    paste_fields(&mut solver.state.fields, slabs[i], &fields)?;
                    if let Some(m) = &metrics {
                        m[i].0.add(exchanges);
                        for w in &wait_secs {
                            m[i].1.observe(*w);
                        }
                    }
                    if let Some(span) = spans[i].take() {
                        let wait: f64 = wait_secs.iter().sum();
                        tlogs[i].end_kv(
                            span,
                            vec![
                                ("period", period.to_string()),
                                ("halo_exchanges", exchanges.to_string()),
                                ("halo_wait_s", format!("{wait:.6}")),
                            ],
                        );
                    }
                    seen[i] = true;
                    pending -= 1;
                }
                Ok((i, Ok(Msg::WorkerErr { message, .. }))) => {
                    let err = worker_failure(i, &message);
                    run.abort(&err);
                    return Err(err);
                }
                Ok((i, Ok(other))) => {
                    let err = format!(
                        "unexpected control message kind {} from worker {i}",
                        other.kind()
                    );
                    run.abort(&err);
                    return Err(err);
                }
                Ok((i, Err(e))) => {
                    let err = worker_failure(i, &e);
                    run.abort(&err);
                    return Err(err);
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err("every control reader exited".to_string());
                }
            }
        }
        if let Some(p) = &prev {
            rel = norms::relative_change(&solver.state.fields, p);
            if rel < tol {
                converged = true;
                periods_done = period;
                break 'periods;
            }
        }
        prev = Some(solver.state.fields.clone());
    }

    run.send_all(&Msg::Finish)?;
    run.finished = true;
    drop(run); // joins workers cleanly before we measure/report

    outcome.converged = converged;
    outcome.periods = periods_done;
    outcome.steps = periods_done * spp;
    outcome.rel_change = rel;
    outcome.energy = solver.fields().energy();
    for slab in &spec.outputs.absorption {
        let a = analysis::absorption_in_slab(
            solver.fields(),
            &solver.config.scene,
            job.lambda_nm,
            solver.omega,
            slab.z_lo,
            slab.z_hi,
        );
        outcome.absorption.push((slab.name.clone(), a));
    }
    if spec.outputs.intensity_profile {
        outcome.intensity_profile = Some(analysis::intensity_profile_z(solver.fields()));
    }
    Ok(())
}
