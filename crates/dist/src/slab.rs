//! Slab-local state: cropping, halo-plane and field-slab codecs, and
//! the phase-split stepper each worker runs.
//!
//! ## Why phase-split stepping is bit-identical
//!
//! Within one THIIM phase every component update reads only arrays of
//! the *opposite* field kind (frozen for the whole phase) plus its own
//! cell, so any partition of a phase's cell updates — across threads or
//! across processes — produces the same f64 bits as the sequential
//! sweep, provided each cell sees the correct neighbor values. A slab
//! therefore only needs the single boundary plane of the neighboring
//! slab (stencil radius 1 along z) at the right moment:
//!
//! * the **H phase** reads E at `z-1` — worker `i > 0` needs the top E
//!   plane of worker `i-1` *before* updating its own `z = 0` row;
//! * the **E phase** reads H at `z+1` — worker `i < N-1` needs the
//!   bottom H plane of worker `i+1` (as updated *this* step) before
//!   updating its own top row.
//!
//! Overlap falls out of the same split: post the boundary-plane send,
//! update the interior rows, then wait for the halo and finish the one
//! boundary row (arXiv 0912.4506's comm/compute scheme at period — here
//! step — granularity).
//!
//! Only four E and four H arrays cross a z cut: the z-derivative
//! components `Hxy`/`Hyx` read the Ey/Ex split pairs, `Exy`/`Eyx` read
//! the Hy/Hx split pairs. The z-components (`Ezx`…`Hzy`) differentiate
//! along x or y only and never look across the cut, and no kernel reads
//! the x/y halo *of* a z halo plane — which is why the slab-local
//! periodic x/y exchanges compose with the remote z exchange.

use em_field::{Component, FieldKind, FieldSet, State};
use em_kernels::boundary::{exchange_x_halo, exchange_y_halo};
use em_kernels::update::update_component_rows;
use em_kernels::RawGrid;
use em_scenarios::EngineDecl;

use crate::decomp::Slab;

/// The E split arrays a z+ neighbor's H phase reads across the cut.
pub const E_HALO: [Component; 4] = [
    Component::Exy,
    Component::Exz,
    Component::Eyx,
    Component::Eyz,
];

/// The H split arrays a z- neighbor's E phase reads across the cut.
pub const H_HALO: [Component; 4] = [
    Component::Hxy,
    Component::Hxz,
    Component::Hyx,
    Component::Hyz,
];

/// Horizontal boundary treatment of the slab stepper, derived from the
/// engine declaration. The z boundary is always Dirichlet globally and
/// halo-exchange at slab cuts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlabBoundary {
    Dirichlet,
    PeriodicX,
    PeriodicXY,
}

/// The horizontal boundary the declared engine implies. `auto` has no
/// structure until tuned, so dist solves require a concrete engine.
pub fn boundary_for(decl: &EngineDecl) -> Result<SlabBoundary, String> {
    match decl {
        EngineDecl::Naive | EngineDecl::Spatial { .. } | EngineDecl::Mwd { .. } => {
            Ok(SlabBoundary::Dirichlet)
        }
        EngineDecl::NaivePeriodicXY => Ok(SlabBoundary::PeriodicXY),
        EngineDecl::MwdPeriodicX { .. } => Ok(SlabBoundary::PeriodicX),
        EngineDecl::Auto { .. } => Err(
            "distributed solves need a concrete engine; resolve `auto` first (mwd tune)"
                .to_string(),
        ),
    }
}

/// Copy this slab's share of a full-grid state (fields, coefficient
/// and source arrays) into a slab-sized state. Halos stay zero, which
/// preserves the global Dirichlet faces; cut faces are filled by the
/// per-step halo exchange.
pub fn crop_state(full: &State, slab: Slab) -> State {
    let d = full.dims();
    let mut out = State::zeros(em_field::GridDims::new(d.nx, d.ny, slab.nz));
    let copy = |dst: &mut em_field::Array3C, src: &em_field::Array3C| {
        for z in 0..slab.nz {
            for y in 0..d.ny {
                for x in 0..d.nx {
                    dst.set(
                        x as isize,
                        y as isize,
                        z as isize,
                        src.get(x as isize, y as isize, (slab.z0 + z) as isize),
                    );
                }
            }
        }
    };
    for comp in Component::ALL {
        copy(out.fields.comp_mut(comp), full.fields.comp(comp));
        copy(out.coeffs.t_mut(comp), full.coeffs.t(comp));
        copy(out.coeffs.c_mut(comp), full.coeffs.c(comp));
    }
    for arr in em_field::SourceArray::ALL {
        copy(out.coeffs.src_mut(arr), full.coeffs.src(arr));
    }
    out
}

// ------------------------------------------------------------- codecs

/// Wire size of one halo plane (4 components, interior cells, re+im).
pub fn plane_len(nx: usize, ny: usize) -> usize {
    4 * nx * ny * 16
}

/// Serialize the interior `(x, y)` cells of plane `z` of each listed
/// component, row-major, `re` then `im` per cell, f64 little-endian.
pub fn extract_plane(fields: &FieldSet, comps: &[Component], z: isize) -> Vec<u8> {
    let d = fields.dims();
    let mut out = Vec::with_capacity(comps.len() * d.nx * d.ny * 16);
    for &comp in comps {
        let arr = fields.comp(comp);
        for y in 0..d.ny as isize {
            for x in 0..d.nx as isize {
                let v = arr.get(x, y, z);
                out.extend_from_slice(&v.re.to_le_bytes());
                out.extend_from_slice(&v.im.to_le_bytes());
            }
        }
    }
    out
}

/// Paste a received halo plane into plane `z` (typically `-1` or
/// `nz`). Length-checked; errors never panic.
pub fn inject_plane(
    fields: &mut FieldSet,
    comps: &[Component],
    z: isize,
    data: &[u8],
) -> Result<(), String> {
    let d = fields.dims();
    if data.len() != comps.len() * d.nx * d.ny * 16 {
        return Err(format!(
            "halo plane has {} bytes, expected {} for {}x{}",
            data.len(),
            comps.len() * d.nx * d.ny * 16,
            d.nx,
            d.ny
        ));
    }
    let mut at = 0;
    for &comp in comps {
        let arr = fields.comp_mut(comp);
        for y in 0..d.ny as isize {
            for x in 0..d.nx as isize {
                let re = f64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"));
                let im = f64::from_le_bytes(data[at + 8..at + 16].try_into().expect("8 bytes"));
                at += 16;
                arr.set(x, y, z, em_field::Cplx::new(re, im));
            }
        }
    }
    Ok(())
}

/// Serialize every interior cell of all twelve field arrays (the
/// per-period gather payload).
pub fn encode_fields(fields: &FieldSet) -> Vec<u8> {
    let d = fields.dims();
    let mut out = Vec::with_capacity(12 * d.nx * d.ny * d.nz * 16);
    for comp in Component::ALL {
        let arr = fields.comp(comp);
        for z in 0..d.nz as isize {
            for y in 0..d.ny as isize {
                for x in 0..d.nx as isize {
                    let v = arr.get(x, y, z);
                    out.extend_from_slice(&v.re.to_le_bytes());
                    out.extend_from_slice(&v.im.to_le_bytes());
                }
            }
        }
    }
    out
}

/// Paste a worker's gathered slab fields into the coordinator's
/// full-grid field set at `slab`.
pub fn paste_fields(global: &mut FieldSet, slab: Slab, data: &[u8]) -> Result<(), String> {
    let d = global.dims();
    if data.len() != 12 * d.nx * d.ny * slab.nz * 16 {
        return Err(format!(
            "slab payload has {} bytes, expected {} for {}x{}x{}",
            data.len(),
            12 * d.nx * d.ny * slab.nz * 16,
            d.nx,
            d.ny,
            slab.nz
        ));
    }
    let mut at = 0;
    for comp in Component::ALL {
        let arr = global.comp_mut(comp);
        for z in 0..slab.nz as isize {
            for y in 0..d.ny as isize {
                for x in 0..d.nx as isize {
                    let re = f64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"));
                    let im = f64::from_le_bytes(data[at + 8..at + 16].try_into().expect("8 bytes"));
                    at += 16;
                    arr.set(x, y, z + slab.z0 as isize, em_field::Cplx::new(re, im));
                }
            }
        }
    }
    Ok(())
}

// ----------------------------------------------------------- stepping

/// Refresh the slab-local periodic halos for the phase about to read
/// `kind`. Purely local: no kernel reads the x/y halo of a z halo
/// plane, so the wrap copies never need remote data.
pub fn local_exchange(state: &mut State, boundary: SlabBoundary, kind: FieldKind) {
    match boundary {
        SlabBoundary::Dirichlet => {}
        SlabBoundary::PeriodicX => exchange_x_halo(state, kind),
        SlabBoundary::PeriodicXY => {
            exchange_x_halo(state, kind);
            exchange_y_halo(state, kind);
        }
    }
}

/// Update all six components of `kind` over the z rows `z_lo..z_hi`,
/// splitting rows round-robin over `threads` OS threads. Any partition
/// of a phase is bit-identical (see module docs), so the thread count
/// affects wall time only.
pub fn phase_rows(state: &mut State, kind: FieldKind, z_lo: usize, z_hi: usize, threads: usize) {
    if z_hi <= z_lo {
        return;
    }
    let dims = state.dims();
    let comps = Component::of(kind);
    let g = RawGrid::new(state);
    let t = threads.clamp(1, z_hi - z_lo);
    if t == 1 {
        for comp in comps {
            // SAFETY: single-threaded; each component nest writes only
            // its own array and reads frozen opposite-kind arrays (same
            // argument as `step_naive`).
            unsafe { update_component_rows(&g, comp, z_lo..z_hi, 0..dims.ny, 0..dims.nx) };
        }
        return;
    }
    std::thread::scope(|s| {
        for w in 0..t {
            s.spawn(move || {
                for comp in comps {
                    let mut z = z_lo + w;
                    while z < z_hi {
                        // SAFETY: threads own disjoint z rows of each
                        // component array; stencil reads target frozen
                        // opposite-kind arrays and the written cell
                        // itself, so no data race (RawGrid contract).
                        unsafe {
                            update_component_rows(&g, comp, z..z + 1, 0..dims.ny, 0..dims.nx)
                        };
                        z += t;
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_field::{Cplx, GridDims};
    use em_kernels::boundary::{step_naive_with_boundary, Boundary};

    fn filled(dims: GridDims, seed: u64) -> State {
        let mut s = State::zeros(dims);
        s.fields.fill_deterministic(seed);
        s.coeffs.fill_deterministic(seed ^ 0x5a5a);
        s
    }

    #[test]
    fn phase_rows_threading_is_bit_identical() {
        let dims = GridDims::new(5, 4, 9);
        let mut a = filled(dims, 3);
        let mut b = a.clone();
        phase_rows(&mut a, FieldKind::H, 0, 9, 1);
        phase_rows(&mut a, FieldKind::E, 0, 9, 1);
        phase_rows(&mut b, FieldKind::H, 0, 9, 3);
        phase_rows(&mut b, FieldKind::E, 0, 9, 3);
        assert!(a.fields.bit_eq(&b.fields));
    }

    #[test]
    fn split_phases_match_step_naive() {
        let dims = GridDims::new(4, 4, 8);
        let mut a = filled(dims, 11);
        let mut b = a.clone();
        step_naive_with_boundary(&mut a, Boundary::Dirichlet);
        // Same step, phases split at an arbitrary interior row.
        phase_rows(&mut b, FieldKind::H, 3, 8, 2);
        phase_rows(&mut b, FieldKind::H, 0, 3, 2);
        phase_rows(&mut b, FieldKind::E, 0, 5, 2);
        phase_rows(&mut b, FieldKind::E, 5, 8, 2);
        assert!(a.fields.bit_eq(&b.fields));
    }

    #[test]
    fn plane_codec_roundtrips() {
        let dims = GridDims::new(3, 4, 5);
        let s = filled(dims, 7);
        let bytes = extract_plane(&s.fields, &E_HALO, 2);
        assert_eq!(bytes.len(), plane_len(3, 4));
        let mut t = State::zeros(dims);
        inject_plane(&mut t.fields, &E_HALO, -1, &bytes).unwrap();
        for comp in E_HALO {
            for y in 0..4 {
                for x in 0..3 {
                    assert_eq!(
                        t.fields.comp(comp).get(x, y, -1),
                        s.fields.comp(comp).get(x, y, 2)
                    );
                }
            }
        }
        assert!(inject_plane(&mut t.fields, &E_HALO, -1, &bytes[1..]).is_err());
    }

    #[test]
    fn slab_gather_reassembles_the_full_grid() {
        let dims = GridDims::new(3, 3, 10);
        let s = filled(dims, 19);
        let slabs = crate::decomp::split_z(10, 3).unwrap();
        let mut whole = FieldSet::zeros(dims);
        for slab in slabs {
            let cropped = crop_state(&s, slab);
            let bytes = encode_fields(&cropped.fields);
            paste_fields(&mut whole, slab, &bytes).unwrap();
        }
        assert!(whole.bit_eq(&s.fields));
    }

    #[test]
    fn crop_preserves_coefficients_and_fields() {
        let dims = GridDims::new(3, 3, 6);
        let s = filled(dims, 23);
        let slab = Slab { z0: 2, nz: 3 };
        let c = crop_state(&s, slab);
        assert_eq!(c.dims(), GridDims::new(3, 3, 3));
        assert_eq!(
            c.fields.comp(Component::Hyx).get(1, 2, 0),
            s.fields.comp(Component::Hyx).get(1, 2, 2)
        );
        assert_eq!(
            c.coeffs.t(Component::Exy).get(2, 0, 2),
            s.coeffs.t(Component::Exy).get(2, 0, 4)
        );
        assert_eq!(
            c.coeffs.src(em_field::SourceArray::SrcEx).get(0, 1, 1),
            s.coeffs.src(em_field::SourceArray::SrcEx).get(0, 1, 3)
        );
        // Halos are zero after a crop.
        assert!(c.fields.comp(Component::Hyx).halo_is_zero());
        let _ = Cplx::ZERO;
    }
}
